"""E4/E6 — Figure 6: incremental replication with clustering.

Same sweep as Figure 5 but clustered (one proxy pair per fetch).
Asserts the paper's Section 4.3 conclusions:

1. "when compared to the previous section the performance results are
   much better because there is only one proxy-out/proxy-in pair being
   created and transferred for each cluster; the most significant
   performance cost is data serialization and network communication";
2. "the performance results are not that sensitive to the amount of
   objects being replicated each time (i.e. the curves are closer)".
"""

from repro.bench.asciiplot import render_table
from repro.bench.figures import (
    fig5_series,
    fig6_series,
    spread_absolute_ms,
    total_times_ms,
)
from repro.bench.harness import FIG56_CHUNKS, FIG56_SIZES
from repro.util.sizes import format_bytes


def _generate_both():
    return fig5_series(), fig6_series()


def test_fig6_claims(once):
    fig5, fig6 = once(_generate_both)

    print("\nFigure 6 totals (ms) [Figure 5 in brackets]:")
    rows = []
    for size in FIG56_SIZES:
        t5 = total_times_ms(fig5[size])
        t6 = total_times_ms(fig6[size])
        rows.append(
            [format_bytes(size)]
            + [f"{t6[c]:.0f} [{t5[c]:.0f}]" for c in FIG56_CHUNKS]
        )
    print(render_table(["object size"] + [str(c) for c in FIG56_CHUNKS], rows))

    for size in FIG56_SIZES:
        t5 = total_times_ms(fig5[size])
        t6 = total_times_ms(fig6[size])

        # Claim 1: clustering is at least as fast everywhere, and strictly
        # much better where pairs dominate (small objects, big chunks).
        for chunk in FIG56_CHUNKS:
            assert t6[chunk] <= t5[chunk] * 1.01, (
                f"size {size} chunk {chunk}: cluster {t6[chunk]:.0f}ms should not "
                f"exceed per-object {t5[chunk]:.0f}ms"
            )
        assert t6[1000] < t5[1000] / 2 or size == 16384, (
            "for small objects and big chunks, one pair per cluster must be "
            "dramatically cheaper than 1000 pairs"
        )

        # Claim 2: the cluster curves sit closer together — the visual
        # distance between the highest and lowest curve shrinks.  Compare
        # over the multi-object sizes (cluster size 1 degenerates to
        # per-object replication in both figures).
        multi5 = {c: fig5[size][c] for c in FIG56_CHUNKS if c >= 10}
        multi6 = {c: fig6[size][c] for c in FIG56_CHUNKS if c >= 10}
        assert spread_absolute_ms(multi6) < spread_absolute_ms(multi5), (
            f"size {size}: cluster spread {spread_absolute_ms(multi6):.0f}ms should "
            f"be below per-object spread {spread_absolute_ms(multi5):.0f}ms"
        )

    # Claim 1's cost attribution: for 16 KB objects the totals are pinned
    # by serialization + network, so cluster size barely matters (<3%
    # variation across 10..1000).
    t6_16k = total_times_ms(fig6[16384])
    multi = [t6_16k[c] for c in FIG56_CHUNKS if c >= 10]
    assert (max(multi) - min(multi)) / min(multi) < 0.03
