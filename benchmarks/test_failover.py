"""PR-10 bench smoke: change-feed failover.

Asserts the headline acceptance claims — followers run at zero serial
lag on the synchronous-push transport, a follower joins a live group
without the write path pausing, promotion resumes writes with zero
acknowledged-write loss — and records ``BENCH_pr10.json`` at the repo
root when ``OBIWAN_BENCH_RECORD`` is set (the CI bench-smoke job does).
"""

import json
import os
from pathlib import Path

from repro.bench.failover import failover_report


def test_failover_smoke(once):
    report = once(failover_report)
    steady = report["steady_state"]
    live_join = report["live_join"]
    promotion = report["promotion"]

    # Pushes are synchronous per journal event on loopback: any lag at
    # all means frames were dropped or misapplied.
    assert steady["max_lag_serials"] == 0
    assert steady["final_lag_serials"] == 0

    # The late joiner mirrored the whole group and tails at zero lag —
    # and the join happened against a live write load, nothing quiesced.
    assert live_join["mirrors_after_join"] == 32
    assert live_join["lag_after_join_serials"] == 0
    assert live_join["join_wall_clock_ms"] > 0

    # The durability claim: every write acknowledged before the crash
    # is present at the new primary, and post-failover writes fan out.
    assert promotion["acked_writes_lost"] == 0
    assert promotion["resume_write_fanned_out"]
    assert promotion["epoch"] == 2
    assert promotion["mttr_ms"] > 0

    print("\nPR-10 failover:")
    print(
        f"  steady lag    max {steady['max_lag_serials']} serials over "
        f"{steady['writes']} writes"
    )
    print(
        f"  live join     {live_join['join_wall_clock_ms']:.1f} ms for "
        f"{live_join['mirrors_after_join']} mirrors"
    )
    print(
        f"  promotion     {promotion['new_primary']} at epoch "
        f"{promotion['epoch']}, MTTR {promotion['mttr_ms']:.1f} ms, "
        f"{promotion['acked_writes_lost']}/{promotion['acked_writes']} acked writes lost"
    )

    if os.environ.get("OBIWAN_BENCH_RECORD"):
        target = Path(__file__).resolve().parent.parent / "BENCH_pr10.json"
        target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"  recorded {target}")
