"""F1/F2 — the paper's Section 6 future-work studies.

"We plan to test our prototype … under different network conditions
(wide-area and wireless).  We will study how the performance numbers
depend on the relative speed of the processors involved, for example,
between a hand-held PC such as Compaq iPaq, and a desktop PC."
"""

from repro.bench.future_work import cpu_speed_study, network_conditions_study


def test_network_conditions(once):
    """F1: worse links push the optimum toward bigger fetches, and
    clustering wins everywhere."""
    rows = once(network_conditions_study)
    by_name = {row.network: row for row in rows}

    # Optimal chunk is non-decreasing as the link worsens (RTT grows).
    ordered = ["lan-10mbps", "wlan-802.11b", "wan", "gprs"]
    best = [by_name[name].best_chunk for name in ordered]
    assert best == sorted(best), f"optimal chunk must grow with RTT, got {best}"

    # On high-latency links, one-object fetches are catastrophic.
    gprs = by_name["gprs"]
    assert gprs.chunk_totals_ms[1] > 5 * gprs.chunk_totals_ms[200]

    # Clustering is at least as good as the best per-object strategy on
    # every network.
    for row in rows:
        assert min(row.cluster_totals_ms.values()) <= min(row.chunk_totals_ms.values())

    print("\nF1:", [(r.network, r.best_chunk, r.best_cluster) for r in rows])


def test_cpu_speed(once):
    """F2: slower devices amortize replication later and prefer smaller
    fetch bursts."""
    rows = once(cpu_speed_study)

    # The RMI/LMI crossover never moves left as the CPU slows down
    # (replica creation is CPU work).
    crossovers = [row.rmi_vs_lmi_crossover for row in rows]
    assert all(x is not None for x in crossovers)
    assert crossovers == sorted(crossovers)

    # LMI setup cost grows monotonically with the slowdown.
    setups = [row.lmi_setup_ms for row in rows]
    assert setups == sorted(setups)

    # The optimal chunk never grows on slower CPUs (serialization bursts
    # hurt more).
    chunks = [row.best_chunk for row in rows]
    assert chunks == sorted(chunks, reverse=True)

    print("\nF2:", [(r.cpu_factor, r.rmi_vs_lmi_crossover, r.best_chunk) for r in rows])
