"""E2/E5 — Figure 4: cost of RMI vs LMI across invocation counts.

Regenerates the figure's curves on simulated time and asserts every
conclusion the paper draws from it (Section 4.1):

1. "the LMI on a replica performs better than RMI for larger number of
   invocations and for smaller objects";
2. "with RMI, the object size has no influence on the invocations time;
   however, this time grows very sharply with the number of invocations";
3. "for small objects and few invocations, the performance of RMI and
   LMI is similar; the cost of creating a replica and then updating the
   master replica is comparable."
"""

from repro.bench.asciiplot import render_table
from repro.bench.figures import crossover_invocations, fig4_series
from repro.bench.harness import FIG4_SIZES
from repro.util.sizes import format_bytes


def _generate():
    return fig4_series()


def test_fig4_claims(once):
    curves = once(_generate)

    rmi = curves["RMI"]

    # Claim 2a: RMI grows linearly (sharply) with invocation count.
    assert rmi.at(10000) > 1000 * rmi.at(10) * 0.9
    # (size-independence is asserted separately in test_micro_lmi_rmi.)

    # Claim 1: for every size there is a crossover, and it moves right as
    # objects get bigger (replica creation costs more, so LMI needs more
    # invocations to amortize it).
    crossovers = [crossover_invocations(curves, size) for size in FIG4_SIZES]
    assert all(x is not None for x in crossovers), "LMI must eventually win"
    assert crossovers == sorted(crossovers), (
        f"crossover points must be monotone in object size, got {crossovers}"
    )

    # Claim 2b: LMI's slope is orders of magnitude below RMI's — 9000
    # additional invocations cost 9000 x 2 us locally vs 9000 x 2.8 ms
    # remotely.
    rmi_slope = rmi.at(10000) - rmi.at(1000)
    for size in FIG4_SIZES:
        lmi = curves[f"LMI {size}"]
        lmi_slope = lmi.at(10000) - lmi.at(1000)
        assert lmi_slope < rmi_slope / 100

    # Claim 3: at one invocation, small-object LMI is the same order of
    # magnitude as RMI (within ~5x), not orders apart.
    assert curves["LMI 16"].at(1) < 5 * rmi.at(1)

    # Print the paper-style table for the record.
    headers = ["n", "RMI"] + [f"LMI {format_bytes(s)}" for s in FIG4_SIZES]
    rows = [
        [int(x), rmi.at(x)] + [curves[f"LMI {s}"].at(x) for s in FIG4_SIZES]
        for x in rmi.xs
    ]
    print("\nFigure 4 (ms):")
    print(render_table(headers, rows))
    print(
        "crossovers:",
        {format_bytes(s): crossover_invocations(curves, s) for s in FIG4_SIZES},
    )
