"""PR-5 bench smoke: obitrace must be free while it is off.

Asserts the headline acceptance claim — with tracing disabled, the
instrumented fault path costs < 2% on the fault-batching list walk — and
sanity-checks the enabled path (spans actually recorded, no-op span under
2 µs).  Records ``BENCH_pr5.json`` at the repo root when
``OBIWAN_BENCH_RECORD`` is set (the CI bench-smoke job does).

The disabled overhead is the deterministic estimate
``no-op span cost × spans per walk / walk wall time`` — a per-walk delta
that small cannot be resolved by direct A/B wall timing, which is the
point of the claim.
"""

import json
import os
from pathlib import Path

from repro.bench.tracing_overhead import tracing_overhead_report


def test_tracing_overhead_smoke(once):
    report = once(tracing_overhead_report)

    # The traced twin run actually traced: a chunk-1 walk of a 1000-node
    # list emits several spans per fault at each site.
    assert report.spans_per_walk > report.length

    # A disabled span is a dict build plus a shared no-op context manager.
    assert report.null_span_ns < 2000.0

    # The acceptance bar: tracing off costs < 2% of the walk.
    assert report.est_disabled_overhead_pct < 2.0

    print("\nPR-5 tracing overhead:")
    print(
        f"  walk wall clock  off {report.disabled_wall_ms:.1f} ms / "
        f"on {report.enabled_wall_ms:.1f} ms "
        f"({report.spans_per_walk} spans)"
    )
    print(
        f"  no-op span {report.null_span_ns:.0f} ns -> est. disabled "
        f"overhead {report.est_disabled_overhead_pct:.3f}% (< 2% budget)"
    )
    print(f"  enabled overhead {report.enabled_overhead_pct:.1f}%")

    if os.environ.get("OBIWAN_BENCH_RECORD"):
        target = Path(__file__).resolve().parent.parent / "BENCH_pr5.json"
        target.write_text(
            json.dumps(report.jsonable(), indent=2, sort_keys=True) + "\n"
        )
        print(f"  recorded {target}")
