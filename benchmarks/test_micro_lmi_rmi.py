"""E1 — the Section 4.1 anchor measurements.

Paper: "The time it takes to make a local method invocation is 2
microseconds.  A remote method invocation takes 2.8 milliseconds and,
obviously, is independent of the object size."

Two kinds of measurement:

* simulated — the calibrated model must hit the paper's numbers almost
  exactly (that is what calibration means);
* wall-clock (pytest-benchmark) — the real Python overhead of one LMI
  and one loopback RMI through the middleware, reported for the record.
"""

from repro.bench.figures import experiment_anchors
from repro.bench.workloads import PayloadNode, payload_for_size
from repro.core.costs import CostModel
from repro.core.runtime import World


def test_simulated_anchors_match_paper(once):
    anchors = once(experiment_anchors)
    # LMI is exactly the calibrated constant.
    assert abs(anchors.lmi_microseconds - 2.0) < 0.01
    # RMI: 2.8 ms within 5% (the frame envelope adds a little).
    assert abs(anchors.rmi_milliseconds - 2.8) / 2.8 < 0.05
    print(
        f"\nE1 anchors: LMI={anchors.lmi_microseconds:.2f}us (paper 2us), "
        f"RMI={anchors.rmi_milliseconds:.3f}ms (paper 2.8ms)"
    )


def test_wallclock_lmi(benchmark):
    """Real cost of one local invocation on a replica (no simulation)."""
    world = World.loopback(costs=CostModel.zero())
    provider = world.create_site("S2")
    consumer = world.create_site("S1")
    provider.export(PayloadNode(index=1), name="obj")
    replica = consumer.replicate("obj")
    benchmark(replica.get_index)


def test_wallclock_rmi_loopback(benchmark):
    """Real cost of one loopback RMI through encode/dispatch/decode."""
    world = World.loopback(costs=CostModel.zero())
    provider = world.create_site("S2")
    consumer = world.create_site("S1")
    provider.export(PayloadNode(index=1), name="obj")
    stub = consumer.remote_stub("obj")
    benchmark(stub.get_index)


def test_rmi_independent_of_object_size(once):
    """The paper's claim that RMI cost does not depend on object size."""

    def measure():
        times = {}
        for size in (16, 65536):
            world = World.loopback()
            provider = world.create_site("S2")
            consumer = world.create_site("S1")
            provider.export(
                PayloadNode(index=1, payload=payload_for_size(size)), name="obj"
            )
            stub = consumer.remote_stub("obj")
            start = world.clock.now()
            for _ in range(100):
                stub.get_index()
            times[size] = world.clock.now() - start
        return times

    times = once(measure)
    small, large = times[16], times[65536]
    assert abs(large - small) / small < 0.01, (
        "RMI invocation cost must not depend on the target object's size"
    )
