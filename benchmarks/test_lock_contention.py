"""PR-6 bench smoke: the striped runtime must beat the single lock.

Races the pre-striping runtime (``stripes=1, snapshot_reads=False`` —
one reentrant lock around every table access) against the striped one
(``stripes=32``, lock-free snapshot reads) on the fault path's operation
mix at 16/32/64 threads.  The acceptance claim is a >= 2x wall-clock win
at 32 threads.  Records ``BENCH_pr6.json`` at the repo root when
``OBIWAN_BENCH_RECORD`` is set (the CI bench-smoke job does).
"""

import json
import os
from pathlib import Path

from repro.bench.lock_contention import lock_contention_report


def test_lock_contention_smoke(once):
    report = once(lock_contention_report)

    assert {p.threads for p in report.points} == {16, 32, 64}
    for point in report.points:
        # Striping never loses, at any thread count.
        assert point.speedup > 1.0, (
            f"striped runtime slower than single lock at {point.threads} threads"
        )
        # The single lock is the one convoying: contended acquires on the
        # striped runtime stay well below the baseline's.
        assert point.striped_waits < point.baseline_waits

    # The acceptance bar: >= 2x at 32 fault threads.
    assert report.point(32).speedup >= 2.0

    print("\nPR-6 lock contention (baseline = single lock, no snapshot reads):")
    for point in report.points:
        print(
            f"  {point.threads:>3} threads  baseline {point.baseline_ms:8.1f} ms"
            f"  striped {point.striped_ms:8.1f} ms  speedup {point.speedup:.2f}x"
            f"  (waits {point.baseline_waits} -> {point.striped_waits})"
        )

    if os.environ.get("OBIWAN_BENCH_RECORD"):
        target = Path(__file__).resolve().parent.parent / "BENCH_pr6.json"
        target.write_text(
            json.dumps(report.jsonable(), indent=2, sort_keys=True) + "\n"
        )
        print(f"  recorded {target}")
