"""PR-4 bench smoke: delta-encoded replica synchronization.

Asserts the headline acceptance claim — the 1%-mutation put/refresh
workload moves at least 5x fewer bytes and finishes measurably faster
with ``delta_sync`` on, with zero correctness drift (post-sync
fingerprints identical on both paths) — and records ``BENCH_pr4.json``
at the repo root when ``OBIWAN_BENCH_RECORD`` is set (the CI bench-smoke
job does).
"""

import json
import os
from pathlib import Path

from repro.bench.delta_sync import delta_sync_report


def test_delta_sync_smoke(once):
    report = once(delta_sync_report)
    baseline = report["baseline"]
    delta = report["delta"]

    # Both paths converge exactly: run_sync raises on any fingerprint
    # drift, so reaching these flags means master == replica everywhere.
    assert baseline["fingerprints_match"]
    assert delta["fingerprints_match"]

    # The baseline never takes a delta path; the delta run never falls
    # back to full state on this single-writer workload.
    assert baseline["puts_delta"] == 0
    assert baseline["refreshes_delta"] == 0
    assert delta["puts_full"] == 0
    assert delta["refreshes_full"] == 0
    assert delta["need_full_downgrades"] == 0

    # Dirty tracking splits the working-set puts: every record that
    # mutated since its last sync ships a delta, the clean ones are
    # no-ops that never touch the network.
    assert delta["puts_delta"] > 0
    assert delta["puts_noop"] > 0
    assert delta["puts_delta"] + delta["puts_noop"] == baseline["puts_full"]
    assert delta["refreshes_delta"] == baseline["refreshes_full"]
    assert delta["messages"] < baseline["messages"]
    assert delta["delta_bytes_saved"] > 0

    # The acceptance bar: >= 5x fewer bytes on the wire, and faster.
    assert report["bytes_reduction"] >= 5.0
    assert delta["wall_clock_ms"] < baseline["wall_clock_ms"]

    print("\nPR-4 delta sync:")
    print(
        f"  bytes on wire {baseline['bytes_on_wire']} -> "
        f"{delta['bytes_on_wire']} ({report['bytes_reduction']:.1f}x)"
    )
    print(
        f"  wall clock    {baseline['wall_clock_ms']:.1f} ms -> "
        f"{delta['wall_clock_ms']:.1f} ms "
        f"({report['wall_clock_speedup']:.2f}x)"
    )
    print(
        f"  puts          {delta['puts_delta']} delta + "
        f"{delta['puts_noop']} no-op (vs {baseline['puts_full']} full), "
        f"refreshes {delta['refreshes_delta']} delta"
    )

    if os.environ.get("OBIWAN_BENCH_RECORD"):
        target = Path(__file__).resolve().parent.parent / "BENCH_pr4.json"
        target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"  recorded {target}")
