"""PR-7 bench smoke: obicodec schema-compiled serialization.

Asserts the headline acceptance claims — the compiled fast path moves a
registered-class workload through the serializer at >= 2x the combined
encode+decode throughput of the reflective codec with every roundtrip
(and fingerprint) exact, and turning the codec knob on leaves the PR-2
fault-batching and PR-4 delta-sync e2e benches no slower — and records
``BENCH_pr7.json`` at the repo root when ``OBIWAN_BENCH_RECORD`` is set
(the CI bench-smoke job does).
"""

import json
import os
from pathlib import Path

from repro.bench.codec_throughput import codec_throughput_report


def test_codec_throughput_smoke(once):
    report = once(codec_throughput_report)
    micro = report["micro"]

    # run_throughput raises on any drift, so reaching this line means
    # every compiled roundtrip rebuilt the exact instance dict and the
    # exact replica fingerprint of its reflective twin.
    assert micro["roundtrips_verified"] == micro["reflective"]["objects"]

    # The acceptance bar: >= 2x combined serializer throughput, and a
    # frame that dropped the per-field names.
    assert micro["combined_speedup"] >= 2.0
    assert micro["encode_speedup"] > 1.0
    assert micro["decode_speedup"] > 1.0
    assert micro["bytes_per_frame_compiled"] < micro["bytes_per_frame_reflective"]

    # E2E guardrails: negotiation alone (fault batching walks an
    # object-reference graph, so nothing compiles there) must be noise,
    # and the all-scalar delta-sync workload must not get slower or
    # fatter on the wire.
    walk = report["fault_batching_e2e"]
    assert walk["compiled_ms"] <= walk["reflective_ms"] * 1.02
    sync = report["delta_sync_e2e"]
    assert sync["compiled_ms"] <= sync["reflective_ms"]
    assert sync["compiled_bytes"] <= sync["reflective_bytes"]

    print("\nPR-7 obicodec:")
    for row in (micro["reflective"], micro["compiled"]):
        print(
            f"  {row['label']:<10} encode {row['encode_mb_s']:>7.1f} MB/s, "
            f"decode {row['decode_mb_s']:>7.1f} MB/s, "
            f"{row['frame_bytes'] // row['objects']} B/frame"
        )
    print(
        f"  speedups      encode {micro['encode_speedup']:.1f}x, decode "
        f"{micro['decode_speedup']:.1f}x, combined {micro['combined_speedup']:.1f}x"
    )
    print(
        f"  e2e           fault batching {walk['overhead_pct']:+.2f}%, "
        f"delta sync {sync['reflective_ms']:.0f} -> {sync['compiled_ms']:.0f} ms"
    )

    if os.environ.get("OBIWAN_BENCH_RECORD"):
        target = Path(__file__).resolve().parent.parent / "BENCH_pr7.json"
        target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"  recorded {target}")
