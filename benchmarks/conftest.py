"""Shared benchmark configuration.

Every benchmark here is a deterministic simulated-time run, so a single
round is exact — wall-clock variance does not affect the reported
simulated milliseconds.  The ``benchmark`` fixture still measures real
runtime (useful to track harness overhead), while assertions verify the
paper's claims on the simulated results.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a computation exactly once under the benchmark fixture and
    return its result for claim assertions."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
