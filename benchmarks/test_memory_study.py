"""A6 — memory footprint under partial access.

Paper Figure 5, last conclusion: "for info-appliances with reduced
amount of free memory, when only a part of the objects are effectively
needed, it is clearly advantageous to incrementally replicate a small
number of objects (but more than one each time)."
"""

from repro.bench.memory_study import memory_study


def test_memory_study_claims(once):
    rows = once(memory_study)
    by_chunk = {row.chunk: row for row in rows}

    # Needing 100 of 1000 objects: chunks up to 100 hold exactly what
    # was needed...
    for chunk in (1, 10, 50, 100):
        assert by_chunk[chunk].overshoot <= 1.1

    # ...while 500/1000 waste device memory on objects never touched.
    assert by_chunk[500].overshoot >= 4.5
    assert by_chunk[1000].overshoot >= 9.0
    assert by_chunk[1000].memory_bytes > 9 * by_chunk[100].memory_bytes

    # "but more than one each time": chunk 1 matches the memory of the
    # 10..100 regime yet pays far more time (a fault per object).
    assert by_chunk[1].time_ms > 2 * by_chunk[50].time_ms

    # And the big chunks lose on *both* axes under partial access.
    assert by_chunk[1000].time_ms > by_chunk[50].time_ms
    assert by_chunk[500].time_ms > by_chunk[50].time_ms

    print(
        "\nA6:",
        [(r.chunk, f"{r.time_ms:.0f}ms", f"{r.overshoot:.1f}x") for r in rows],
    )


def test_needed_bound_validated(once):
    import pytest

    def probe():
        with pytest.raises(ValueError):
            memory_study(length=10, needed=20, chunks=(1,))
        return True

    assert once(probe)
