"""E3/E6 — Figure 5: incremental replication without clustering.

Regenerates the 1000-object-list sweep (chunk ∈ {1,10,50,100,500,1000},
object sizes 64 B / 1 KB / 16 KB) and asserts the paper's Section 4.2
conclusions:

1. "the steps observed are due to the creation and transference of
   replicas along with the corresponding proxy-in/proxy-out pairs";
2. "the creation and transference of replicas along with the pairs is
   more significant than object invocations";
3. "the incremental replication of one object each time is the most
   flexible alternative but is the least efficient for large number of
   invocations";
4. "the incremental replication of 10 to 100 objects each time is the
   most efficient alternative";
5. "the incremental replication of 500 or 1000 objects each time is not
   efficient because of the high cost of creation and transference of
   the corresponding replicas and proxy-out/proxy-in pairs".
"""

from repro.bench.asciiplot import render_table
from repro.bench.figures import fig5_series, staircase_step_count, total_times_ms
from repro.bench.harness import FIG56_CHUNKS, FIG56_SIZES
from repro.util.sizes import format_bytes


def test_fig5_generate(once):
    """Time the full Figure 5 sweep (and print its totals)."""
    data = once(fig5_series)
    print("\nFigure 5 totals (ms):")
    rows = []
    for size in FIG56_SIZES:
        totals = total_times_ms(data[size])
        rows.append([format_bytes(size)] + [f"{totals[c]:.0f}" for c in FIG56_CHUNKS])
    print(render_table(["object size"] + [str(c) for c in FIG56_CHUNKS], rows))

    for size in FIG56_SIZES:
        panel = data[size]
        totals = total_times_ms(panel)

        # Claim 3: chunk 1 is the least efficient for a full traversal.
        worst = max(totals, key=totals.get)
        assert worst == 1, f"size {size}: expected chunk 1 worst, got {worst}"

        # Claim 4: the optimum lies in 10..100.
        best = min(totals, key=totals.get)
        assert 10 <= best <= 100, f"size {size}: optimum chunk {best} not in 10..100"

        # Claim 5: 500 and 1000 are worse than the 10..100 regime.
        best_mid = min(totals[10], totals[50], totals[100])
        assert totals[500] > best_mid
        assert totals[1000] > best_mid

        # Claim 1: curves show one step per fetch — chunk k ⇒ ~1000/k
        # steps of at least one RTT each.
        for chunk in (10, 100):
            series = panel[chunk]
            steps = staircase_step_count(series, min_jump_ms=2.0)
            expected = 1000 // chunk - 1  # the first fetch precedes invocation 1
            assert abs(steps - expected) <= expected * 0.1 + 1, (
                f"size {size} chunk {chunk}: {steps} steps, expected ~{expected}"
            )

        # Claim 2: fetch costs dwarf invocation costs — pure invocation
        # time for 1000 calls is 2 ms; every total is far above it.
        assert min(totals.values()) > 50 * 2.0
