"""A5 — the access-strategy study.

The paper's core argument: "applications may decide, at run-time, what
is the best way to invoke an object: via remote method invocation (RMI),
or locally via local method invocation (LMI)" — because neither wins
always.  This benchmark replays skewed collaborative sessions under
three strategies and asserts the crossover structure that makes the
run-time choice worth having.
"""

from repro.bench.strategies import (
    SessionSpec,
    generate_session,
    session_length_sweep,
)


def _by_strategy(results):
    return {result.strategy: result for result in results}


def test_strategy_crossover(once):
    sweep = once(session_length_sweep)

    short = _by_strategy(sweep[5])
    mid = _by_strategy(sweep[100])
    long = _by_strategy(sweep[500])

    # Short sessions: pure RMI wins — replication cannot amortize.
    assert short["rmi-only"].simulated_ms < short["replicate-on-use"].simulated_ms
    assert short["rmi-only"].simulated_ms < short["hoard-all"].simulated_ms

    # Long sessions: replication wins decisively.
    assert long["replicate-on-use"].simulated_ms < long["rmi-only"].simulated_ms / 2

    # Hoard-all is never better than replicate-on-use under skew: it
    # moves documents the session never touches...
    for length in (5, 100, 500):
        by = _by_strategy(sweep[length])
        assert by["hoard-all"].simulated_ms >= by["replicate-on-use"].simulated_ms
        assert by["hoard-all"].documents_moved >= by["replicate-on-use"].documents_moved

    # ...and the gap narrows as coverage approaches the whole workspace.
    gap_mid = mid["hoard-all"].simulated_ms - mid["replicate-on-use"].simulated_ms
    gap_long = long["hoard-all"].simulated_ms - long["replicate-on-use"].simulated_ms
    assert gap_long < gap_mid

    # RMI moves the fewest bytes on tiny sessions; replication's bytes
    # are dominated by document transfer, not by invocations.
    assert _by_strategy(sweep[5])["rmi-only"].network_bytes < _by_strategy(sweep[5])[
        "replicate-on-use"
    ].network_bytes

    print(
        "\nA5 winners:",
        {length: min(results, key=lambda r: r.simulated_ms).strategy
         for length, results in sweep.items()},
    )


def test_session_generation_is_deterministic(once):
    def both():
        spec = SessionSpec(seed=42)
        return generate_session(spec), generate_session(spec)

    first, second = once(both)
    assert first == second
    assert all(kind in ("read", "write") for _doc, kind in first)
    docs = {doc for doc, _kind in first}
    assert docs  # skewed but non-empty coverage
