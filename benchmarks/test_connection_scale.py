"""PR-9 bench smoke: one reactor loop vs thread-per-connection at scale.

Phase one holds thousands of multiplexed consumer channels open against
a single provider site (default 5,000; ``OBIWAN_CONNECTION_SCALE``
shrinks it for CI).  Phase two races the reactor against the threaded
backend on the same echo workload at 1,000 consumers
(``OBIWAN_CONNECTION_RACE``); the acceptance claim is a >= 3x wall-clock
win.  Sanity claims hold at any scale; the paper-grade bars only apply
when the run is at full scale, so the CI smoke stays fast while the
committed ``BENCH_pr9.json`` comes from a full-scale run.  Records
``BENCH_pr9.json`` at the repo root when ``OBIWAN_BENCH_RECORD`` is set
(the CI bench-smoke job does).
"""

import json
import os
from pathlib import Path

from repro.bench.connection_scale import (
    DEFAULT_RACE_CONNECTIONS,
    DEFAULT_SUSTAIN_CONNECTIONS,
    connection_scale_report,
)


def test_connection_scale_smoke(once):
    report = once(connection_scale_report)
    sustain, race = report.sustain, report.race

    # The provider accepted one connection per consumer and held them all
    # open at once (the +1s are the warmup consumer and its probe carrier).
    assert sustain.accepted >= sustain.connections
    assert sustain.open_at_peak >= sustain.connections
    assert sustain.frames_pipelined >= sustain.connections

    # The reactor never loses to thread-per-connection, at any scale.
    assert race.speedup > 1.0

    # The PR-9 acceptance bars, judged only at full scale.
    if sustain.connections >= DEFAULT_SUSTAIN_CONNECTIONS:
        assert sustain.connections >= 5000
    if race.connections >= DEFAULT_RACE_CONNECTIONS:
        assert race.speedup >= 3.0

    print("\nPR-9 connection scale (one provider site, loopback TCP):")
    print(
        f"  sustain  {sustain.connections} consumer channels held"
        f"  ({sustain.accepted} accepted, peak {sustain.open_at_peak} open)"
        f"  in {sustain.wall_ms:.0f} ms, loop lag max {sustain.loop_lag_max_ms:.2f} ms"
    )
    print(
        f"  race     {race.connections} consumers x {race.requests_per_consumer} requests:"
        f"  threaded {race.threaded_ms:.0f} ms  reactor {race.reactor_ms:.0f} ms"
        f"  speedup {race.speedup:.2f}x"
    )

    if os.environ.get("OBIWAN_BENCH_RECORD"):
        target = Path(__file__).resolve().parent.parent / "BENCH_pr9.json"
        target.write_text(
            json.dumps(report.jsonable(), indent=2, sort_keys=True) + "\n"
        )
        print(f"  recorded {target}")
