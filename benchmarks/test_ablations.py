"""A1–A4 — ablation benchmarks (design-choice probes beyond the paper).

Each ablation isolates one mechanism the paper's evaluation bundles:
proxy-pair cost, fault latency, consistency traffic, transport choice.
"""

from repro.bench import ablations


def test_ablate_proxy_pairs(once):
    """A1: per-object pairs cost real time; clustering removes it."""
    rows = once(ablations.ablate_proxy_pairs)
    for row in rows:
        assert row.clustered_ms < row.per_object_ms
    # The gap widens with chunk size: more pairs per batch, plus the
    # superlinear burst penalty.
    ratios = [row.overhead_ratio for row in rows]
    assert ratios == sorted(ratios)
    print("\nA1:", [(r.chunk, f"{r.overhead_ratio:.2f}x") for r in rows])


def test_ablate_prefetch(once):
    """A2: the paper's footnote — perfect prefetching eliminates fault
    latency from the invocation path."""
    result = once(ablations.ablate_prefetch)
    assert result.latency_eliminated
    # Total time moves from traversal to prefetch, it does not vanish:
    # the prefetched traversal is pure LMI.
    assert result.prefetch_total_ms < result.demand_total_ms / 50
    print(
        f"\nA2: demand worst={result.demand_worst_invocation_ms:.2f}ms, "
        f"prefetched worst={result.prefetch_worst_invocation_ms:.4f}ms"
    )


def test_ablate_consistency(once):
    """A3: protocol choice trades freshness for time and bytes."""
    rows = once(ablations.ablate_consistency)
    by_name = {row.protocol: row for row in rows}

    # Polling is the most expensive in both time and bytes.
    for name in ("invalidation", "lease-50ms", "epidemic"):
        assert by_name[name].total_ms < by_name["poll"].total_ms
        assert by_name[name].network_bytes < by_name["poll"].network_bytes

    # Poll, invalidation and epidemic never serve stale reads here;
    # leases do — that is exactly the staleness they trade away.
    assert by_name["poll"].stale_reads == 0
    assert by_name["invalidation"].stale_reads == 0
    assert by_name["epidemic"].stale_reads == 0
    assert by_name["lease-50ms"].stale_reads > 0
    print("\nA3:", [(r.protocol, f"{r.total_ms:.0f}ms", r.network_bytes) for r in rows])


def test_ablate_transport(once):
    """A4: all three transports produce identical application results."""
    rows = once(ablations.ablate_transport)
    assert len(rows) == 3
    for row in rows:
        assert row.correct, f"{row.transport} produced a wrong traversal sum"
    sums = {row.traversal_sum for row in rows}
    assert len(sums) == 1
    print("\nA4:", [(r.transport, f"{r.wall_seconds * 1e3:.1f}ms wall") for r in rows])
