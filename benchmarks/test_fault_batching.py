"""PR-2 bench smoke: batched demand & prefetching fault resolver.

Asserts the headline acceptance claim — ``prefetch=16`` on the paper's
1000-object list cuts fault round trips by at least 10x without changing
what the traversal computes — and records ``BENCH_pr2.json`` at the repo
root when ``OBIWAN_BENCH_RECORD`` is set (the CI bench-smoke job does).
"""

import json
import math
import os
from pathlib import Path

from repro.bench.fault_batching import (
    DEFAULT_LENGTH,
    DEFAULT_PREFETCH,
    fault_batching_report,
)


def test_fault_batching_smoke(once):
    report = once(fault_batching_report)
    baseline = report["baseline"]
    batched = report["prefetch"]

    # Demand-driven chunk-1: one round trip per remaining list element.
    assert baseline["fault_round_trips"] == DEFAULT_LENGTH - 1
    assert baseline["demands_batched"] == 0
    assert baseline["prefetch_hits"] == 0

    # Prefetch k: the frontier advances k objects per round trip.
    expected = math.ceil((DEFAULT_LENGTH - 1) / DEFAULT_PREFETCH)
    assert batched["fault_round_trips"] == expected
    assert batched["demands_batched"] == expected
    assert batched["prefetch_hits"] == (DEFAULT_LENGTH - 1) - expected

    # The acceptance bar: >= 10x fewer round trips, and faster overall.
    assert report["round_trip_reduction"] >= 10.0
    assert batched["wall_clock_ms"] < baseline["wall_clock_ms"]

    print("\nPR-2 fault batching:")
    print(
        f"  round trips {baseline['fault_round_trips']} -> "
        f"{batched['fault_round_trips']} "
        f"({report['round_trip_reduction']:.1f}x)"
    )
    print(
        f"  wall clock  {baseline['wall_clock_ms']:.1f} ms -> "
        f"{batched['wall_clock_ms']:.1f} ms "
        f"({report['wall_clock_speedup']:.2f}x)"
    )
    print(
        f"  bytes sent  {baseline['bytes_sent']} -> {batched['bytes_sent']}"
    )

    if os.environ.get("OBIWAN_BENCH_RECORD"):
        target = Path(__file__).resolve().parent.parent / "BENCH_pr2.json"
        target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"  recorded {target}")
