"""Legacy setup shim.

This environment has no network access and no ``wheel`` package, so PEP 660
editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` (or plain ``pip install -e .`` on a normal machine)
uses this shim instead.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
