"""Network tracing: record every frame a network moves.

A :class:`TraceRecorder` subscribes to a network and keeps an ordered
log of ``(t, kind, src, dst, size)`` events.  Uses:

* protocol-conformance tests assert the *exact* message sequence of a
  middleware operation (e.g. Figure 1's get is lookup + get, nothing
  else);
* debugging — ``render()`` prints a readable timeline;
* workload studies — per-phase byte/message accounting beyond the
  aggregate counters in :class:`~repro.simnet.stats.NetworkStats`.

Tracing is an observer on :meth:`Network._transit`; attaching it never
changes behaviour or cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.message import Message, MessageKind
from repro.simnet.network import Network


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One frame's traversal."""

    t: float
    kind: MessageKind
    src: str
    dst: str
    size: int
    request_id: str

    def render(self) -> str:
        arrow = "→" if self.kind in (MessageKind.REQUEST, MessageKind.CAST) else "⇠"
        return (
            f"t={self.t * 1e3:9.3f}ms  {self.src:>12s} {arrow} {self.dst:<12s} "
            f"{self.kind.value:<8s} {self.size:6d} B"
        )


class TraceRecorder:
    """Ordered log of every frame on one network."""

    def __init__(self, network: Network):
        self.network = network
        self.events: list[TraceEvent] = []
        self._original_transit = network._transit
        network._transit = self._traced_transit  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # the observer
    # ------------------------------------------------------------------
    def _traced_transit(self, message: Message) -> float:
        seconds = self._original_transit(message)
        self.events.append(
            TraceEvent(
                t=self.network.clock.now(),
                kind=message.kind,
                src=message.src,
                dst=message.dst,
                size=message.size,
                request_id=message.request_id,
            )
        )
        return seconds

    def detach(self) -> None:
        """Stop recording (restores the network's transit path)."""
        self.network._transit = self._original_transit  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def sequence(self) -> list[tuple[str, str, str]]:
        """The conformance view: (kind, src, dst) per frame, in order."""
        return [(e.kind.value, e.src, e.dst) for e in self.events]

    def between(self, a: str, b: str) -> list[TraceEvent]:
        """Events travelling between two sites, either direction."""
        return [
            e
            for e in self.events
            if (e.src, e.dst) in ((a, b), (b, a))
        ]

    def filter(
        self,
        *,
        request_id: str | None = None,
        kind: MessageKind | None = None,
        src: str | None = None,
        dst: str | None = None,
    ) -> list[TraceEvent]:
        """Events matching every given criterion, in order.

        ``filter(request_id=...)`` isolates one operation's frames — the
        request and its response share the id — so the frame-level and
        span-level views of the same round trip can be joined.
        """
        return [
            e
            for e in self.events
            if (request_id is None or e.request_id == request_id)
            and (kind is None or e.kind is kind)
            and (src is None or e.src == src)
            and (dst is None or e.dst == dst)
        ]

    def to_spans(self, *, trace_id: str | None = None) -> list["Span"]:
        """The frame log as obitrace spans (the frame-level bridge).

        Each completed request/response pair becomes one ``net.round_trip``
        span lasting from the request's transit to its response's; casts
        and orphaned requests become zero-duration ``net.cast`` /
        ``net.request`` marks.  All spans are roots of one trace (fresh id
        unless given), timed on the network clock — the same time base
        traced sites use — so they line up under obitrace's assembly,
        export and critical-path tooling alongside protocol spans.
        """
        from repro.obs.spans import Span, next_seq
        from repro.util.ids import new_span_id, new_trace_id

        tid = trace_id if trace_id is not None else new_trace_id()
        spans: list[Span] = []
        open_requests: dict[str, TraceEvent] = {}
        for event in self.events:
            if event.kind is MessageKind.REQUEST:
                open_requests[event.request_id] = event
                continue
            if event.kind in (MessageKind.RESPONSE, MessageKind.ERROR):
                request = open_requests.pop(event.request_id, None)
                if request is not None:
                    spans.append(
                        Span(
                            trace_id=tid,
                            span_id=new_span_id(),
                            parent_id=None,
                            kind="net.round_trip",
                            name=request.request_id,
                            site=request.src,
                            start=request.t,
                            duration=max(0.0, event.t - request.t),
                            attributes={
                                "dst": request.dst,
                                "bytes_out": request.size,
                                "bytes_in": event.size,
                            },
                            status="ok" if event.kind is MessageKind.RESPONSE else "error",
                            seq=next_seq(),
                        )
                    )
                continue
            spans.append(
                Span(
                    trace_id=tid,
                    span_id=new_span_id(),
                    parent_id=None,
                    kind="net.cast",
                    name=event.request_id,
                    site=event.src,
                    start=event.t,
                    attributes={"dst": event.dst, "bytes_out": event.size},
                    seq=next_seq(),
                )
            )
        for request in open_requests.values():
            spans.append(
                Span(
                    trace_id=tid,
                    span_id=new_span_id(),
                    parent_id=None,
                    kind="net.request",
                    name=request.request_id,
                    site=request.src,
                    start=request.t,
                    attributes={"dst": request.dst, "bytes_out": request.size},
                    seq=next_seq(),
                )
            )
        spans.sort(key=lambda span: (span.start, span.seq))
        return spans

    def bytes_total(self) -> int:
        return sum(e.size for e in self.events)

    def round_trips(self) -> int:
        """Completed request/response pairs in the log."""
        requests = {e.request_id for e in self.events if e.kind is MessageKind.REQUEST}
        responses = {
            e.request_id for e in self.events if e.kind is MessageKind.RESPONSE
        }
        return len(requests & responses)

    def render(self) -> str:
        return "\n".join(event.render() for event in self.events) or "(no traffic)"

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.detach()
