"""Network tracing: record every frame a network moves.

A :class:`TraceRecorder` subscribes to a network and keeps an ordered
log of ``(t, kind, src, dst, size)`` events.  Uses:

* protocol-conformance tests assert the *exact* message sequence of a
  middleware operation (e.g. Figure 1's get is lookup + get, nothing
  else);
* debugging — ``render()`` prints a readable timeline;
* workload studies — per-phase byte/message accounting beyond the
  aggregate counters in :class:`~repro.simnet.stats.NetworkStats`.

Tracing is an observer on :meth:`Network._transit`; attaching it never
changes behaviour or cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.message import Message, MessageKind
from repro.simnet.network import Network


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One frame's traversal."""

    t: float
    kind: MessageKind
    src: str
    dst: str
    size: int
    request_id: str

    def render(self) -> str:
        arrow = "→" if self.kind in (MessageKind.REQUEST, MessageKind.CAST) else "⇠"
        return (
            f"t={self.t * 1e3:9.3f}ms  {self.src:>12s} {arrow} {self.dst:<12s} "
            f"{self.kind.value:<8s} {self.size:6d} B"
        )


class TraceRecorder:
    """Ordered log of every frame on one network."""

    def __init__(self, network: Network):
        self.network = network
        self.events: list[TraceEvent] = []
        self._original_transit = network._transit
        network._transit = self._traced_transit  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # the observer
    # ------------------------------------------------------------------
    def _traced_transit(self, message: Message) -> float:
        seconds = self._original_transit(message)
        self.events.append(
            TraceEvent(
                t=self.network.clock.now(),
                kind=message.kind,
                src=message.src,
                dst=message.dst,
                size=message.size,
                request_id=message.request_id,
            )
        )
        return seconds

    def detach(self) -> None:
        """Stop recording (restores the network's transit path)."""
        self.network._transit = self._original_transit  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def sequence(self) -> list[tuple[str, str, str]]:
        """The conformance view: (kind, src, dst) per frame, in order."""
        return [(e.kind.value, e.src, e.dst) for e in self.events]

    def between(self, a: str, b: str) -> list[TraceEvent]:
        """Events travelling between two sites, either direction."""
        return [
            e
            for e in self.events
            if (e.src, e.dst) in ((a, b), (b, a))
        ]

    def bytes_total(self) -> int:
        return sum(e.size for e in self.events)

    def round_trips(self) -> int:
        """Completed request/response pairs in the log."""
        requests = {e.request_id for e in self.events if e.kind is MessageKind.REQUEST}
        responses = {
            e.request_id for e in self.events if e.kind is MessageKind.RESPONSE
        }
        return len(requests & responses)

    def render(self) -> str:
        return "\n".join(event.render() for event in self.events) or "(no traffic)"

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.detach()
