"""Traffic accounting.

The paper argues OBIWAN "attempts to minimize bandwidth and connection
time"; the benchmark harness substantiates that by reading these counters
— messages, bytes and modelled transfer seconds, per direction and per
site pair.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class LinkStats:
    """Counters for one ordered site pair (src → dst)."""

    messages: int = 0
    bytes: int = 0
    transfer_seconds: float = 0.0
    drops: int = 0
    rejected_disconnected: int = 0

    def record(self, size: int, seconds: float) -> None:
        self.messages += 1
        self.bytes += size
        self.transfer_seconds += seconds


@dataclass
class NetworkStats:
    """Aggregated traffic counters for a whole network."""

    per_link: dict[tuple[str, str], LinkStats] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def link(self, src: str, dst: str) -> LinkStats:
        with self._lock:
            return self.per_link.setdefault((src, dst), LinkStats())

    def record(self, src: str, dst: str, size: int, seconds: float) -> None:
        self.link(src, dst).record(size, seconds)

    def record_drop(self, src: str, dst: str) -> None:
        self.link(src, dst).drops += 1

    def record_rejected(self, src: str, dst: str) -> None:
        self.link(src, dst).rejected_disconnected += 1

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def total_messages(self) -> int:
        with self._lock:
            return sum(s.messages for s in self.per_link.values())

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(s.bytes for s in self.per_link.values())

    @property
    def total_transfer_seconds(self) -> float:
        with self._lock:
            return sum(s.transfer_seconds for s in self.per_link.values())

    def bytes_between(self, a: str, b: str) -> int:
        """Bytes moved in either direction between two sites."""
        with self._lock:
            forward = self.per_link.get((a, b))
            backward = self.per_link.get((b, a))
        return (forward.bytes if forward else 0) + (backward.bytes if backward else 0)

    def reset(self) -> None:
        with self._lock:
            self.per_link.clear()
