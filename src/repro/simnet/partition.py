"""Connectivity state: disconnections and partitions.

The paper's central scenario is a mobile site that loses connectivity —
voluntarily (connection cost) or involuntarily (no coverage) — and keeps
working on local replicas.  :class:`ConnectivityMap` tracks which sites can
currently talk, and why not when they cannot.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Disconnection:
    """Why a site is offline."""

    site_id: str
    voluntary: bool


class ConnectivityMap:
    """Tracks per-site disconnections and pairwise partitions.

    Two sites can communicate iff neither is disconnected and no partition
    separates them.  Thread-safe: the threaded and TCP transports consult it
    from dispatcher threads while tests mutate it from the main thread.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._disconnected: dict[str, Disconnection] = {}
        self._partitions: list[tuple[frozenset[str], frozenset[str]]] = []

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def disconnect(self, site_id: str, *, voluntary: bool = False) -> None:
        """Take ``site_id`` offline."""
        with self._lock:
            self._disconnected[site_id] = Disconnection(site_id, voluntary)

    def reconnect(self, site_id: str) -> None:
        """Bring ``site_id`` back online (idempotent)."""
        with self._lock:
            self._disconnected.pop(site_id, None)

    def partition(self, group_a: set[str] | frozenset[str], group_b: set[str] | frozenset[str]) -> None:
        """Sever communication between every pair across the two groups."""
        a, b = frozenset(group_a), frozenset(group_b)
        if a & b:
            raise ValueError(f"partition groups overlap: {sorted(a & b)}")
        with self._lock:
            self._partitions.append((a, b))

    def heal(self) -> None:
        """Remove all partitions (disconnections stay in force)."""
        with self._lock:
            self._partitions.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_disconnected(self, site_id: str) -> bool:
        with self._lock:
            return site_id in self._disconnected

    def disconnection(self, site_id: str) -> Disconnection | None:
        with self._lock:
            return self._disconnected.get(site_id)

    def can_communicate(self, a: str, b: str) -> bool:
        """True iff a frame from ``a`` can currently reach ``b``."""
        if a == b:
            return True
        with self._lock:
            if a in self._disconnected or b in self._disconnected:
                return False
            for group_a, group_b in self._partitions:
                if (a in group_a and b in group_b) or (a in group_b and b in group_a):
                    return False
        return True

    def blocking_disconnection(self, a: str, b: str) -> Disconnection | None:
        """The disconnection record blocking ``a``→``b``, if any."""
        with self._lock:
            for site in (a, b):
                record = self._disconnected.get(site)
                if record is not None:
                    return record
        return None
