"""Localhost TCP transport with connection pooling.

The closest analogue of the paper's RMI-over-Ethernet deployment: frames
really cross the operating system's socket layer.  Each attached site
binds a listening socket on ``127.0.0.1``; callers keep persistent
per-``(src, dst)`` connections in a pool, so repeated RPCs measure
protocol cost rather than TCP handshakes.  Server connections serve
frames until the peer closes.

Pool behaviour:

* a call acquires an idle pooled connection (health-checked: an idle
  socket that turns readable has been closed or reset by the peer and is
  discarded) or opens a fresh one;
* a call that fails on a *reused* connection retries once on a fresh
  connection — the peer may have restarted since the socket was pooled;
* detaching a site closes every pooled connection from or to it, and the
  pool refuses to retain connections to detached sites *or to a stale
  incarnation of a re-attached site* (a released socket is pooled only if
  it still points at the port the site currently listens on), so
  reconnecting peers (new port) are picked up transparently;
* reuse/creation counts are recorded in :class:`PoolStats` —
  ``connections_reused`` in site telemetry comes from here.

The in-process :class:`~repro.simnet.network.Network` object doubles as
the port directory, which keeps the transport self-contained for tests
and examples.  Connectivity (disconnections, partitions) is still
enforced — a "disconnected" mobile site refuses traffic even though the
socket would physically work.
"""

from __future__ import annotations

import select
import socket
import struct
import threading
from dataclasses import dataclass, field

from repro.obs.context import annotate
from repro.simnet.message import Message, MessageKind
from repro.simnet.network import Network
from repro.util.errors import TransportError

_HEADER = struct.Struct("!B I")  # kind, payload length
_KIND_CODES = {
    MessageKind.REQUEST: 1,
    MessageKind.RESPONSE: 2,
    MessageKind.CAST: 3,
    MessageKind.ERROR: 4,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

#: Idle connections kept per (src, dst) pair; extras are closed on release.
POOL_SIZE_PER_PAIR = 8


def _send_frame(sock: socket.socket, message: Message) -> None:
    rid = message.request_id.encode("utf-8")
    src = message.src.encode("utf-8")
    dst = message.dst.encode("utf-8")
    header = _HEADER.pack(_KIND_CODES[message.kind], len(message.payload))
    meta = struct.pack("!HHH", len(rid), len(src), len(dst))
    sock.sendall(header + meta + rid + src + dst + message.payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Message:
    kind_code, payload_len = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    rid_len, src_len, dst_len = struct.unpack("!HHH", _recv_exact(sock, 6))
    rid = _recv_exact(sock, rid_len).decode("utf-8")
    src = _recv_exact(sock, src_len).decode("utf-8")
    dst = _recv_exact(sock, dst_len).decode("utf-8")
    payload = _recv_exact(sock, payload_len) if payload_len else b""
    return Message(
        kind=_CODE_KINDS[kind_code], src=src, dst=dst, payload=payload, request_id=rid
    )


@dataclass
class _PairPoolStats:
    """Connection accounting for one ordered site pair."""

    created: int = 0
    reused: int = 0


@dataclass
class PoolStats:
    """Aggregated connection-pool counters for a whole TCP network."""

    per_pair: dict[tuple[str, str], _PairPoolStats] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def pair(self, src: str, dst: str) -> _PairPoolStats:
        with self._lock:
            return self.per_pair.setdefault((src, dst), _PairPoolStats())

    def record_created(self, src: str, dst: str) -> None:
        # The bump must happen under the same lock that guards the table:
        # incrementing the pair returned by ``pair()`` would race once the
        # lock is released (+= is a read-modify-write).  ``pair()`` cannot
        # be reused here — the lock is not reentrant.
        with self._lock:
            self.per_pair.setdefault((src, dst), _PairPoolStats()).created += 1

    def record_reused(self, src: str, dst: str) -> None:
        with self._lock:
            self.per_pair.setdefault((src, dst), _PairPoolStats()).reused += 1

    @property
    def total_created(self) -> int:
        with self._lock:
            return sum(s.created for s in self.per_pair.values())

    @property
    def total_reused(self) -> int:
        with self._lock:
            return sum(s.reused for s in self.per_pair.values())

    def reused_from(self, site_id: str) -> int:
        """Connections reused with ``site_id`` as the caller."""
        with self._lock:
            return sum(s.reused for (src, _dst), s in self.per_pair.items() if src == site_id)


class TcpNetwork(Network):
    """Length-prefixed frames over pooled localhost TCP connections."""

    def __init__(self, *args: object, timeout: float = 30.0, **kwargs: object):
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._timeout = timeout
        self._ports: dict[str, int] = {}
        self._servers: dict[str, socket.socket] = {}
        self._accept_threads: dict[str, threading.Thread] = {}
        self._pool: dict[tuple[str, str], list[socket.socket]] = {}
        self._pool_lock = threading.Lock()
        #: Live server-side connections per serving site, so detach/close
        #: can reclaim their file descriptors instead of waiting for the
        #: client pool to notice the peer went away.
        self._server_conns: dict[str, set[socket.socket]] = {}
        self._conns_lock = threading.Lock()
        self.pool_stats = PoolStats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _on_attach(self, site_id: str) -> None:
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        # A deep backlog: the accept loop spawns a thread per connection
        # and falls behind a connect storm easily; with the old backlog of
        # 16 the kernel RSTs handshakes it cannot queue.
        server.listen(1024)
        self._servers[site_id] = server
        self._ports[site_id] = server.getsockname()[1]
        thread = threading.Thread(
            target=self._accept_loop, args=(site_id, server), name=f"tcp-{site_id}", daemon=True
        )
        self._accept_threads[site_id] = thread
        thread.start()

    def _on_detach(self, site_id: str) -> None:
        server = self._servers.pop(site_id, None)
        if server is not None:
            # shutdown() is what actually wakes the accept loop: on Linux a
            # bare close() leaves a thread blocked in accept() parked
            # forever (the join below would then stall for its full
            # timeout on every detach).
            try:
                server.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                server.close()
            except OSError:
                pass
        self._ports.pop(site_id, None)
        thread = self._accept_threads.pop(site_id, None)
        if thread is not None and thread is not threading.current_thread():
            # The accept loop exits as soon as accept() raises on the closed
            # server socket; joining here keeps detach/close from leaving a
            # thread racing a re-attach of the same site id.
            thread.join(timeout=5.0)
        with self._conns_lock:
            conns = list(self._server_conns.pop(site_id, ()))
        for conn in conns:
            # shutdown() wakes a serving thread blocked in recv (plain
            # close would leave it parked on the old fd); close then
            # releases the descriptor immediately.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            _close_quietly(conn)
        self._drop_pooled(site_id)

    def close(self) -> None:
        super().close()
        for site_id in list(self._servers):
            self._on_detach(site_id)
        with self._pool_lock:
            leftovers = [sock for bucket in self._pool.values() for sock in bucket]
            self._pool.clear()
        for sock in leftovers:
            _close_quietly(sock)

    def port_of(self, site_id: str) -> int:
        """The TCP port a site listens on (useful for diagnostics)."""
        try:
            return self._ports[site_id]
        except KeyError:
            raise TransportError(f"no site {site_id!r} attached to this network") from None

    # ------------------------------------------------------------------
    # connection pool
    # ------------------------------------------------------------------
    def _acquire(self, src: str, dst: str) -> tuple[socket.socket, bool]:
        """An exclusive connection ``src -> dst``: pooled if healthy, else fresh."""
        stale: list[socket.socket] = []
        acquired: socket.socket | None = None
        with self._pool_lock:
            bucket = self._pool.get((src, dst))
            while bucket:
                sock = bucket.pop()
                if _idle_socket_alive(sock):
                    acquired = sock
                    break
                stale.append(sock)
        for sock in stale:
            _close_quietly(sock)
        if acquired is not None:
            self.pool_stats.record_reused(src, dst)
            return acquired, True
        fresh = socket.create_connection(("127.0.0.1", self.port_of(dst)), timeout=self._timeout)
        self.pool_stats.record_created(src, dst)
        return fresh, False

    def _release(self, src: str, dst: str, sock: socket.socket) -> None:
        """Return a connection to the pool (or close it if the pool is full,
        the network is closed, the destination has detached, or the socket
        points at a stale incarnation of the destination).

        The port comparison closes a leak window where ``_drop_pooled``
        races an in-flight ``_exchange``: the exchange's socket is checked
        out when the drop runs, and without the check it would be pooled
        on release even though it targets a listener that no longer exists
        (or a previous incarnation of a re-attached site).
        """
        try:
            peer_port = sock.getpeername()[1]
        except OSError:
            peer_port = None
        with self._pool_lock:
            if (
                not self._closed
                and peer_port is not None
                and self._ports.get(dst) == peer_port
            ):
                bucket = self._pool.setdefault((src, dst), [])
                if len(bucket) < POOL_SIZE_PER_PAIR:
                    bucket.append(sock)
                    return
        _close_quietly(sock)

    def _drop_pooled(self, site_id: str) -> None:
        """Close every pooled connection from or to ``site_id``."""
        with self._pool_lock:
            doomed: list[socket.socket] = []
            for (src, dst) in list(self._pool):
                if src == site_id or dst == site_id:
                    doomed.extend(self._pool.pop((src, dst)))
        for sock in doomed:
            _close_quietly(sock)

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def call(self, src: str, dst: str, payload: bytes, *, timeout: float | None = None) -> bytes:
        self._check_open()
        self._check_route(src, dst)
        request = Message(kind=MessageKind.REQUEST, src=src, dst=dst, payload=payload)
        self._transit(request)  # accounting only; the wire provides real delay
        response = self._exchange(src, dst, request, timeout=timeout)
        self._check_route(dst, src)
        self._transit(request.response(response.payload))
        if response.kind is MessageKind.ERROR:
            raise TransportError(
                f"remote handler at {dst!r} failed: {response.payload.decode('utf-8', 'replace')}"
            )
        return response.payload

    def _exchange(
        self, src: str, dst: str, request: Message, *, timeout: float | None
    ) -> Message:
        """Send one request over a pooled connection and read its response.

        A failure on a *reused* connection retries once on a fresh one:
        the pooled socket may have gone stale while idle (peer restarted,
        connection reset) without the health check noticing in time.
        """
        for attempt in (0, 1):
            try:
                sock, reused = self._acquire(src, dst)
            except (OSError, ConnectionError) as exc:
                raise TransportError(f"tcp call {src!r}->{dst!r} failed: {exc}") from exc
            # Tag the enclosing rmi.invoke span (if any) with connection
            # attribution: a fresh connect on the fault path shows up as
            # tcp_reused=False right where the latency went.
            annotate(tcp_reused=reused, tcp_attempts=attempt + 1)
            try:
                if timeout is not None:
                    sock.settimeout(timeout)
                _send_frame(sock, request)
                response = _recv_frame(sock)
            except (OSError, ConnectionError) as exc:
                _close_quietly(sock)
                if reused and attempt == 0:
                    continue
                raise TransportError(f"tcp call {src!r}->{dst!r} failed: {exc}") from exc
            if timeout is not None:
                sock.settimeout(self._timeout)
            self._release(src, dst, sock)
            return response
        raise TransportError(f"tcp call {src!r}->{dst!r} failed")  # pragma: no cover

    def cast(self, src: str, dst: str, payload: bytes) -> None:
        self._check_open()
        self._check_route(src, dst)
        message = Message(kind=MessageKind.CAST, src=src, dst=dst, payload=payload)
        self._transit(message)
        for attempt in (0, 1):
            try:
                sock, reused = self._acquire(src, dst)
            except (OSError, ConnectionError) as exc:
                raise TransportError(f"tcp cast {src!r}->{dst!r} failed: {exc}") from exc
            annotate(tcp_reused=reused, tcp_attempts=attempt + 1)
            try:
                _send_frame(sock, message)
            except (OSError, ConnectionError) as exc:
                _close_quietly(sock)
                if reused and attempt == 0:
                    continue
                raise TransportError(f"tcp cast {src!r}->{dst!r} failed: {exc}") from exc
            self._release(src, dst, sock)
            return

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def _accept_loop(self, site_id: str, server: socket.socket) -> None:
        while True:
            try:
                conn, _addr = server.accept()
            except OSError:
                return  # server socket closed
            with self._conns_lock:
                self._server_conns.setdefault(site_id, set()).add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(site_id, conn),
                name=f"tcp-conn-{site_id}",
                daemon=True,
            ).start()

    def _serve_connection(self, site_id: str, conn: socket.socket) -> None:
        """Serve frames on one persistent connection until the peer closes."""
        try:
            with conn:
                self._serve_frames(site_id, conn)
        finally:
            with self._conns_lock:
                bucket = self._server_conns.get(site_id)
                if bucket is not None:
                    bucket.discard(conn)

    def _serve_frames(self, site_id: str, conn: socket.socket) -> None:
        while True:
            try:
                message = _recv_frame(conn)
            except (OSError, ConnectionError):
                return
            handler = self._handlers.get(site_id)
            if handler is None:
                return
            if message.kind is MessageKind.CAST:
                try:
                    handler(message)
                except Exception:  # noqa: BLE001 - one-way, nothing to report to
                    pass
                continue
            try:
                result = handler(message)
                if result is None:
                    reply = message.error(b"handler returned no response")
                else:
                    reply = message.response(result)
            except Exception as exc:  # noqa: BLE001 - reported to the caller
                reply = message.error(repr(exc).encode("utf-8"))
            try:
                _send_frame(conn, reply)
            except (OSError, ConnectionError):
                return


def _idle_socket_alive(sock: socket.socket) -> bool:
    """Health-check a pooled connection.

    An idle pooled socket should have nothing to read; readability means
    the peer closed it (EOF) or reset it while it sat in the pool.
    """
    try:
        readable, _writable, _errored = select.select([sock], [], [], 0)
    except (OSError, ValueError):
        return False
    return not readable


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
