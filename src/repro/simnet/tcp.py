"""Localhost TCP transport.

The closest analogue of the paper's RMI-over-Ethernet deployment: frames
really cross the operating system's socket layer.  Each attached site
binds a listening socket on ``127.0.0.1``; calls open a connection per
request (simple and robust; connection pooling is an optimisation the
middleware above never observes).

The in-process :class:`~repro.simnet.network.Network` object doubles as
the port directory, which keeps the transport self-contained for tests
and examples.  Connectivity (disconnections, partitions) is still
enforced — a "disconnected" mobile site refuses traffic even though the
socket would physically work.
"""

from __future__ import annotations

import socket
import struct
import threading

from repro.simnet.message import Message, MessageKind
from repro.simnet.network import Network
from repro.util.errors import TransportError

_HEADER = struct.Struct("!B I")  # kind, payload length
_KIND_CODES = {
    MessageKind.REQUEST: 1,
    MessageKind.RESPONSE: 2,
    MessageKind.CAST: 3,
    MessageKind.ERROR: 4,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


def _send_frame(sock: socket.socket, message: Message) -> None:
    rid = message.request_id.encode("utf-8")
    src = message.src.encode("utf-8")
    dst = message.dst.encode("utf-8")
    header = _HEADER.pack(_KIND_CODES[message.kind], len(message.payload))
    meta = struct.pack("!HHH", len(rid), len(src), len(dst))
    sock.sendall(header + meta + rid + src + dst + message.payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Message:
    kind_code, payload_len = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    rid_len, src_len, dst_len = struct.unpack("!HHH", _recv_exact(sock, 6))
    rid = _recv_exact(sock, rid_len).decode("utf-8")
    src = _recv_exact(sock, src_len).decode("utf-8")
    dst = _recv_exact(sock, dst_len).decode("utf-8")
    payload = _recv_exact(sock, payload_len) if payload_len else b""
    return Message(
        kind=_CODE_KINDS[kind_code], src=src, dst=dst, payload=payload, request_id=rid
    )


class TcpNetwork(Network):
    """Length-prefixed frames over localhost TCP."""

    def __init__(self, *args: object, timeout: float = 30.0, **kwargs: object):
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._timeout = timeout
        self._ports: dict[str, int] = {}
        self._servers: dict[str, socket.socket] = {}
        self._accept_threads: dict[str, threading.Thread] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _on_attach(self, site_id: str) -> None:
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(16)
        self._servers[site_id] = server
        self._ports[site_id] = server.getsockname()[1]
        thread = threading.Thread(
            target=self._accept_loop, args=(site_id, server), name=f"tcp-{site_id}", daemon=True
        )
        self._accept_threads[site_id] = thread
        thread.start()

    def _on_detach(self, site_id: str) -> None:
        server = self._servers.pop(site_id, None)
        if server is not None:
            try:
                server.close()
            except OSError:
                pass
        self._ports.pop(site_id, None)
        self._accept_threads.pop(site_id, None)

    def close(self) -> None:
        super().close()
        for site_id in list(self._servers):
            self._on_detach(site_id)

    def port_of(self, site_id: str) -> int:
        """The TCP port a site listens on (useful for diagnostics)."""
        try:
            return self._ports[site_id]
        except KeyError:
            raise TransportError(f"no site {site_id!r} attached to this network") from None

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def call(self, src: str, dst: str, payload: bytes, *, timeout: float | None = None) -> bytes:
        self._check_open()
        self._check_route(src, dst)
        request = Message(kind=MessageKind.REQUEST, src=src, dst=dst, payload=payload)
        self._transit(request)  # accounting only; the wire provides real delay
        try:
            with socket.create_connection(
                ("127.0.0.1", self.port_of(dst)),
                timeout=timeout if timeout is not None else self._timeout,
            ) as sock:
                _send_frame(sock, request)
                response = _recv_frame(sock)
        except (OSError, ConnectionError) as exc:
            raise TransportError(f"tcp call {src!r}->{dst!r} failed: {exc}") from exc
        self._check_route(dst, src)
        self._transit(request.response(response.payload))
        if response.kind is MessageKind.ERROR:
            raise TransportError(
                f"remote handler at {dst!r} failed: {response.payload.decode('utf-8', 'replace')}"
            )
        return response.payload

    def cast(self, src: str, dst: str, payload: bytes) -> None:
        self._check_open()
        self._check_route(src, dst)
        message = Message(kind=MessageKind.CAST, src=src, dst=dst, payload=payload)
        self._transit(message)
        try:
            with socket.create_connection(
                ("127.0.0.1", self.port_of(dst)), timeout=self._timeout
            ) as sock:
                _send_frame(sock, message)
        except (OSError, ConnectionError) as exc:
            raise TransportError(f"tcp cast {src!r}->{dst!r} failed: {exc}") from exc

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def _accept_loop(self, site_id: str, server: socket.socket) -> None:
        while True:
            try:
                conn, _addr = server.accept()
            except OSError:
                return  # server socket closed
            threading.Thread(
                target=self._serve_connection,
                args=(site_id, conn),
                name=f"tcp-conn-{site_id}",
                daemon=True,
            ).start()

    def _serve_connection(self, site_id: str, conn: socket.socket) -> None:
        with conn:
            try:
                message = _recv_frame(conn)
            except (OSError, ConnectionError):
                return
            handler = self._handlers.get(site_id)
            if handler is None:
                return
            if message.kind is MessageKind.CAST:
                try:
                    handler(message)
                except Exception:  # noqa: BLE001 - one-way, nothing to report to
                    pass
                return
            try:
                result = handler(message)
                if result is None:
                    reply = message.error(b"handler returned no response")
                else:
                    reply = message.response(result)
            except Exception as exc:  # noqa: BLE001 - reported to the caller
                reply = message.error(repr(exc).encode("utf-8"))
            try:
                _send_frame(conn, reply)
            except (OSError, ConnectionError):
                pass
