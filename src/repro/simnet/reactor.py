"""obireactor: single-event-loop TCP transport with frame pipelining.

``TcpNetwork`` burns one thread per server connection and allows one
in-flight frame per socket — fine for a handful of sites, fatal for the
ROADMAP's "one provider, tens of thousands of mobile consumers" target.
:class:`ReactorNetwork` replaces that with the classic reactor shape:

* **one event loop per process** owns every socket — listeners, inbound
  server connections and outbound pipelined channels — through a
  ``selectors`` poll loop plus a socketpair waker for cross-thread
  commands.  The loop never blocks on anything but the selector;
* **frame dispatch runs on a grow-on-demand worker pool**, never on the
  loop thread: handlers make nested RMI calls back through the network,
  which would deadlock a loop that dispatched inline;
* **frame pipelining**: many requests in flight per connection,
  correlated by the request id every frame already carries, under new
  frame kinds (``PREQUEST``/``PRESPONSE``/``PERROR``) that exist only in
  this module — the legacy one-frame-per-exchange wire format is
  untouched;
* **a sync facade**: :meth:`ReactorNetwork.call` is still blocking, so
  every existing call site works unchanged; :meth:`ReactorNetwork.submit`
  exposes the per-request :class:`~repro.simnet.network.PendingReply`
  future underneath for callers that want true fan-out.

Negotiation
-----------

Pipelined kinds are negotiated per peer through
:class:`repro.core.negotiation.PeerCapabilities`, like delta sync and
obicodec — but the probe cannot be failure-shaped: an unknown frame kind
does not make an old peer answer with a classifiable error, it kills the
peer's serving thread.  So the probe travels *in band*: the first
exchange to a peer is a fully legacy ``REQUEST`` whose request id is
prefixed with a reversible marker (``pf?``).  An upgraded server
rewrites the prefix to ``pf!`` in the response id; a legacy server
echoes the id untouched (responses always preserve the request id).  No
marker echo → the peer is cached as unsupported and keeps getting the
pooled blocking path forever after.  An un-upgraded peer therefore
**never sees a correlation-ID frame** — the only novel bytes it can ever
receive are three characters inside an opaque request id it already
round-trips verbatim.

Flow control
------------

Each connection carries a write-queue high-water mark.  The loop never
blocks on it — writers do: a submit against a channel whose outbound
buffer is above the mark parks the *calling* thread on the channel's
condition until the loop drains the socket.  A per-request timeout or
cancellation poisons only its own correlation id (the entry is removed
from the pending map; a straggling response is dropped on the floor);
a connection failure fails every request pending on that connection.

Loop-callback discipline is machine-checked: everything the selector
invokes directly is decorated with :func:`loop_callback`, and obilint
rule OBI401 flags blocking socket operations, ``time.sleep`` and lock
acquisition inside those bodies.  Locked bookkeeping shared with caller
threads lives in small undecorated helpers that hold their lock for a
bounded handful of operations.
"""

from __future__ import annotations

import collections
import errno
import os
import queue
import selectors
import socket
import struct
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.negotiation import PIPELINED_FRAMES, PeerCapabilities
from repro.obs.context import annotate
from repro.simnet.message import Message, MessageKind
from repro.simnet.network import PendingReply
from repro.simnet.tcp import _HEADER, _KIND_CODES, TcpNetwork, _close_quietly
from repro.util.errors import TransportError

#: Pipelined frame kinds.  These codes exist ONLY in this module: the
#: legacy tcp codec (kinds 1–4) must never learn them, and they are only
#: ever emitted to peers that acknowledged the pipelining probe.
_PREQUEST = 5
_PRESPONSE = 6
_PERROR = 7

_REQUEST = _KIND_CODES[MessageKind.REQUEST]
_RESPONSE = _KIND_CODES[MessageKind.RESPONSE]
_CAST = _KIND_CODES[MessageKind.CAST]
_ERROR = _KIND_CODES[MessageKind.ERROR]

#: In-band negotiation markers (see module docstring).  Request ids are
#: ``req:N`` (see :mod:`repro.util.ids`), so the prefixes cannot collide
#: with a real id.
_PROBE_ASK = "pf?"
_PROBE_ACK = "pf!"

_META = struct.Struct("!HHH")
_RECV_CHUNK = 1 << 16

#: Default per-connection outbound high-water mark (bytes).
WRITE_HIGH_WATER = 1 << 20


def loop_callback(fn: Callable) -> Callable:
    """Mark a function as invoked directly by the reactor loop.

    The marker is what obilint rule OBI401 keys on: a decorated body must
    not sleep, perform blocking socket operations, or acquire locks —
    anything that parks the loop parks every connection in the process.
    """
    fn.__loop_callback__ = True
    return fn


def _pack_frame(kind_code: int, rid: str, src: str, dst: str, payload: bytes) -> bytes:
    rid_b = rid.encode("utf-8")
    src_b = src.encode("utf-8")
    dst_b = dst.encode("utf-8")
    return b"".join(
        (
            _HEADER.pack(kind_code, len(payload)),
            _META.pack(len(rid_b), len(src_b), len(dst_b)),
            rid_b,
            src_b,
            dst_b,
            payload,
        )
    )


class _FrameParser:
    """Incremental frame reassembly over a nonblocking byte stream."""

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, str, str, str, bytes]]:
        """Absorb ``data``; return every frame completed by it."""
        self._buf += data
        frames = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> tuple[int, str, str, str, bytes] | None:
        buf = self._buf
        fixed = _HEADER.size + _META.size
        if len(buf) < fixed:
            return None
        kind_code, payload_len = _HEADER.unpack_from(buf, 0)
        rid_len, src_len, dst_len = _META.unpack_from(buf, _HEADER.size)
        total = fixed + rid_len + src_len + dst_len + payload_len
        if len(buf) < total:
            return None
        offset = fixed
        rid = bytes(buf[offset : offset + rid_len]).decode("utf-8")
        offset += rid_len
        src = bytes(buf[offset : offset + src_len]).decode("utf-8")
        offset += src_len
        dst = bytes(buf[offset : offset + dst_len]).decode("utf-8")
        offset += dst_len
        payload = bytes(buf[offset : offset + payload_len])
        del buf[:total]
        return kind_code, rid, src, dst, payload


@dataclass
class ReactorStats:
    """Counters for the reactor loop, locked like ``SerialPathStats``:
    the loop thread, worker threads and caller threads all report here."""

    #: Inbound connections the loop has accepted over its lifetime.
    connections_accepted: int = 0
    #: Sockets the loop currently holds (server conns + client channels).
    connections_open: int = 0
    connections_high_water: int = 0
    #: PREQUEST frames submitted on pipelined channels.
    frames_pipelined: int = 0
    #: Deepest per-channel in-flight request count seen.
    in_flight_high_water: int = 0
    #: Submits that had to park on a channel's write high-water mark.
    backpressure_waits: int = 0
    #: Cross-thread commands the loop has processed.
    loop_wakeups: int = 0
    #: Worst observed command latency: enqueue → loop pickup, seconds.
    loop_lag_max_s: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_open(self, delta: int, *, accepted: bool = False) -> None:
        with self._lock:
            if accepted:
                self.connections_accepted += 1
            self.connections_open += delta
            if self.connections_open > self.connections_high_water:
                self.connections_high_water = self.connections_open

    def record_submit(self, in_flight: int) -> None:
        with self._lock:
            self.frames_pipelined += 1
            if in_flight > self.in_flight_high_water:
                self.in_flight_high_water = in_flight

    def record_backpressure_wait(self) -> None:
        with self._lock:
            self.backpressure_waits += 1

    def record_wakeup(self, lag_s: float) -> None:
        with self._lock:
            self.loop_wakeups += 1
            if lag_s > self.loop_lag_max_s:
                self.loop_lag_max_s = lag_s

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "connections_accepted": self.connections_accepted,
                "connections_open": self.connections_open,
                "connections_high_water": self.connections_high_water,
                "frames_pipelined": self.frames_pipelined,
                "in_flight_high_water": self.in_flight_high_water,
                "backpressure_waits": self.backpressure_waits,
                "loop_wakeups": self.loop_wakeups,
                "loop_lag_max_s": self.loop_lag_max_s,
            }


class _DispatchPool:
    """Grow-on-demand worker pool for inbound frame dispatch.

    Handlers issue nested RMI calls back out through the network, so
    dispatch must never run on the loop thread — a handler waiting for a
    response the loop would have delivered is a deadlock.  Workers spawn
    when a job arrives and nobody is idle (up to ``max_threads``), and
    retire after ten idle seconds.
    """

    def __init__(self, max_threads: int = 32):
        self._jobs: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._max = max_threads
        self._threads = 0
        #: Jobs submitted but not yet finished (queued + running).  The
        #: spawn rule ``threads < outstanding`` is judged entirely under
        #: the lock, so a submit can never observe a stale idle count and
        #: leave a job starving behind a blocked worker.
        self._outstanding = 0
        self._closed = False

    def submit(self, job: Callable[[], None]) -> None:
        with self._lock:
            if self._closed:
                return
            self._outstanding += 1
            spawn = self._threads < self._max and self._threads < self._outstanding
            if spawn:
                self._threads += 1
        self._jobs.put(job)
        if spawn:
            threading.Thread(
                target=self._worker, name="obireactor-dispatch", daemon=True
            ).start()

    def _worker(self) -> None:
        while True:
            try:
                job = self._jobs.get(timeout=10.0)
            except queue.Empty:
                with self._lock:
                    if self._outstanding >= self._threads:
                        continue  # work arrived as the timeout fired
                    self._threads -= 1
                    return
            if job is None:  # close() sentinel
                with self._lock:
                    self._threads -= 1
                return
            try:
                job()
            except Exception:  # noqa: BLE001 - a handler bug must not kill a worker
                pass
            finally:
                with self._lock:
                    self._outstanding -= 1

    def close(self) -> None:
        with self._lock:
            self._closed = True
            live = self._threads
        for _ in range(live):
            self._jobs.put(None)  # type: ignore[arg-type]


class _Conn:
    """Bookkeeping shared by server connections and client channels.

    The loop thread owns the socket and the selector registration; caller
    and worker threads only touch the outbound queue, under ``_cond``.
    The helpers that take the lock are deliberately *not* loop callbacks:
    they hold it for a bounded handful of list operations, which is the
    discipline OBI401 enforces on the decorated entry points.
    """

    def __init__(self, loop: "_ReactorLoop", sock: socket.socket):
        self._loop = loop
        self._sock = sock
        self._parser = _FrameParser()
        self._cond = threading.Condition()
        self._out: collections.deque[bytes] = collections.deque()
        self._buffered = 0
        self._interest = selectors.EVENT_READ
        self._flush_scheduled = False
        #: True while a non-blocking connect is in flight.  Writers may
        #: enqueue freely; the loop finishes the handshake on the first
        #: EVENT_WRITE and flushes whatever accumulated.
        self.connecting = False
        self.closed = False

    # -- writer side (any thread) ---------------------------------------
    def enqueue(self, data: bytes, *, wait: bool = True) -> None:
        """Queue outbound bytes; parks the caller above the high-water
        mark until the loop drains the socket (never the loop itself)."""
        stats = self._loop.net.reactor_stats
        high_water = self._loop.net.write_high_water
        with self._cond:
            if self.closed:
                raise TransportError("connection is closed")
            while wait and self._buffered >= high_water and not self.closed:
                stats.record_backpressure_wait()
                self._cond.wait(1.0)
            if self.closed:
                raise TransportError("connection is closed")
            self._out.append(data)
            self._buffered += len(data)
        self._loop.request_flush(self)

    # -- loop side ------------------------------------------------------
    @loop_callback
    def on_events(self, mask: int) -> None:
        if self.connecting:
            if mask & selectors.EVENT_WRITE:
                self._finish_connect()
            return
        if mask & selectors.EVENT_WRITE:
            self._write_ready()
        if mask & selectors.EVENT_READ:
            self._read_ready()

    @loop_callback
    def on_flush_command(self) -> None:
        self._flush_scheduled = False
        if not self.closed and not self.connecting:
            self._write_ready()

    def _finish_connect(self) -> None:
        err = self._sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
        if err:
            self.teardown(
                TransportError(f"connect failed: {os.strerror(err)}")
            )
            return
        self.connecting = False
        self._write_ready()  # flush frames queued during the handshake

    def _write_ready(self) -> None:
        while True:
            chunk = self._peek_chunk()
            if chunk is None:
                break
            try:
                sent = self._sock.send(chunk)
            except BlockingIOError:
                break
            except OSError:
                self.teardown(TransportError("connection reset while writing"))
                return
            self._consume(sent, len(chunk))
            if sent < len(chunk):
                break
        self._update_interest()

    def _read_ready(self) -> None:
        while True:
            try:
                data = self._sock.recv(_RECV_CHUNK)
            except BlockingIOError:
                break
            except OSError:
                self.teardown(TransportError("connection reset while reading"))
                return
            if not data:
                self.teardown(TransportError("peer closed the connection"))
                return
            for frame in self._parser.feed(data):
                self._on_frame(frame)
        self._update_interest()

    def _peek_chunk(self) -> bytes | None:
        """Head of the write queue, coalescing small frames into one
        ``send`` so a burst of pipelined requests costs one syscall."""
        with self._cond:
            if not self._out:
                return None
            if len(self._out) == 1 or len(self._out[0]) >= _RECV_CHUNK:
                return self._out[0]
            batch = []
            size = 0
            while self._out and size < _RECV_CHUNK:
                chunk = self._out.popleft()
                batch.append(chunk)
                size += len(chunk)
            joined = b"".join(batch)
            self._out.appendleft(joined)
            return joined

    def _consume(self, sent: int, size: int) -> None:
        if sent == 0:
            return
        with self._cond:
            if sent == size:
                if self._out:
                    self._out.popleft()
            elif self._out:
                self._out[0] = self._out[0][sent:]
            self._buffered -= sent
            self._cond.notify_all()

    def _update_interest(self) -> None:
        if self.closed or self.connecting:
            return
        with self._cond:
            pending = bool(self._out)
        interest = selectors.EVENT_READ | (selectors.EVENT_WRITE if pending else 0)
        if interest != self._interest:
            self._interest = interest
            self._loop.modify(self._sock, interest, self.on_events)

    def teardown(self, error: TransportError) -> None:
        """Loop-thread-only: unregister, close, release parked writers."""
        if self.closed:
            return
        self.closed = True
        self._loop.unregister(self._sock)
        _close_quietly(self._sock)
        with self._cond:
            self._out.clear()
            self._buffered = 0
            self._cond.notify_all()
        self._loop.net.reactor_stats.record_open(-1)
        self._on_teardown(error)

    # Subclass hooks ----------------------------------------------------
    def _on_frame(self, frame: tuple[int, str, str, str, bytes]) -> None:
        raise NotImplementedError

    def _on_teardown(self, error: TransportError) -> None:
        pass


class _ServerConn(_Conn):
    """One inbound connection.  Speaks both dialects: legacy kinds from
    pooled blocking clients (including the negotiation probe) and
    pipelined kinds from confirmed channels."""

    def __init__(self, loop: "_ReactorLoop", site_id: str, sock: socket.socket):
        super().__init__(loop, sock)
        self.site_id = site_id

    def _on_frame(self, frame: tuple[int, str, str, str, bytes]) -> None:
        kind_code, rid, src, dst, payload = frame
        net = self._loop.net
        handler = net._handlers.get(dst)
        if kind_code == _CAST:
            if handler is not None:
                net.dispatch_pool.submit(
                    lambda: _run_cast(handler, rid, src, dst, payload)
                )
            return
        if kind_code not in (_REQUEST, _PREQUEST):
            # A frame kind this server does not speak: drop the
            # connection rather than guess at its semantics.
            self.teardown(TransportError(f"unknown frame kind {kind_code}"))
            return
        pipelined = kind_code == _PREQUEST
        if handler is None:
            self.enqueue(
                _pack_frame(
                    _PERROR if pipelined else _ERROR,
                    _ack_rid(rid),
                    dst,
                    src,
                    f"no site {dst!r} attached to this network".encode("utf-8"),
                ),
                wait=False,
            )
            return
        net.dispatch_pool.submit(
            lambda: self._run_request(handler, rid, src, dst, payload, pipelined)
        )

    def _run_request(
        self,
        handler: Callable[[Message], bytes | None],
        rid: str,
        src: str,
        dst: str,
        payload: bytes,
        pipelined: bool,
    ) -> None:
        """Worker-thread dispatch of one request frame."""
        message = Message(
            kind=MessageKind.REQUEST, src=src, dst=dst, payload=payload, request_id=rid
        )
        try:
            result = handler(message)
            ok = result is not None
            body = result if result is not None else b"handler returned no response"
        except Exception as exc:  # noqa: BLE001 - reported to the caller
            ok = False
            body = repr(exc).encode("utf-8")
        if pipelined:
            code = _PRESPONSE if ok else _PERROR
        else:
            code = _RESPONSE if ok else _ERROR
        try:
            self.enqueue(_pack_frame(code, _ack_rid(rid), dst, src, body))
        except TransportError:  # obilint: disable=OBI107 -- the consumer's own pending-reply bookkeeping reports the dead connection; the server has nobody left to tell
            pass


def _run_cast(
    handler: Callable[[Message], bytes | None],
    rid: str,
    src: str,
    dst: str,
    payload: bytes,
) -> None:
    message = Message(
        kind=MessageKind.CAST, src=src, dst=dst, payload=payload, request_id=rid
    )
    try:
        handler(message)
    except Exception:  # noqa: BLE001 - one-way, nothing to report to
        pass


def _ack_rid(rid: str) -> str:
    """Answer the in-band pipelining probe: rewrite ``pf?`` to ``pf!``.

    Only an upgraded server runs this, which is the entire negotiation —
    a legacy server echoes the marked id untouched and the client caches
    the peer as unsupported.
    """
    if rid.startswith(_PROBE_ASK):
        return _PROBE_ACK + rid[len(_PROBE_ASK) :]
    return rid


class _PeerChannel(_Conn):
    """One outbound multiplexed connection ``src -> dst``.

    Caller threads register a :class:`PendingReply` per request and
    append the frame to the write queue; the loop completes replies as
    correlated responses arrive, in whatever order the peer finishes.
    """

    def __init__(
        self, loop: "_ReactorLoop", src: str, dst: str, sock: socket.socket
    ):
        super().__init__(loop, sock)
        self.src = src
        self.dst = dst
        self.failed: TransportError | None = None
        self._pending: dict[str, PendingReply] = {}

    # -- caller side ----------------------------------------------------
    def send_request(self, request: Message, reply: PendingReply) -> int:
        """Queue one pipelined request; returns the in-flight depth."""
        data = _pack_frame(
            _PREQUEST, request.request_id, request.src, request.dst, request.payload
        )
        with self._cond:
            if self.closed:
                raise self.failed or TransportError("channel is closed")
            self._pending[request.request_id] = reply
            in_flight = len(self._pending)
        try:
            self.enqueue(data)
        except TransportError:
            self.forget(reply)
            raise
        return in_flight

    def send_cast(self, message: Message) -> None:
        self.enqueue(
            _pack_frame(
                _CAST, message.request_id, message.src, message.dst, message.payload
            )
        )

    def forget(self, reply: PendingReply) -> None:
        """Poison one correlation id (timeout/cancel): its straggling
        response, if any, is dropped; siblings are untouched."""
        with self._cond:
            self._pending.pop(reply.request_id, None)

    # -- loop side ------------------------------------------------------
    def _on_frame(self, frame: tuple[int, str, str, str, bytes]) -> None:
        kind_code, rid, _src, _dst, payload = frame
        with self._cond:
            reply = self._pending.pop(rid, None)
        if reply is None:
            return  # cancelled or timed out; drop the straggler
        if kind_code == _PRESPONSE:
            reply.complete(payload)
        elif kind_code == _PERROR:
            reply.fail(
                TransportError(
                    f"remote handler at {self.dst!r} failed: "
                    f"{payload.decode('utf-8', 'replace')}"
                )
            )
        else:
            reply.fail(
                TransportError(
                    f"unexpected frame kind {kind_code} on pipelined channel"
                )
            )

    def _on_teardown(self, error: TransportError) -> None:
        failure = TransportError(
            f"pipelined channel {self.src!r}->{self.dst!r} failed: {error}"
        )
        with self._cond:
            self.failed = failure
            pending = list(self._pending.values())
            self._pending.clear()
        for reply in pending:
            reply.fail(failure)
        self._loop.net._discard_channel(self)


class _ReactorLoop(threading.Thread):
    """The event loop: one selector, one waker, every socket."""

    def __init__(self, net: "ReactorNetwork"):
        super().__init__(name="obireactor-loop", daemon=True)
        self.net = net
        self._selector = selectors.DefaultSelector()
        self._commands: collections.deque = collections.deque()
        self._cmd_lock = threading.Lock()
        wake_r, wake_w = socket.socketpair()
        wake_r.setblocking(False)
        wake_w.setblocking(False)
        self._wake_r = wake_r
        self._wake_w = wake_w
        self._selector.register(wake_r, selectors.EVENT_READ, self._on_wake)
        #: Wake coalescing: once armed, further posts skip the socketpair
        #: write.  Arming (in ``post``) and disarming (in
        #: ``_take_commands``) both happen under ``_cmd_lock``, so a post
        #: that lands mid-drain either makes this round or re-arms with a
        #: fresh byte for the next.  Disarming outside the lock loses
        #: wakeups: a post between the disarm and the drain gets its byte
        #: eaten and its arm flag left set, and every later post then
        #: skips the wake it actually needs.
        self._wake_armed = False
        self._running = True

    # -- cross-thread interface -----------------------------------------
    def post(self, command: Callable[[], None]) -> None:
        """Enqueue a command for the loop thread and wake it."""
        with self._cmd_lock:
            self._commands.append((self.net.clock.now(), command))
            need_wake = not self._wake_armed
            self._wake_armed = True
        if need_wake:
            self.wake()

    def post_and_wait(self, command: Callable[[], None], timeout: float = 5.0) -> None:
        """Run ``command`` on the loop thread and wait for it.

        Falls back to running inline when called *from* the loop thread
        (no deadlock) or after the loop has exited (shutdown stragglers).
        """
        if threading.current_thread() is self or not self.is_alive():
            command()
            return
        done = threading.Event()

        def run() -> None:
            try:
                command()
            finally:
                done.set()

        self.post(run)
        done.wait(timeout)

    def request_flush(self, conn: _Conn) -> None:
        """Ask the loop to drain ``conn``'s write queue.  The scheduled
        flag is a benign race: a stale read costs one redundant command,
        never a lost flush (the post below always follows the append)."""
        if conn._flush_scheduled:
            return
        conn._flush_scheduled = True
        self.post(conn.on_flush_command)

    def wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # waker full or closed: the loop is waking up anyway

    def stop(self) -> None:
        self._running = False
        self.wake()
        if self.is_alive():
            self.join(timeout=5.0)

    # -- loop-thread-only selector access -------------------------------
    def register(self, sock: socket.socket, events: int, callback: Callable) -> None:
        try:
            self._selector.register(sock, events, callback)
        except (KeyError, ValueError, OSError):
            pass

    def modify(self, sock: socket.socket, events: int, callback: Callable) -> None:
        try:
            self._selector.modify(sock, events, callback)
        except (KeyError, ValueError, OSError):
            pass

    def unregister(self, sock: socket.socket) -> None:
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError, OSError):
            pass

    # -- the loop -------------------------------------------------------
    def run(self) -> None:
        while self._running:
            events = self._selector.select(timeout=0.2)
            for key, mask in events:
                key.data(mask)
            if self._commands:  # obilint: disable=OBI203 -- deliberately unlocked peek: a stale read only delays the drain one 200ms tick; this is the backstop that makes a lost wakeup cost latency instead of a deadlock
                self._run_commands()
        for key in list(self._selector.get_map().values()):
            self.unregister(key.fileobj)  # type: ignore[arg-type]
            _close_quietly(key.fileobj)  # type: ignore[arg-type]
        _close_quietly(self._wake_w)
        self._selector.close()

    @loop_callback
    def _on_wake(self, mask: int) -> None:
        self._drain_waker()
        self._run_commands()

    def _run_commands(self) -> None:
        while True:
            commands = self._take_commands()
            if not commands:
                return
            for enqueued_at, command in commands:
                self.net.reactor_stats.record_wakeup(
                    max(0.0, self.net.clock.now() - enqueued_at)
                )
                try:
                    command()
                except Exception:  # noqa: BLE001 - a bad command must not kill the loop
                    pass

    def _drain_waker(self) -> None:
        while True:
            try:
                if not self._wake_r.recv(4096):
                    return
            except (BlockingIOError, OSError):
                return

    def _take_commands(self) -> list[tuple[float, Callable[[], None]]]:
        """Take the queued commands; disarm only on an empty take.

        Leaving the armed flag up across a non-empty take lets every post
        that lands while the loop is busy running commands skip the waker
        syscall entirely — ``_run_commands`` keeps re-taking until it sees
        the empty (and therefore disarming) take, so nothing is stranded.
        """
        with self._cmd_lock:
            commands = list(self._commands)
            self._commands.clear()
            if not commands:
                self._wake_armed = False
        return commands


class ReactorNetwork(TcpNetwork):
    """Single-event-loop TCP transport with negotiated frame pipelining.

    Subclasses :class:`TcpNetwork` for the client side it keeps: the
    pooled blocking exchange is both the negotiation probe carrier and
    the permanent fallback for peers that never acknowledge pipelining.
    Sites listed in ``legacy_server_sites`` are served by the inherited
    thread-per-connection server instead of the loop — they behave
    exactly like un-upgraded peers, which is what the interop tests and
    the threaded-vs-reactor benchmark sweep.
    """

    def __init__(
        self,
        *args: object,
        timeout: float = 30.0,
        legacy_server_sites: tuple[str, ...] = (),
        max_dispatch_threads: int = 32,
        write_high_water: int = WRITE_HIGH_WATER,
        **kwargs: object,
    ):
        super().__init__(*args, timeout=timeout, **kwargs)
        self.peer_caps = PeerCapabilities()
        self.reactor_stats = ReactorStats()
        self.write_high_water = write_high_water
        self.dispatch_pool = _DispatchPool(max_dispatch_threads)
        self._legacy_server_sites = set(legacy_server_sites)
        self._channels: dict[tuple[str, str], _PeerChannel] = {}
        self._pipelined_peers: set[str] = set()
        self._channels_lock = threading.Lock()
        self._loop = _ReactorLoop(self)
        self._loop.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _on_attach(self, site_id: str) -> None:
        if site_id in self._legacy_server_sites:
            super()._on_attach(site_id)
            return
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(1024)
        server.setblocking(False)
        self._servers[site_id] = server
        self._ports[site_id] = server.getsockname()[1]
        self._loop.post(lambda: self._register_listener(site_id, server))

    def _register_listener(self, site_id: str, server: socket.socket) -> None:
        @loop_callback
        def on_accept(mask: int) -> None:
            self._accept_ready(site_id, server)

        self._loop.register(server, selectors.EVENT_READ, on_accept)

    def _accept_ready(self, site_id: str, server: socket.socket) -> None:
        while True:
            try:
                sock, _addr = server.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _ServerConn(self._loop, site_id, sock)
            self._loop.register(sock, selectors.EVENT_READ, conn.on_events)
            self.reactor_stats.record_open(+1, accepted=True)

    def _on_detach(self, site_id: str) -> None:
        if site_id in self._legacy_server_sites:
            super()._on_detach(site_id)
            return
        server = self._servers.pop(site_id, None)
        self._ports.pop(site_id, None)
        if server is not None:
            self._loop.post_and_wait(lambda: self._close_site(site_id, server))
        with self._channels_lock:
            self._pipelined_peers.discard(site_id)
            doomed = [
                channel
                for (src, dst), channel in self._channels.items()
                if src == site_id or dst == site_id
            ]
        for channel in doomed:
            failure = TransportError(f"site {site_id!r} detached")
            self._loop.post_and_wait(lambda ch=channel: ch.teardown(failure))
        self.peer_caps.forget(site_id)
        self._drop_pooled(site_id)

    def _close_site(self, site_id: str, server: socket.socket) -> None:
        """Loop thread: close the listener and every inbound conn."""
        self._loop.unregister(server)
        _close_quietly(server)
        for key in list(self._loop._selector.get_map().values()):
            conn = getattr(key.data, "__self__", None)
            if isinstance(conn, _ServerConn) and conn.site_id == site_id:
                conn.teardown(TransportError(f"site {site_id!r} detached"))

    def _discard_channel(self, channel: _PeerChannel) -> None:
        with self._channels_lock:
            if self._channels.get((channel.src, channel.dst)) is channel:
                del self._channels[(channel.src, channel.dst)]

    def close(self) -> None:
        super().close()  # detaches every site through _on_detach
        with self._channels_lock:
            leftovers = list(self._channels.values())
            self._channels.clear()
        for channel in leftovers:
            failure = TransportError("network is closed")
            self._loop.post_and_wait(lambda ch=channel: ch.teardown(failure))
        self._loop.stop()
        self.dispatch_pool.close()

    # ------------------------------------------------------------------
    # negotiation
    # ------------------------------------------------------------------
    def supports_pipelining(self, src: str, dst: str) -> bool:
        with self._channels_lock:
            return dst in self._pipelined_peers

    def _exchange_negotiated(
        self, src: str, dst: str, request: Message, *, timeout: float | None
    ) -> Message:
        """One blocking exchange that doubles as the pipelining probe.

        Unknown peers get the legacy frame with a marked request id; the
        echo decides the cached verdict.  Peers already marked
        unsupported get a plain legacy frame — they never see the marker
        again either.
        """
        if not self.peer_caps.assume(dst, PIPELINED_FRAMES):
            return self._exchange(src, dst, request, timeout=timeout)
        probe = Message(
            kind=request.kind,
            src=request.src,
            dst=request.dst,
            payload=request.payload,
            request_id=_PROBE_ASK + request.request_id,
        )
        response = self._exchange(src, dst, probe, timeout=timeout)
        if response.request_id == _PROBE_ACK + request.request_id:
            with self._channels_lock:
                self._pipelined_peers.add(dst)
        else:
            self.peer_caps.mark_unsupported(dst, PIPELINED_FRAMES)
        return response

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def call(self, src: str, dst: str, payload: bytes, *, timeout: float | None = None) -> bytes:
        self._check_open()
        self._check_route(src, dst)
        request = Message(kind=MessageKind.REQUEST, src=src, dst=dst, payload=payload)
        self._transit(request)
        if self.supports_pipelining(src, dst):
            reply = self._submit_pipelined(src, dst, request)
            wait = timeout if timeout is not None else self._timeout
            response_payload = reply.result(wait)
            self._check_route(dst, src)
            self._transit(request.response(response_payload))
            return response_payload
        response = self._exchange_negotiated(src, dst, request, timeout=timeout)
        self._check_route(dst, src)
        self._transit(request.response(response.payload))
        if response.kind is MessageKind.ERROR:
            raise TransportError(
                f"remote handler at {dst!r} failed: "
                f"{response.payload.decode('utf-8', 'replace')}"
            )
        return response.payload

    def submit(
        self, src: str, dst: str, payload: bytes, *, timeout: float | None = None
    ) -> PendingReply:
        self._check_open()
        self._check_route(src, dst)
        request = Message(kind=MessageKind.REQUEST, src=src, dst=dst, payload=payload)
        self._transit(request)
        if self.supports_pipelining(src, dst):
            return self._submit_pipelined(src, dst, request)
        # Unknown or legacy peer: complete the exchange inline (the
        # blocking path IS the probe; once it confirms, the next submit
        # pipelines for real).
        reply = PendingReply(request.request_id)
        try:
            response = self._exchange_negotiated(src, dst, request, timeout=timeout)
            if response.kind is MessageKind.ERROR:
                reply.fail(
                    TransportError(
                        f"remote handler at {dst!r} failed: "
                        f"{response.payload.decode('utf-8', 'replace')}"
                    )
                )
            else:
                reply.complete(response.payload)
        except Exception as exc:  # noqa: BLE001 - delivered through the reply
            reply.fail(exc)
        return reply

    def _submit_pipelined(self, src: str, dst: str, request: Message) -> PendingReply:
        for attempt in (0, 1):
            channel = self._channel_for(src, dst)
            reply = PendingReply(request.request_id, on_cancel=channel.forget)
            try:
                in_flight = channel.send_request(request, reply)
            except TransportError:
                self._discard_channel(channel)
                if attempt == 0:
                    continue  # channel died under us: retry on a fresh one
                raise
            self.reactor_stats.record_submit(in_flight)
            annotate(pipelined=True, in_flight=in_flight)
            return reply
        raise TransportError(  # pragma: no cover - loop always returns/raises
            f"pipelined submit {src!r}->{dst!r} failed"
        )

    def _channel_for(self, src: str, dst: str) -> _PeerChannel:
        with self._channels_lock:
            channel = self._channels.get((src, dst))
            if channel is not None and not channel.closed:
                return channel
        # Non-blocking connect: the caller never waits on the handshake.
        # The channel is usable immediately — requests buffer in its write
        # queue and the loop flushes them when EVENT_WRITE reports the
        # connect complete (or fails every pending reply if it refused).
        port = self.port_of(dst)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        rc = sock.connect_ex(("127.0.0.1", port))
        if rc not in (0, errno.EINPROGRESS, errno.EWOULDBLOCK):
            _close_quietly(sock)
            raise TransportError(
                f"connect {src!r}->{dst!r} failed: {os.strerror(rc)}"
            )
        fresh = _PeerChannel(self._loop, src, dst, sock)
        if rc != 0:
            fresh.connecting = True
            fresh._interest = selectors.EVENT_WRITE
        with self._channels_lock:
            existing = self._channels.get((src, dst))
            if existing is not None and not existing.closed:
                _close_quietly(sock)
                return existing
            self._channels[(src, dst)] = fresh
        self.reactor_stats.record_open(+1)
        interest = selectors.EVENT_WRITE if fresh.connecting else selectors.EVENT_READ
        self._loop.post(
            lambda: self._loop.register(sock, interest, fresh.on_events)
        )
        return fresh

    def cast(self, src: str, dst: str, payload: bytes) -> None:
        if not self.supports_pipelining(src, dst):
            super().cast(src, dst, payload)
            return
        self._check_open()
        self._check_route(src, dst)
        message = Message(kind=MessageKind.CAST, src=src, dst=dst, payload=payload)
        self._transit(message)
        try:
            self._channel_for(src, dst).send_cast(message)
        except TransportError:
            super().cast(src, dst, payload)  # channel died: legacy fallback
