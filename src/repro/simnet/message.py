"""Wire messages exchanged between sites.

A :class:`Message` is the unit every transport moves.  Payloads are always
``bytes``: forcing serialization at the transport boundary guarantees that
replicas created on another site are true copies and never share mutable
state with their master, even on the in-process transports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.ids import new_request_id


class MessageKind(enum.Enum):
    """Transport-level message discriminator."""

    #: A request expecting exactly one :attr:`RESPONSE`.
    REQUEST = "request"
    #: The response to a :attr:`REQUEST`, matched by ``request_id``.
    RESPONSE = "response"
    #: A one-way message (update dissemination, invalidations).
    CAST = "cast"
    #: A transport-level failure report delivered instead of a RESPONSE.
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class Message:
    """An immutable frame: who, what kind, correlation id and payload."""

    kind: MessageKind
    src: str
    dst: str
    payload: bytes
    request_id: str = field(default_factory=new_request_id)

    def __post_init__(self) -> None:
        if not isinstance(self.payload, bytes):
            raise TypeError(
                f"message payload must be bytes, got {type(self.payload).__name__}; "
                "serialize at the RMI layer before handing frames to the transport"
            )

    @property
    def size(self) -> int:
        """Wire size in bytes: payload plus a fixed header envelope."""
        return len(self.payload) + _HEADER_OVERHEAD

    def response(self, payload: bytes) -> Message:
        """Build the response frame for this request."""
        return Message(
            kind=MessageKind.RESPONSE,
            src=self.dst,
            dst=self.src,
            payload=payload,
            request_id=self.request_id,
        )

    def error(self, payload: bytes) -> Message:
        """Build a transport-error frame for this request."""
        return Message(
            kind=MessageKind.ERROR,
            src=self.dst,
            dst=self.src,
            payload=payload,
            request_id=self.request_id,
        )


#: Approximate size of headers (kind, addresses, correlation id, framing).
_HEADER_OVERHEAD = 64
