"""Threaded in-process transport.

Each attached site gets a mailbox queue and a dispatcher thread, so
handlers run concurrently with callers — the concurrency profile of a real
multi-process deployment, without sockets.  Used by integration tests to
prove the middleware is thread-correct (the loopback transport, being
synchronous, cannot catch reentrancy bugs).

Transfer times from the link model are charged to the shared clock for
accounting; set ``realtime=True`` to also sleep them, turning the model
into observable latency.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

from repro.simnet.message import Message, MessageKind
from repro.simnet.network import Network
from repro.util.errors import TransportError

#: Default seconds a caller waits for a response before giving up.
DEFAULT_TIMEOUT = 30.0

_SHUTDOWN = object()


@dataclass
class _PendingCall:
    """Rendezvous between a calling thread and the responding dispatcher."""

    event: threading.Event = field(default_factory=threading.Event)
    response: Message | None = None


class ThreadedNetwork(Network):
    """Queues plus one dispatcher thread per site."""

    def __init__(self, *args: object, realtime: bool = False, **kwargs: object):
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._realtime = realtime
        self._inboxes: dict[str, queue.Queue] = {}
        self._threads: dict[str, threading.Thread] = {}
        self._pending: dict[str, _PendingCall] = {}
        self._pending_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _on_attach(self, site_id: str) -> None:
        inbox: queue.Queue = queue.Queue()
        self._inboxes[site_id] = inbox
        thread = threading.Thread(
            target=self._dispatch_loop,
            args=(site_id, inbox),
            name=f"simnet-{site_id}",
            daemon=True,
        )
        self._threads[site_id] = thread
        thread.start()

    def _on_detach(self, site_id: str) -> None:
        inbox = self._inboxes.pop(site_id, None)
        if inbox is not None:
            inbox.put(_SHUTDOWN)
        self._threads.pop(site_id, None)

    def close(self) -> None:
        super().close()
        for site_id in list(self._inboxes):
            self._on_detach(site_id)
        # Unblock any caller still waiting.
        with self._pending_lock:
            for pending in self._pending.values():
                pending.event.set()
            self._pending.clear()

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def call(self, src: str, dst: str, payload: bytes, *, timeout: float | None = None) -> bytes:
        self._check_open()
        self._check_route(src, dst)
        request = Message(kind=MessageKind.REQUEST, src=src, dst=dst, payload=payload)
        pending = _PendingCall()
        with self._pending_lock:
            self._pending[request.request_id] = pending
        try:
            self._transmit(request)
            if not pending.event.wait(timeout if timeout is not None else DEFAULT_TIMEOUT):
                raise TransportError(
                    f"timed out waiting for response to {request.request_id} from {dst!r}"
                )
            response = pending.response
        finally:
            with self._pending_lock:
                self._pending.pop(request.request_id, None)
        if response is None:
            raise TransportError(f"network closed while waiting for {request.request_id}")
        if response.kind is MessageKind.ERROR:
            raise TransportError(
                f"remote handler at {dst!r} failed: {response.payload.decode('utf-8', 'replace')}"
            )
        return response.payload

    def cast(self, src: str, dst: str, payload: bytes) -> None:
        self._check_open()
        self._check_route(src, dst)
        self._transmit(Message(kind=MessageKind.CAST, src=src, dst=dst, payload=payload))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _transmit(self, message: Message) -> None:
        """Charge the link model and enqueue at the destination."""
        seconds = self._transit(message)
        if self._realtime and seconds > 0:
            threading.Event().wait(seconds)  # interruption-free sleep
        inbox = self._inboxes.get(message.dst)
        if inbox is None:
            raise TransportError(f"no site {message.dst!r} attached to this network")
        inbox.put(message)

    def _dispatch_loop(self, site_id: str, inbox: queue.Queue) -> None:
        while True:
            item = inbox.get()
            if item is _SHUTDOWN:
                return
            message: Message = item
            if message.kind in (MessageKind.RESPONSE, MessageKind.ERROR):
                self._complete(message)
                continue
            handler = self._handlers.get(site_id)
            if handler is None:
                continue  # site detached with frames still queued
            try:
                result = handler(message)
            except Exception as exc:  # noqa: BLE001 - reported to the caller
                if message.kind is MessageKind.REQUEST:
                    self._respond(message.error(repr(exc).encode("utf-8")))
                continue
            if message.kind is MessageKind.REQUEST:
                if result is None:
                    self._respond(message.error(b"handler returned no response"))
                else:
                    self._respond(message.response(result))

    def _respond(self, response: Message) -> None:
        """Route a response back, honouring connectivity on the return path.

        Responses complete the caller's pending slot directly instead of
        travelling through the destination's dispatcher queue: the caller
        may *be* that dispatcher (a handler making a nested call), and
        queueing behind itself would deadlock.
        """
        try:
            self._check_route(response.src, response.dst)
            seconds = self._transit(response)
            if self._realtime and seconds > 0:
                threading.Event().wait(seconds)
        except TransportError:
            # Return path is gone: the caller's timeout reports the failure.
            return
        self._complete(response)

    def _complete(self, response: Message) -> None:
        with self._pending_lock:
            pending = self._pending.get(response.request_id)
        if pending is not None:
            pending.response = response
            pending.event.set()
