"""Link cost models.

A :class:`Link` converts a frame size into transfer time.  The benchmark
harness calibrates :data:`LAN_10MBPS` to the paper's testbed (10 Mb/s LAN;
a minimal RMI round trip of 2.8 ms); the other presets let examples and
ablations explore the wide-area and wireless conditions the paper
motivates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Link:
    """A point-to-point link model.

    Attributes
    ----------
    latency_s:
        One-way propagation plus fixed protocol-stack delay, in seconds.
        For the paper's LAN this absorbs the non-bandwidth part of the
        2.8 ms RMI round trip (marshalling, dispatch, context switches).
    bandwidth_bps:
        Usable bandwidth in bits per second.
    jitter_s:
        Maximum uniform random extra latency.  Zero keeps the model
        deterministic; benchmarks use zero, examples may not.
    loss_probability:
        Probability a frame is dropped.  The request/response layer turns a
        drop into a :class:`~repro.util.errors.TransportError`; OBIWAN does
        not retry transparently (the paper exposes connectivity problems to
        the replication layer, which falls back on replicas).
    """

    latency_s: float
    bandwidth_bps: float
    jitter_s: float = 0.0
    loss_probability: float = 0.0
    name: str = "link"

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")

    def transfer_time(self, size_bytes: int, rng: random.Random | None = None) -> float:
        """Seconds to move ``size_bytes`` one way across this link."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        jitter = 0.0
        if self.jitter_s > 0.0:
            jitter = (rng or random).uniform(0.0, self.jitter_s)
        return self.latency_s + (size_bytes * 8) / self.bandwidth_bps + jitter

    def drops(self, rng: random.Random | None = None) -> bool:
        """Decide whether a frame is lost on this link."""
        if self.loss_probability <= 0.0:
            return False
        return (rng or random).random() < self.loss_probability


#: Same-process delivery: negligible latency, effectively infinite bandwidth.
LOCAL = Link(latency_s=1e-6, bandwidth_bps=8e12, name="local")

#: The paper's testbed: 10 Mb/s Ethernet between Pentium II/III PCs.  The
#: 1.35 ms one-way latency makes a minimal request/response round trip cost
#: 2.8 ms once the ~64-byte frame envelopes are included — the paper's
#: measured RMI null-invocation time.
LAN_10MBPS = Link(latency_s=1.349e-3, bandwidth_bps=10e6, name="lan-10mbps")

#: A 2002-era transatlantic Internet path.
WAN = Link(latency_s=60e-3, bandwidth_bps=1.5e6, name="wan")

#: 802.11b wireless LAN, the "foreseen increase of bandwidth in wireless
#: communication" the paper cites.
WIRELESS_WLAN = Link(latency_s=5e-3, bandwidth_bps=5e6, name="wlan-802.11b")

#: GPRS cellular data — the info-appliance worst case.
WIRELESS_GPRS = Link(latency_s=500e-3, bandwidth_bps=40e3, name="gprs")
