"""Network substrate for the OBIWAN reproduction.

The paper's prototype ran over Java RMI on a 10 Mb/s LAN.  This package
provides the equivalent message layer with three interchangeable
transports:

:class:`~repro.simnet.loopback.LoopbackNetwork`
    Synchronous in-process delivery that charges a simulated clock
    according to a :class:`~repro.simnet.link.Link` cost model.  Fully
    deterministic; used by every figure benchmark.
:class:`~repro.simnet.threaded.ThreadedNetwork`
    Real threads and queues, one dispatcher per site — proves the
    middleware works under genuine concurrency.
:class:`~repro.simnet.tcp.TcpNetwork`
    Length-prefixed frames over localhost TCP sockets — the closest
    analogue of the paper's RMI-over-LAN deployment.

All transports share partition/disconnection injection (the mobility
scenarios of the paper) and per-link traffic statistics.
"""

from repro.simnet.link import (
    LAN_10MBPS,
    LOCAL,
    WAN,
    WIRELESS_GPRS,
    WIRELESS_WLAN,
    Link,
)
from repro.simnet.loopback import LoopbackNetwork
from repro.simnet.message import Message, MessageKind
from repro.simnet.network import Endpoint, Network
from repro.simnet.partition import ConnectivityMap
from repro.simnet.stats import LinkStats, NetworkStats
from repro.simnet.tcp import TcpNetwork
from repro.simnet.threaded import ThreadedNetwork

__all__ = [
    "Link",
    "LOCAL",
    "LAN_10MBPS",
    "WAN",
    "WIRELESS_WLAN",
    "WIRELESS_GPRS",
    "Message",
    "MessageKind",
    "Network",
    "Endpoint",
    "ConnectivityMap",
    "NetworkStats",
    "LinkStats",
    "LoopbackNetwork",
    "ThreadedNetwork",
    "TcpNetwork",
]
