"""Abstract network and site endpoints.

A :class:`Network` connects named sites.  Each site attaches once with a
handler; the handler receives inbound :class:`~repro.simnet.message.Message`
frames and, for requests, returns the response payload.  The RMI layer
(`repro.rmi`) is the only intended client of this API — applications use
stubs and replicas, never raw frames.
"""

from __future__ import annotations

import random
import threading
from abc import ABC, abstractmethod
from collections.abc import Callable

from repro.simnet.link import LOCAL, Link
from repro.simnet.message import Message
from repro.simnet.partition import ConnectivityMap
from repro.simnet.stats import NetworkStats
from repro.util.clock import Clock, SimClock
from repro.util.errors import DisconnectedError, TransportError
from repro.util.ids import new_request_id

#: Inbound frame handler.  For ``REQUEST`` frames the return value is the
#: response payload; for ``CAST`` frames it is ignored.
Handler = Callable[[Message], bytes | None]


class PendingReply:
    """A future for one in-flight request.

    The sync facade over pipelined transports: :meth:`Network.submit`
    returns one of these per request, and :meth:`result` blocks the
    caller until the correlated response lands (or the deadline passes).
    Completion and cancellation race safely — whichever settles the
    reply first wins, and the loser becomes a no-op — so a transport
    thread completing a reply never trips over a caller timing it out.
    """

    def __init__(
        self,
        request_id: str,
        *,
        on_cancel: Callable[["PendingReply"], None] | None = None,
    ):
        self.request_id = request_id
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result: bytes | None = None
        self._error: BaseException | None = None
        self._cancelled = False
        self._settled = False
        self._on_cancel = on_cancel

    # -- transport side -------------------------------------------------
    def complete(self, payload: bytes) -> bool:
        """Deliver the response payload; False if already settled."""
        with self._lock:
            if self._settled:
                return False
            self._result = payload
            self._settled = True
        self._event.set()
        return True

    def fail(self, error: BaseException) -> bool:
        """Deliver a failure; False if already settled."""
        with self._lock:
            if self._settled:
                return False
            self._error = error
            self._settled = True
        self._event.set()
        return True

    # -- caller side ----------------------------------------------------
    def cancel(self) -> bool:
        """Abandon the request; only this reply's correlation id is
        poisoned — sibling requests on the same connection are unharmed.
        Returns False if a response or failure already settled it."""
        with self._lock:
            if self._settled:
                return False
            self._cancelled = True
            self._settled = True
        if self._on_cancel is not None:
            self._on_cancel(self)
        self._event.set()
        return True

    def done(self) -> bool:
        return self._event.is_set()

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    def result(self, timeout: float | None = None) -> bytes:
        """Block for the response payload.

        A timeout cancels this request (and only this request) before
        raising, so a response that straggles in later is dropped instead
        of being mismatched to a future call.
        """
        if not self._event.wait(timeout):
            if self.cancel():
                raise TransportError(
                    f"request {self.request_id} timed out after {timeout}s"
                )
        with self._lock:
            cancelled = self._cancelled
            error = self._error
            payload = self._result
        if cancelled:
            raise TransportError(f"request {self.request_id} was cancelled")
        if error is not None:
            raise error
        assert payload is not None
        return payload


class Network(ABC):
    """Base class for all transports.

    Owns the pieces every transport shares: the clock, the link table, the
    connectivity map (disconnections/partitions) and traffic statistics.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        *,
        default_link: Link = LOCAL,
        seed: int | None = None,
    ):
        self.clock: Clock = clock if clock is not None else SimClock()
        self.default_link = default_link
        self.connectivity = ConnectivityMap()
        self.stats = NetworkStats()
        self._links: dict[tuple[str, str], Link] = {}
        self._handlers: dict[str, Handler] = {}
        self._topology_listeners: list[Callable[[str, str], None]] = []
        self._rng = random.Random(seed)
        self._closed = False

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_topology_listener(self, listener: Callable[[str, str], None]) -> None:
        """Call ``listener(event, site_id)`` on every attach/detach.

        ``event`` is ``"attach"`` or ``"detach"``.  Listeners run on the
        attaching/detaching thread, after the handler table has changed
        and outside any transport lock.  Sites use this to invalidate
        per-peer capability caches when a peer's connection churns — a
        re-attached peer may be a restarted (older or newer) build.
        """
        self._topology_listeners.append(listener)

    def _notify_topology(self, event: str, site_id: str) -> None:
        for listener in list(self._topology_listeners):
            listener(event, site_id)

    def attach(self, site_id: str, handler: Handler) -> "Endpoint":
        """Register ``site_id`` with its inbound-frame handler."""
        if site_id in self._handlers:
            raise ValueError(f"site {site_id!r} is already attached")
        self._handlers[site_id] = handler
        self._on_attach(site_id)
        self._notify_topology("attach", site_id)
        return Endpoint(self, site_id)

    def detach(self, site_id: str) -> None:
        """Remove a site; in-flight calls to it fail."""
        self._handlers.pop(site_id, None)
        self._on_detach(site_id)
        self._notify_topology("detach", site_id)

    def set_link(self, a: str, b: str, link: Link, *, symmetric: bool = True) -> None:
        """Install a link model between two sites (default: both ways)."""
        self._links[(a, b)] = link
        if symmetric:
            self._links[(b, a)] = link

    def link_for(self, src: str, dst: str) -> Link:
        return self._links.get((src, dst), self.default_link)

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._handlers)

    # ------------------------------------------------------------------
    # convenience passthroughs to the connectivity map
    # ------------------------------------------------------------------
    def disconnect(self, site_id: str, *, voluntary: bool = False) -> None:
        self.connectivity.disconnect(site_id, voluntary=voluntary)

    def reconnect(self, site_id: str) -> None:
        self.connectivity.reconnect(site_id)

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        self.connectivity.partition(group_a, group_b)

    def heal(self) -> None:
        self.connectivity.heal()

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    @abstractmethod
    def call(self, src: str, dst: str, payload: bytes, *, timeout: float | None = None) -> bytes:
        """Send a request from ``src`` to ``dst``; return the response payload."""

    @abstractmethod
    def cast(self, src: str, dst: str, payload: bytes) -> None:
        """Send a one-way message (best effort once routing succeeds)."""

    def submit(
        self, src: str, dst: str, payload: bytes, *, timeout: float | None = None
    ) -> PendingReply:
        """Start a request and return a :class:`PendingReply` for it.

        The default implementation is the degenerate sync case — it runs
        :meth:`call` to completion on the calling thread and hands back an
        already-settled reply — so every transport supports the future
        API.  Pipelining transports override this to keep many requests
        in flight per connection.
        """
        reply = PendingReply(new_request_id())
        try:
            reply.complete(self.call(src, dst, payload, timeout=timeout))
        except Exception as exc:  # noqa: BLE001 - delivered through the reply
            reply.fail(exc)
        return reply

    def supports_pipelining(self, src: str, dst: str) -> bool:
        """True when :meth:`submit` calls from ``src`` to ``dst`` share a
        multiplexed connection (many frames in flight at once).  Callers
        use this to decide whether fanning a batch out into individual
        submits buys concurrency or just burns round trips."""
        return False

    def close(self) -> None:
        """Shut the transport down; further traffic raises."""
        self._closed = True

    def __enter__(self) -> "Network":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # shared plumbing for subclasses
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise TransportError("network is closed")

    def _check_route(self, src: str, dst: str) -> None:
        """Raise if a frame from ``src`` cannot currently reach ``dst``."""
        if dst not in self._handlers:
            raise TransportError(f"no site {dst!r} attached to this network")
        if not self.connectivity.can_communicate(src, dst):
            self.stats.record_rejected(src, dst)
            record = self.connectivity.blocking_disconnection(src, dst)
            if record is not None:
                raise DisconnectedError(
                    f"cannot reach {dst!r} from {src!r}: {record.site_id!r} is disconnected",
                    voluntary=record.voluntary,
                )
            raise DisconnectedError(
                f"cannot reach {dst!r} from {src!r}: network partition", voluntary=False
            )

    def _handler_for(self, site_id: str) -> Handler:
        try:
            return self._handlers[site_id]
        except KeyError:
            raise TransportError(f"no site {site_id!r} attached to this network") from None

    def _transit(self, message: Message) -> float:
        """Account one frame's traversal; return the modelled transfer time.

        Raises :class:`TransportError` if the link drops the frame.
        """
        link = self.link_for(message.src, message.dst)
        if link.drops(self._rng):
            self.stats.record_drop(message.src, message.dst)
            raise TransportError(
                f"frame {message.request_id} lost on link {link.name} "
                f"({message.src} -> {message.dst})"
            )
        seconds = link.transfer_time(message.size, self._rng)
        self.stats.record(message.src, message.dst, message.size, seconds)
        return seconds

    # Subclass hooks -----------------------------------------------------
    def _on_attach(self, site_id: str) -> None:  # pragma: no cover - default no-op
        pass

    def _on_detach(self, site_id: str) -> None:  # pragma: no cover - default no-op
        pass


class Endpoint:
    """A site's bound handle on a network."""

    def __init__(self, network: Network, site_id: str):
        self.network = network
        self.site_id = site_id

    def call(self, dst: str, payload: bytes, *, timeout: float | None = None) -> bytes:
        return self.network.call(self.site_id, dst, payload, timeout=timeout)

    def submit(self, dst: str, payload: bytes, *, timeout: float | None = None) -> PendingReply:
        return self.network.submit(self.site_id, dst, payload, timeout=timeout)

    def supports_pipelining(self, dst: str) -> bool:
        return self.network.supports_pipelining(self.site_id, dst)

    def cast(self, dst: str, payload: bytes) -> None:
        self.network.cast(self.site_id, dst, payload)

    @property
    def clock(self) -> Clock:
        return self.network.clock

    def __repr__(self) -> str:
        return f"Endpoint({self.site_id!r} on {type(self.network).__name__})"
