"""Abstract network and site endpoints.

A :class:`Network` connects named sites.  Each site attaches once with a
handler; the handler receives inbound :class:`~repro.simnet.message.Message`
frames and, for requests, returns the response payload.  The RMI layer
(`repro.rmi`) is the only intended client of this API — applications use
stubs and replicas, never raw frames.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Callable

from repro.simnet.link import LOCAL, Link
from repro.simnet.message import Message
from repro.simnet.partition import ConnectivityMap
from repro.simnet.stats import NetworkStats
from repro.util.clock import Clock, SimClock
from repro.util.errors import DisconnectedError, TransportError

#: Inbound frame handler.  For ``REQUEST`` frames the return value is the
#: response payload; for ``CAST`` frames it is ignored.
Handler = Callable[[Message], bytes | None]


class Network(ABC):
    """Base class for all transports.

    Owns the pieces every transport shares: the clock, the link table, the
    connectivity map (disconnections/partitions) and traffic statistics.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        *,
        default_link: Link = LOCAL,
        seed: int | None = None,
    ):
        self.clock: Clock = clock if clock is not None else SimClock()
        self.default_link = default_link
        self.connectivity = ConnectivityMap()
        self.stats = NetworkStats()
        self._links: dict[tuple[str, str], Link] = {}
        self._handlers: dict[str, Handler] = {}
        self._rng = random.Random(seed)
        self._closed = False

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def attach(self, site_id: str, handler: Handler) -> "Endpoint":
        """Register ``site_id`` with its inbound-frame handler."""
        if site_id in self._handlers:
            raise ValueError(f"site {site_id!r} is already attached")
        self._handlers[site_id] = handler
        self._on_attach(site_id)
        return Endpoint(self, site_id)

    def detach(self, site_id: str) -> None:
        """Remove a site; in-flight calls to it fail."""
        self._handlers.pop(site_id, None)
        self._on_detach(site_id)

    def set_link(self, a: str, b: str, link: Link, *, symmetric: bool = True) -> None:
        """Install a link model between two sites (default: both ways)."""
        self._links[(a, b)] = link
        if symmetric:
            self._links[(b, a)] = link

    def link_for(self, src: str, dst: str) -> Link:
        return self._links.get((src, dst), self.default_link)

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._handlers)

    # ------------------------------------------------------------------
    # convenience passthroughs to the connectivity map
    # ------------------------------------------------------------------
    def disconnect(self, site_id: str, *, voluntary: bool = False) -> None:
        self.connectivity.disconnect(site_id, voluntary=voluntary)

    def reconnect(self, site_id: str) -> None:
        self.connectivity.reconnect(site_id)

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        self.connectivity.partition(group_a, group_b)

    def heal(self) -> None:
        self.connectivity.heal()

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    @abstractmethod
    def call(self, src: str, dst: str, payload: bytes, *, timeout: float | None = None) -> bytes:
        """Send a request from ``src`` to ``dst``; return the response payload."""

    @abstractmethod
    def cast(self, src: str, dst: str, payload: bytes) -> None:
        """Send a one-way message (best effort once routing succeeds)."""

    def close(self) -> None:
        """Shut the transport down; further traffic raises."""
        self._closed = True

    def __enter__(self) -> "Network":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # shared plumbing for subclasses
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise TransportError("network is closed")

    def _check_route(self, src: str, dst: str) -> None:
        """Raise if a frame from ``src`` cannot currently reach ``dst``."""
        if dst not in self._handlers:
            raise TransportError(f"no site {dst!r} attached to this network")
        if not self.connectivity.can_communicate(src, dst):
            self.stats.record_rejected(src, dst)
            record = self.connectivity.blocking_disconnection(src, dst)
            if record is not None:
                raise DisconnectedError(
                    f"cannot reach {dst!r} from {src!r}: {record.site_id!r} is disconnected",
                    voluntary=record.voluntary,
                )
            raise DisconnectedError(
                f"cannot reach {dst!r} from {src!r}: network partition", voluntary=False
            )

    def _handler_for(self, site_id: str) -> Handler:
        try:
            return self._handlers[site_id]
        except KeyError:
            raise TransportError(f"no site {site_id!r} attached to this network") from None

    def _transit(self, message: Message) -> float:
        """Account one frame's traversal; return the modelled transfer time.

        Raises :class:`TransportError` if the link drops the frame.
        """
        link = self.link_for(message.src, message.dst)
        if link.drops(self._rng):
            self.stats.record_drop(message.src, message.dst)
            raise TransportError(
                f"frame {message.request_id} lost on link {link.name} "
                f"({message.src} -> {message.dst})"
            )
        seconds = link.transfer_time(message.size, self._rng)
        self.stats.record(message.src, message.dst, message.size, seconds)
        return seconds

    # Subclass hooks -----------------------------------------------------
    def _on_attach(self, site_id: str) -> None:  # pragma: no cover - default no-op
        pass

    def _on_detach(self, site_id: str) -> None:  # pragma: no cover - default no-op
        pass


class Endpoint:
    """A site's bound handle on a network."""

    def __init__(self, network: Network, site_id: str):
        self.network = network
        self.site_id = site_id

    def call(self, dst: str, payload: bytes, *, timeout: float | None = None) -> bytes:
        return self.network.call(self.site_id, dst, payload, timeout=timeout)

    def cast(self, dst: str, payload: bytes) -> None:
        self.network.cast(self.site_id, dst, payload)

    @property
    def clock(self) -> Clock:
        return self.network.clock

    def __repr__(self) -> str:
        return f"Endpoint({self.site_id!r} on {type(self.network).__name__})"
