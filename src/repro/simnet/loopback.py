"""Deterministic in-process transport with simulated-time accounting.

Delivery is a synchronous function call, but every frame charges the
network clock with the link model's transfer time, so a benchmark that
reads ``network.clock.now()`` before and after a workload observes the
time the paper's testbed would have spent moving the same bytes.

This is the transport behind every figure benchmark: with a zero-jitter,
zero-loss link the numbers are bit-for-bit reproducible across runs and
machines.
"""

from __future__ import annotations

from repro.simnet.message import Message, MessageKind
from repro.simnet.network import Network
from repro.util.errors import TransportError


class LoopbackNetwork(Network):
    """Synchronous delivery, simulated-time cost accounting."""

    def call(self, src: str, dst: str, payload: bytes, *, timeout: float | None = None) -> bytes:
        self._check_open()
        self._check_route(src, dst)
        request = Message(kind=MessageKind.REQUEST, src=src, dst=dst, payload=payload)
        self.clock.advance(self._transit(request))

        handler = self._handler_for(dst)
        response_payload = handler(request)
        if response_payload is None:
            raise TransportError(
                f"handler at {dst!r} returned no response for request {request.request_id}"
            )

        # The response travels the reverse path, which may have been cut
        # while the handler ran (e.g. the requester went offline mid-call).
        self._check_route(dst, src)
        response = request.response(response_payload)
        self.clock.advance(self._transit(response))
        return response.payload

    def cast(self, src: str, dst: str, payload: bytes) -> None:
        self._check_open()
        self._check_route(src, dst)
        message = Message(kind=MessageKind.CAST, src=src, dst=dst, payload=payload)
        self.clock.advance(self._transit(message))
        self._handler_for(dst)(message)
