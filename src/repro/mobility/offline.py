"""Invocation with graceful degradation.

The paper: "if accessing data on some remote machine is not possible …
the application should not stop working; instead it should, at least,
automatically propose the user an alternative access to such data from
another machine, even if such data is not up to date."

:class:`FallbackInvoker` implements that policy: try the master over RMI;
on disconnection fall back to the local replica and *say so* — the result
carries ``served_by`` and ``possibly_stale`` flags the application can
surface to the user.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.meta import obi_id_of
from repro.rmi.refs import RemoteRef
from repro.util.errors import DisconnectedError, ObjectFaultError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site


class ServedBy(enum.Enum):
    MASTER = "master"
    REPLICA = "replica"


@dataclass(frozen=True, slots=True)
class InvocationResult:
    """A value plus provenance: where it came from and how fresh it is."""

    value: object
    served_by: ServedBy
    #: True when the answer came from a replica while the master was
    #: unreachable — it may not reflect the latest master state.
    possibly_stale: bool
    #: Whether the disconnection (if any) was voluntary.
    disconnection_voluntary: bool | None = None


class FallbackInvoker:
    """RMI-first invocation that degrades to the local replica."""

    def __init__(self, site: "Site"):
        self.site = site

    def call(
        self,
        name: str,
        method: str,
        *args: object,
        replica: object | None = None,
        **kwargs: object,
    ) -> InvocationResult:
        """Invoke ``method`` on the master bound to ``name``; fall back to
        ``replica`` (or a previously fetched replica of the same object)
        when the network says no."""
        try:
            ref = self._lookup(name)
            stub = self.site.remote_stub(ref)
            value = getattr(stub, method)(*args, **kwargs)
            return InvocationResult(value=value, served_by=ServedBy.MASTER, possibly_stale=False)
        except DisconnectedError as exc:
            local = replica if replica is not None else self._find_local(name)
            if local is None:
                raise ObjectFaultError(
                    f"{name!r} unreachable and no local replica to fall back on; "
                    "hoard it before disconnecting"
                ) from exc
            value = self.site.invoke_local(local, method, *args, **kwargs)
            return InvocationResult(
                value=value,
                served_by=ServedBy.REPLICA,
                possibly_stale=True,
                disconnection_voluntary=exc.voluntary,
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _lookup(self, name: str) -> RemoteRef:
        # Name lookups themselves can hit the disconnection, which is
        # exactly the fallback trigger, so let DisconnectedError fly.
        cached = self._ref_cache.get(name)
        if cached is not None:
            return cached
        ref = self.site.naming.lookup(name)
        self._ref_cache[name] = ref
        return ref

    @property
    def _ref_cache(self) -> dict[str, RemoteRef]:
        cache = getattr(self, "_ref_cache_storage", None)
        if cache is None:
            cache = {}
            self._ref_cache_storage = cache
        return cache

    def _find_local(self, name: str) -> object | None:
        """A local replica of the object bound to ``name``, if any."""
        ref = self._ref_cache.get(name)
        if ref is None:
            return None  # never resolved the name while online
        # The name maps to the master's proxy-in; correlate through the
        # replicas we hold from that provider.
        for record in self.site.iter_replicas():
            if record.provider is not None and record.provider.object_id == ref.object_id:
                return record.obj
        return None

    def local_replica_of(self, replica_or_name: object) -> object | None:
        """Public variant of the fallback lookup, for applications."""
        if isinstance(replica_or_name, str):
            return self._find_local(replica_or_name)
        if self.site.replica_info(obi_id_of(replica_or_name)) is not None:
            return replica_or_name
        return None
