"""Mobile agents: code-free state migration along an itinerary.

The paper folds agents into its motivation twice: "as long as objects
needed by an application **(or by an agent)** are colocated, there is no
need to be connected to the network."  An OBIWAN agent is an ordinary
compiled object that *moves*: its state is serialized, shipped to the
next site's :class:`AgentHost`, rebuilt there and given control
(``on_arrive``).  OBIWAN references in the agent's luggage travel as
proxy-out descriptors — at the destination they fault against their
providers like any other reference, so an agent can carry pointers into
graphs it has not copied.

Deployment model (paper Section 3): every site already loads the same
obicomp output, so shipping *state* suffices — no code mobility needed,
exactly as the Java prototype ships serialized objects between JVMs
holding the same classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.interfaces import Incremental
from repro.core.meta import interface_of, is_obiwan
from repro.core.replication import PackagingSwizzler, SiteUnswizzler
from repro.rmi.refs import RemoteRef
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.util.errors import ReplicationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site

#: Well-known export id of a site's agent host.
AGENT_HOST_OBJECT_ID = "obj:agent-host"
AGENT_HOST_METHODS = ("receive",)


@dataclass
class AgentTrip:
    """What came home: the returned agent and its per-site results."""

    agent: object
    visits: list[tuple[str, object]]

    @property
    def sites_visited(self) -> list[str]:
        return [site for site, _result in self.visits]


class AgentHost:
    """Receives travelling agents, runs them, forwards them onward."""

    def __init__(self, site: "Site"):
        self._site = site
        site.endpoint.export(self, object_id=AGENT_HOST_OBJECT_ID, interface="IAgentHost")

    # ------------------------------------------------------------------
    # remote surface
    # ------------------------------------------------------------------
    def receive(
        self,
        wire_name: str,
        state_payload: bytes,
        itinerary: list[str],
        visits: list,
    ) -> tuple[str, bytes, list]:
        """Rebuild the agent, run it here, forward or return it."""
        agent = _unpack_agent(self._site, wire_name, state_payload)
        result = agent.on_arrive(self._site)
        visits = [*visits, (self._site.name, result)]
        if itinerary:
            return _forward(self._site, agent, itinerary, visits)
        return (wire_name, _pack_agent(self._site, agent), visits)


def launch_agent(site: "Site", agent: object, itinerary: list[str]) -> AgentTrip:
    """Send ``agent`` along ``itinerary`` and wait for it to come home.

    ``agent`` must be an obicomp-compiled object with an
    ``on_arrive(site)`` method; each visited site must run an
    :class:`AgentHost`.  The local instance is conceptually consumed —
    the returned :class:`AgentTrip` carries the travelled agent's final
    state in a fresh instance.
    """
    if not is_obiwan(agent):
        raise ReplicationError("agents must be obicomp-compiled objects")
    if not callable(getattr(agent, "on_arrive", None)):
        raise ReplicationError("agents must define on_arrive(site)")
    if not itinerary:
        raise ReplicationError("itinerary must name at least one site")

    wire_name, payload, visits = _forward(site, agent, itinerary, visits=[])
    returned = _unpack_agent(site, wire_name, payload)
    return AgentTrip(agent=returned, visits=visits)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _forward(
    site: "Site", agent: object, itinerary: list[str], visits: list
) -> tuple[str, bytes, list]:
    next_site, rest = itinerary[0], list(itinerary[1:])
    host_ref = RemoteRef(
        site_id=next_site, object_id=AGENT_HOST_OBJECT_ID, interface="IAgentHost"
    )
    wire_name = site.registry.lookup_class(type(agent)).name
    payload = _pack_agent(site, agent)
    return site.endpoint.invoke(
        host_ref, "receive", (wire_name, payload, rest, visits)
    )


def _pack_agent(site: "Site", agent: object) -> bytes:
    """The agent's own state by value; OBIWAN references as proxies."""
    swizzler = PackagingSwizzler(site, member_ids={id(agent)})
    payload = Encoder(site.registry, swizzler).encode(dict(vars(agent)))
    site.charge_pairs(swizzler.pairs_created)
    site.charge_serialization(len(payload))
    return payload


def _unpack_agent(site: "Site", wire_name: str, payload: bytes) -> object:
    entry = site.registry.lookup_name(wire_name)
    agent = entry.factory()
    if not is_obiwan(agent):
        raise ReplicationError(f"{wire_name!r} is not a compiled agent class")
    state = Decoder(site.registry, SiteUnswizzler(site, Incremental(1))).decode(payload)
    if not isinstance(state, dict):
        raise ReplicationError("agent payload must decode to a state dict")
    vars(agent).update(state)
    site.charge_serialization(len(payload))
    # Sanity: the rebuilt instance still honours its declared interface.
    interface_of(agent)
    return agent
