"""The mobile-node facade: one object for the whole mobility story.

Bundles connectivity control, hoarding, fallback invocation and
reconciliation around a single site — the programming surface of the
paper's info-appliance scenario::

    node = MobileNode(pda_site)
    agenda = node.hoard("agenda")            # replicate before the taxi
    node.go_offline(voluntary=True)
    agenda.add("buy milk")                   # LMI, no network
    node.go_online()                         # reconcile automatically
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.interfaces import ReplicationMode
from repro.mobility.connectivity import ConnectivityManager
from repro.mobility.hoard import Hoard
from repro.mobility.offline import FallbackInvoker, InvocationResult
from repro.mobility.reconcile import ConflictResolver, Reconciler, ReconcileReport
from repro.mobility.transactions import MobileTransaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site


class MobileNode:
    """A site plus its mobility machinery."""

    def __init__(self, site: "Site"):
        self.site = site
        self.connectivity = ConnectivityManager(site)
        self.hoard_store = Hoard(site)
        self.invoker = FallbackInvoker(site)
        self.reconciler = Reconciler(site)

    # ------------------------------------------------------------------
    # hoarding
    # ------------------------------------------------------------------
    def hoard(self, name: str, mode: ReplicationMode | None = None) -> object:
        """Replicate-and-pin ``name`` for offline use; baseline-tracked."""
        replica = self.hoard_store.hoard(name, mode)
        self.reconciler.track(replica)
        return replica

    def prefetch(self, root: object) -> int:
        """Resolve all pending faults under ``root`` while still online."""
        return self.hoard_store.prefetch(root)

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def go_offline(self, *, voluntary: bool = False) -> None:
        self.connectivity.go_offline(voluntary=voluntary)

    def go_online(
        self, *, reconcile: bool = True, on_conflict: ConflictResolver | None = None
    ) -> ReconcileReport | None:
        """Reconnect and (by default) reconcile offline modifications."""
        self.connectivity.go_online()
        if reconcile:
            return self.reconciler.reconcile(on_conflict=on_conflict)
        return None

    @property
    def is_online(self) -> bool:
        return self.connectivity.is_online

    # ------------------------------------------------------------------
    # invocation & transactions
    # ------------------------------------------------------------------
    def call(self, name: str, method: str, *args: object, **kwargs: object) -> InvocationResult:
        """RMI with replica fallback (see :class:`FallbackInvoker`).

        The hoard is the fallback source: a hoarded replica under the
        same name serves the call when the master is unreachable.
        """
        return self.invoker.call(
            name, method, *args, replica=self.hoard_store.get(name), **kwargs
        )

    def transaction(self) -> MobileTransaction:
        """Begin a relaxed transaction over this node's replicas."""
        return MobileTransaction(self.site)

    def __repr__(self) -> str:
        status = "online" if self.is_online else "offline"
        return f"MobileNode({self.site.name!r}, {status}, hoarded={len(self.hoard_store)})"
