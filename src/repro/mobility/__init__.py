"""Mobility support — the paper's motivating scenario.

"In the mobile environment, applications will face frequent, lengthy
network disconnections … applications should handle such disconnections
gracefully and as transparently as possible."  This package provides the
pieces an info-appliance application combines:

* :mod:`~repro.mobility.connectivity` — voluntary/involuntary
  disconnection control for a site;
* :mod:`~repro.mobility.hoard` — hoarding (prefetching) object graphs
  before going offline, including background fault prefetching (the
  paper's "a perfect mechanism of pre-fetching … can completely eliminate
  the latency" footnote);
* :mod:`~repro.mobility.offline` — invocation with automatic fallback
  from RMI to a (possibly stale) local replica;
* :mod:`~repro.mobility.transactions` — relaxed, optimistic transactions
  on replicas that validate at commit time (the paper's "relaxed
  transactional support" hook);
* :mod:`~repro.mobility.reconcile` — reconnection reconciliation of
  offline modifications against master state.

:class:`MobileNode` bundles them behind one object.
"""

from repro.mobility.agent import AgentHost, AgentTrip, launch_agent
from repro.mobility.connectivity import ConnectivityManager
from repro.mobility.hoard import Hoard
from repro.mobility.node import MobileNode
from repro.mobility.offline import FallbackInvoker, InvocationResult
from repro.mobility.reconcile import (
    ReconcileAction,
    ReconcileReport,
    Reconciler,
    keep_local,
    keep_master,
)
from repro.mobility.transactions import MobileTransaction

__all__ = [
    "ConnectivityManager",
    "Hoard",
    "FallbackInvoker",
    "InvocationResult",
    "MobileTransaction",
    "Reconciler",
    "ReconcileReport",
    "ReconcileAction",
    "keep_local",
    "keep_master",
    "MobileNode",
    "AgentHost",
    "AgentTrip",
    "launch_agent",
]
