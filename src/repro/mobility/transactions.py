"""Relaxed mobile transactions.

The paper lists "relaxed transactional support" among the
application-specific properties its hooks enable (its follow-up work,
*Loosely-Coupled, Mobile Replication of Objects with Transactions*,
builds exactly this).  A :class:`MobileTransaction` is the optimistic,
disconnection-friendly variant:

* operations run on **local replicas** — fully usable offline;
* every replica touched is snapshotted on first touch, so an abort can
  roll the local state back;
* ``commit`` (online) validates that no master moved past the version
  each replica was based on, then pushes all written replicas in one
  batch; any version mismatch aborts with the conflict list.

This is first-committer-wins certification: no locks are ever held at
the master, matching the paper's weak-connectivity assumptions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.meta import obi_id_of
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.util.errors import ReplicationError, TransactionAborted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site


class TxState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(slots=True)
class _Touched:
    replica: object
    version_seen: int
    snapshot: bytes
    written: bool = False


class MobileTransaction:
    """An optimistic transaction over local replicas."""

    def __init__(self, site: "Site"):
        self.site = site
        self.state = TxState.ACTIVE
        self._touched: dict[str, _Touched] = {}

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def read(self, replica: object, method: str, *args: object, **kwargs: object) -> object:
        """A read inside the transaction (tracked for validation)."""
        self._track(replica, written=False)
        return self.site.invoke_local(replica, method, *args, **kwargs)

    def write(self, replica: object, method: str, *args: object, **kwargs: object) -> object:
        """A mutating operation inside the transaction."""
        touched = self._track(replica, written=True)
        touched.written = True
        return self.site.invoke_local(replica, method, *args, **kwargs)

    # ------------------------------------------------------------------
    # outcome
    # ------------------------------------------------------------------
    def commit(self) -> dict[str, int]:
        """Validate against masters and push writes; returns new versions.

        Raises :class:`TransactionAborted` — after rolling local replicas
        back — when any touched object's master version moved past the
        version this transaction was based on (a concurrent committer).
        """
        self._require_active()
        conflicts = []
        for oid, touched in self._touched.items():
            info = self.site.replica_info(oid)
            if info is None or info.provider is None:
                raise ReplicationError(
                    f"transaction touched {oid!r} which has no individual provider"
                )
            current = self.site.endpoint.invoke(info.provider, "get_version", ())
            if current != touched.version_seen:
                conflicts.append((oid, touched.version_seen, current))
        if conflicts:
            self.rollback()
            raise TransactionAborted(
                f"validation failed for {len(conflicts)} object(s)", conflicts=conflicts
            )

        versions: dict[str, int] = {}
        for oid, touched in self._touched.items():
            if touched.written:
                versions[oid] = self.site.put_back(touched.replica)
        self.state = TxState.COMMITTED
        return versions

    def rollback(self) -> None:
        """Restore every touched replica to its first-touch snapshot."""
        self._require_active()
        for touched in self._touched.values():
            state = Decoder(self.site.registry).decode(touched.snapshot)
            assert isinstance(state, dict)
            replica_vars = vars(touched.replica)
            preserved = {
                key: value for key, value in replica_vars.items() if _is_graph_ref(value)
            }
            replica_vars.clear()
            replica_vars.update(state)
            # Snapshots only capture plain state; graph references (other
            # replicas, proxy-outs) were never mutated by the transaction
            # machinery itself, so restore the originals.
            replica_vars.update(preserved)
        self.state = TxState.ABORTED

    def abort(self) -> None:
        """Alias for :meth:`rollback` (application-initiated)."""
        self.rollback()

    # ------------------------------------------------------------------
    # context-manager sugar: commit on clean exit, roll back on error
    # ------------------------------------------------------------------
    def __enter__(self) -> "MobileTransaction":
        return self

    def __exit__(self, exc_type: type | None, exc: BaseException | None, tb: object) -> bool:
        if self.state is not TxState.ACTIVE:
            return False
        if exc_type is None:
            self.commit()
            return False
        self.rollback()
        return False  # propagate the application's exception

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _track(self, replica: object, *, written: bool) -> _Touched:
        self._require_active()
        oid = obi_id_of(replica)
        touched = self._touched.get(oid)
        if touched is None:
            info = self.site.replica_info(oid)
            if info is None:
                raise ReplicationError(
                    f"transactions operate on replicas; {oid!r} is not one "
                    f"on site {self.site.name!r}"
                )
            touched = _Touched(
                replica=replica,
                version_seen=info.version,
                snapshot=self._snapshot(replica),
                written=written,
            )
            self._touched[oid] = touched
        return touched

    def _snapshot(self, replica: object) -> bytes:
        state = {
            key: value for key, value in vars(replica).items() if not _is_graph_ref(value)
        }
        return Encoder(self.site.registry).encode(state)

    def _require_active(self) -> None:
        if self.state is not TxState.ACTIVE:
            raise TransactionAborted(f"transaction is {self.state.value}, not active")

    @property
    def touched_count(self) -> int:
        return len(self._touched)


def _is_graph_ref(value: object) -> bool:
    """True for values that are (or contain) OBIWAN graph references."""
    from repro.core.graphwalk import _scan

    return next(_scan(value), None) is not None
