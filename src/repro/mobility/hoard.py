"""Hoarding: replicate what you will need *before* disconnecting.

"As long as objects needed by an application (or by an agent) are
colocated, there is no need to be connected to the network."  A
:class:`Hoard` pins named object graphs locally — by default their whole
transitive closure, so no object fault can strike while offline — and can
also *prefetch* the pending proxy-outs of an existing replica graph (the
paper's footnote that perfect background prefetching eliminates fault
latency entirely).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import graphwalk
from repro.core.interfaces import ReplicationMode, Transitive
from repro.core.proxy_out import ProxyOutBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site


class Hoard:
    """A pinned set of replicas for disconnected operation."""

    def __init__(self, site: "Site"):
        self.site = site
        self._pinned: dict[str, object] = {}

    # ------------------------------------------------------------------
    # filling the hoard
    # ------------------------------------------------------------------
    def hoard(
        self,
        name: str,
        mode: ReplicationMode | None = None,
    ) -> object:
        """Replicate and pin the graph bound to ``name``.

        The default mode is the transitive closure: hoarding exists to
        guarantee offline completeness, and a partial hoard would fault —
        and fail — mid-disconnection.
        """
        replica = self.site.replicate(name, mode=mode if mode is not None else Transitive())
        self._pinned[name] = replica
        return replica

    def prefetch(self, root: object, *, max_faults: int = 0) -> int:
        """Resolve pending proxy-outs reachable from ``root`` eagerly.

        Walks the local graph and demands every unresolved proxy-out it
        meets, repeating until none remain (or ``max_faults`` were
        resolved; 0 = unbounded).  Returns the number of faults resolved.
        """
        resolved = 0
        while True:
            pending = self._pending_proxies(root)
            if not pending:
                return resolved
            for proxy in pending:
                if max_faults and resolved >= max_faults:
                    return resolved
                self.site.resolve_fault(proxy)
                resolved += 1

    def _pending_proxies(self, root: object) -> list[ProxyOutBase]:
        pending: list[ProxyOutBase] = []
        seen: set[int] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, ProxyOutBase):
                if node._obi_resolved is None:
                    pending.append(node)
                else:
                    stack.append(node._obi_resolved)
                continue
            stack.extend(graphwalk.direct_references(node))
        return pending

    # ------------------------------------------------------------------
    # using the hoard
    # ------------------------------------------------------------------
    def get(self, name: str) -> object | None:
        """The pinned replica for ``name``, if hoarded."""
        return self._pinned.get(name)

    def unpin(self, name: str) -> None:
        self._pinned.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._pinned)

    def is_complete(self, name: str) -> bool:
        """True iff the hoarded graph has no unresolved faults left —
        i.e. it is safe to go offline and traverse all of it."""
        replica = self._pinned.get(name)
        if replica is None:
            return False
        return not self._pending_proxies(replica)

    def __contains__(self, name: str) -> bool:
        return name in self._pinned

    def __len__(self) -> int:
        return len(self._pinned)
