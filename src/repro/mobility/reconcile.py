"""Reconnection reconciliation.

While offline, a mobile site may have modified replicas whose masters may
themselves have moved on.  On reconnect, the :class:`Reconciler` compares
each tracked replica against its master and classifies it:

========== =============================== ============================
local      master                          action
========== =============================== ============================
clean      unchanged                       ``UP_TO_DATE`` (nothing)
clean      changed                         ``PULLED`` (refresh local)
dirty      unchanged                       ``PUSHED`` (put local state)
dirty      changed                         ``CONFLICT`` → resolver
========== =============================== ============================

Dirtiness is detected by comparing the replica's serialized state against
a baseline captured when the replica was last in sync — no write
interception needed, which keeps replicas plain objects (the property the
whole OBIWAN design leans on).
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.meta import is_obiwan, obi_id_of
from repro.core.proxy_out import ProxyOutBase
from repro.serial.encoder import Encoder
from repro.serial.swizzle import SwizzleDescriptor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site


class ReconcileAction(enum.Enum):
    UP_TO_DATE = "up-to-date"
    PUSHED = "pushed"
    PULLED = "pulled"
    CONFLICT = "conflict"


#: ``resolver(site, replica) -> ReconcileAction`` decides a conflict's fate;
#: it must return PUSHED or PULLED after acting.
ConflictResolver = Callable[["Site", object], ReconcileAction]


def keep_local(site: "Site", replica: object) -> ReconcileAction:
    """Resolver: the offline user's changes win; overwrite the master."""
    site.put_back(replica)
    return ReconcileAction.PUSHED


def keep_master(site: "Site", replica: object) -> ReconcileAction:
    """Resolver: the master wins; discard offline changes."""
    site.refresh(replica)
    return ReconcileAction.PULLED


@dataclass
class ReconcileReport:
    """What a reconciliation pass did."""

    actions: dict[str, ReconcileAction] = field(default_factory=dict)

    def count(self, action: ReconcileAction) -> int:
        return sum(1 for a in self.actions.values() if a is action)

    @property
    def conflicts(self) -> list[str]:
        return sorted(
            oid for oid, a in self.actions.items() if a is ReconcileAction.CONFLICT
        )

    def __repr__(self) -> str:
        parts = ", ".join(f"{a.value}={self.count(a)}" for a in ReconcileAction)
        return f"ReconcileReport({parts})"


class Reconciler:
    """Tracks baselines and reconciles on demand."""

    def __init__(self, site: "Site"):
        self.site = site
        self._baselines: dict[str, bytes] = {}
        site.events.subscribe("replica_registered", self._on_registered)
        site.events.subscribe("replica_refreshed", self._on_refreshed)

    # ------------------------------------------------------------------
    # baseline capture
    # ------------------------------------------------------------------
    def track(self, replica: object) -> object:
        """Record the replica's current state as its in-sync baseline."""
        self._baselines[obi_id_of(replica)] = self._fingerprint(replica)
        return replica

    def is_dirty(self, replica: object) -> bool:
        oid = obi_id_of(replica)
        baseline = self._baselines.get(oid)
        if baseline is None:
            return False  # never tracked → nothing to claim
        return self._fingerprint(replica) != baseline

    # ------------------------------------------------------------------
    # reconciliation
    # ------------------------------------------------------------------
    def reconcile(
        self, *, on_conflict: ConflictResolver | None = None
    ) -> ReconcileReport:
        """Run a full pass over tracked replicas (call when back online)."""
        report = ReconcileReport()
        for oid in sorted(self._baselines):
            record = self.site.replica_info(oid)
            if record is None or record.provider is None:
                continue  # evicted, or cluster member handled via its root
            replica = record.obj
            master_version = self.site.endpoint.invoke(record.provider, "get_version", ())
            master_moved = master_version != record.version
            dirty = self.is_dirty(replica)

            if not dirty and not master_moved:
                report.actions[oid] = ReconcileAction.UP_TO_DATE
            elif not dirty and master_moved:
                self.site.refresh(replica)
                self.track(replica)
                report.actions[oid] = ReconcileAction.PULLED
            elif dirty and not master_moved:
                record.version = self.site.put_back(replica)
                self.track(replica)
                report.actions[oid] = ReconcileAction.PUSHED
            else:
                if on_conflict is None:
                    report.actions[oid] = ReconcileAction.CONFLICT
                else:
                    report.actions[oid] = on_conflict(self.site, replica)
                    self.track(replica)
        return report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fingerprint(self, replica: object) -> bytes:
        """Deterministic encoding of the replica's state.

        OBIWAN references are flattened to their logical ids, so the
        fingerprint captures the replica's own state rather than its
        neighbours' — and taking it has no side effects.
        """
        return Encoder(self.site.registry, _FingerprintSwizzler()).encode(
            dict(vars(replica))
        )

    def _on_registered(self, *, site: "Site", root: object, package: object) -> None:
        # Every object that just arrived is by definition in sync.
        oid = obi_id_of(root) if hasattr(root, "__dict__") else None
        if oid is not None and site.replica_info(oid) is not None:
            self.track(root)

    def _on_refreshed(self, *, site: "Site", replica: object) -> None:
        self.track(replica)


class _FingerprintSwizzler:
    """Flattens OBIWAN references to their ids; purely observational."""

    def swizzle(self, value: object) -> SwizzleDescriptor | None:
        if isinstance(value, ProxyOutBase):
            return SwizzleDescriptor("fingerprint.ref", value._obi_target_id)
        if is_obiwan(value):
            return SwizzleDescriptor("fingerprint.ref", obi_id_of(value))
        return None

    def unswizzle(self, descriptor: SwizzleDescriptor) -> object:  # pragma: no cover
        raise NotImplementedError("fingerprints are never decoded")
