"""Connectivity management for a mobile site.

Disconnections are first-class and typed: *voluntary* ("due to a high
dollar cost") or *involuntary* ("due to a lack of network coverage").
The manager drives the network's connectivity map for its site and
publishes ``connectivity_changed`` events on the site bus so hoards,
reconcilers and applications can react.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site


class ConnectivityManager:
    """On/offline switch for one site."""

    def __init__(self, site: "Site"):
        self.site = site
        self._offline = False
        self._voluntary = False

    # ------------------------------------------------------------------
    # state changes
    # ------------------------------------------------------------------
    def go_offline(self, *, voluntary: bool = False) -> None:
        """Disconnect the site from the network (idempotent)."""
        self.site.endpoint.network.disconnect(self.site.name, voluntary=voluntary)
        self._offline = True
        self._voluntary = voluntary
        self.site.events.publish(
            "connectivity_changed", site=self.site, online=False, voluntary=voluntary
        )

    def go_online(self) -> None:
        """Reconnect the site (idempotent)."""
        self.site.endpoint.network.reconnect(self.site.name)
        self._offline = False
        self._voluntary = False
        self.site.events.publish(
            "connectivity_changed", site=self.site, online=True, voluntary=False
        )

    @contextmanager
    def offline(self, *, voluntary: bool = True):
        """``with connectivity.offline(): …`` — scoped disconnection."""
        self.go_offline(voluntary=voluntary)
        try:
            yield self
        finally:
            self.go_online()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def is_online(self) -> bool:
        return not self._offline

    @property
    def is_voluntary(self) -> bool:
        """True when offline by choice (e.g. saving connection cost)."""
        return self._offline and self._voluntary

    def __repr__(self) -> str:
        if self._offline:
            kind = "voluntary" if self._voluntary else "involuntary"
            return f"ConnectivityManager({self.site.name!r}, offline/{kind})"
        return f"ConnectivityManager({self.site.name!r}, online)"
