"""Baselines: adopt obilint on code with pre-existing findings.

A baseline records how many findings each ``(path, rule)`` pair had at
adoption time; later runs fail only on findings *beyond* that count.
Fingerprints deliberately exclude line numbers — edits above a finding
move it without making it new — so the contract is: you may keep the
debt you had, you may pay it down (the baseline is counts, so fixing one
finding never unmasks another), but you cannot add to it.

Workflow::

    python -m repro.analysis benchmarks tests --write-baseline .github/obilint-baseline.json
    # commit the baseline, then in CI:
    python -m repro.analysis benchmarks tests --baseline .github/obilint-baseline.json
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import AnalysisReport
from repro.analysis.findings import Finding

#: Bump on incompatible baseline-file changes.
BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    return f"{finding.path.replace(chr(92), '/')}::{finding.rule}"


def counts_of(findings: list[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        key = fingerprint(finding)
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(path: str | Path, report: AnalysisReport) -> int:
    """Record the report's findings as accepted debt; returns how many."""
    entries = counts_of(report.all_findings())
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return sum(entries.values())


def load_baseline(path: str | Path) -> dict[str, int]:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version!r}; "
            f"this obilint expects {BASELINE_VERSION} — regenerate with --write-baseline"
        )
    entries = payload.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"baseline {path} is malformed: 'entries' must be an object")
    return {str(key): int(value) for key, value in entries.items()}


def apply_baseline(report: AnalysisReport, baseline: dict[str, int]) -> AnalysisReport:
    """Split the report's findings into new ones and accepted debt.

    Returns a report whose ``findings`` are only the findings beyond the
    baseline's counts; the matched ones move to ``baselined``.  Parse
    failures are never baselined — a file that stops parsing is always
    new breakage.
    """
    remaining = dict(baseline)
    new: list[Finding] = []
    accepted: list[Finding] = []
    for finding in sorted(report.findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            accepted.append(finding)
        else:
            new.append(finding)
    return AnalysisReport(
        findings=new,
        suppressed=report.suppressed,
        files_analyzed=report.files_analyzed,
        parse_failures=report.parse_failures,
        baselined=accepted,
    )
