"""``python -m repro.analysis.wire`` — the obiwire CLI."""

import sys

from repro.analysis.wire.cli import main

sys.exit(main())
