"""The obiwire command line.

::

    obiwire spec src/repro --out wire-spec.json
    obiwire check src/repro --baseline .github/wire-baseline.json
    obiwire check src/repro --baseline .github/wire-baseline.json --update
    obiwire diff old-spec.json new-spec.json

Exit codes: 0 clean, 1 drift/breaking changes, 2 usage error — the same
convention as obilint, so CI treats both uniformly.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.analysis.engine import Analyzer, ModuleSource
from repro.analysis.wire.diff import diff_specs, has_breaking, render_diff
from repro.analysis.wire.extract import extract_modules
from repro.analysis.wire.spec import WireSpec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="obiwire",
        description="obiwire: wire-protocol contract extraction and compatibility checks",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    spec = commands.add_parser("spec", help="extract the wire spec from source")
    spec.add_argument("paths", nargs="+", help="files or directories to extract from")
    spec.add_argument("--out", metavar="FILE", help="write the spec here instead of stdout")
    spec.add_argument("--jobs", type=int, default=1, metavar="N", help="parse over N threads")

    diff = commands.add_parser("diff", help="compare two spec files for breaking changes")
    diff.add_argument("old", help="baseline spec JSON")
    diff.add_argument("new", help="candidate spec JSON")
    diff.add_argument("--format", choices=("text", "json"), default="text")

    check = commands.add_parser(
        "check", help="extract from source and compare against a committed baseline"
    )
    check.add_argument("paths", nargs="+", help="files or directories to extract from")
    check.add_argument(
        "--baseline",
        metavar="FILE",
        default=".github/wire-baseline.json",
        help="committed spec to compare against (default: .github/wire-baseline.json)",
    )
    check.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current source and exit 0",
    )
    check.add_argument("--jobs", type=int, default=1, metavar="N", help="parse over N threads")
    return parser


def _parse_modules(paths: list[str], jobs: int) -> tuple[list[ModuleSource], list[str]]:
    """Parse every collected file; returns (modules, parse-failure messages)."""
    files = Analyzer.collect_files(list(paths))

    def parse_one(path: Path) -> ModuleSource | str:
        try:
            return ModuleSource.parse(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            return f"{path}: cannot parse: {exc}"

    if jobs > 1 and len(files) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(parse_one, files))
    else:
        results = [parse_one(path) for path in files]
    modules = [r for r in results if isinstance(r, ModuleSource)]
    failures = [r for r in results if isinstance(r, str)]
    return modules, failures


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "jobs", 1) < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        if args.command == "spec":
            return _cmd_spec(args)
        if args.command == "diff":
            return _cmd_diff(args)
        return _cmd_check(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _extract(args) -> WireSpec | None:
    modules, failures = _parse_modules(args.paths, args.jobs)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    if failures:
        return None
    return extract_modules(modules)


def _cmd_spec(args) -> int:
    spec = _extract(args)
    if spec is None:
        return 2
    rendered = spec.to_json()
    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        print(
            f"obiwire: spec {spec.fingerprint()} "
            f"({len(spec.tags)} tags, {len(spec.classes)} classes, "
            f"{len(spec.verbs)} verbs) written to {args.out}"
        )
    else:
        print(rendered, end="")
    return 0


def _cmd_diff(args) -> int:
    try:
        old = WireSpec.load(args.old)
        new = WireSpec.load(args.new)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    changes = diff_specs(old, new)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "old_fingerprint": old.fingerprint(),
                    "new_fingerprint": new.fingerprint(),
                    "breaking": has_breaking(changes),
                    "changes": [c.to_json() for c in changes],
                },
                indent=2,
            )
        )
    else:
        print(render_diff(changes))
    return 1 if has_breaking(changes) else 0


def _cmd_check(args) -> int:
    spec = _extract(args)
    if spec is None:
        return 2
    baseline_path = Path(args.baseline)
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(spec.to_json(), encoding="utf-8")
        print(f"obiwire: baseline {spec.fingerprint()} written to {baseline_path}")
        return 0
    if not baseline_path.is_file():
        print(
            f"error: baseline not found: {baseline_path} "
            "(generate it with 'obiwire check --update')",
            file=sys.stderr,
        )
        return 2
    try:
        committed = WireSpec.load(baseline_path)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if committed.fingerprint() == spec.fingerprint():
        print(f"obiwire: wire spec matches baseline ({spec.fingerprint()})")
        return 0
    # Any drift — breaking or compatible — fails the check: the baseline
    # is part of the change being reviewed, so a PR that evolves the wire
    # must commit the refreshed spec alongside the code.
    changes = diff_specs(committed, spec)
    print(
        f"obiwire: wire spec drifted from baseline "
        f"({committed.fingerprint()} -> {spec.fingerprint()})"
    )
    print(render_diff(changes))
    print("run 'obiwire check --update' and commit the refreshed baseline")
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
