"""The canonical wire-protocol spec: model, JSON form, fingerprint.

A :class:`WireSpec` is the machine-readable contract two peer builds
must share to interoperate:

* ``tags`` — the tag-byte table (name → value);
* ``classes`` — every registered frame class, keyed by its *wire name*
  (the string both sides resolve), with its state shape: field names in
  wire order, which fields are an optional widened tail, and the
  attribute that guards each widened field's emission;
* ``verbs`` — every RMI verb the runtime issues as a literal, whether it
  belongs to the seed protocol every peer understands, and the fallback
  edges (capability probes, ``NeedFull`` downgrades) that let a newer
  peer talk to an older one.

The JSON form is canonical — keys sorted, compact separators — so the
``fingerprint`` (a crc32 over the canonical contract body, same choice
obicodec makes for schema hashes) is stable across machines and runs.
Field *order* inside a class is the wire order and is preserved, not
sorted: reordering fields is exactly the breaking change the spec
exists to catch.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

#: Bump on incompatible spec-file changes.
SPEC_VERSION = 1


@dataclass(frozen=True)
class WireField:
    """One positional slot of a class's wire state tuple."""

    name: str
    #: True for widened-tail fields: peers that predate the field never
    #: see it (the getter omits it) and ignore it on receipt (``*rest``).
    optional: bool = False
    #: The attribute whose truthiness gates emission of this optional
    #: field — ``None`` on an optional field is an OBI305 finding.
    guard: str | None = None

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "optional": self.optional}
        if self.guard is not None:
            out["guard"] = self.guard
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "WireField":
        return cls(
            name=str(raw["name"]),
            optional=bool(raw.get("optional", False)),
            guard=raw.get("guard"),
        )


@dataclass(frozen=True)
class WireClass:
    """One registered frame class, as the wire sees it."""

    cls: str  # Python class name
    module: str  # posix display path of the defining module
    #: "tuple" (positional state), "passthrough" (the state *is* one
    #: attribute), or "dict" (default reflective instance-dict state,
    #: keyed by field name — positional order does not matter).
    state: str = "tuple"
    #: Registered with custom get_state/set_state/factory hooks.
    custom_state: bool = False
    #: The setter tolerates shorter-than-full tuples (``*rest`` or
    #: ``len(state)`` branching) — the widened-tail compatibility idiom.
    optional_tail: bool = False
    fields: tuple[WireField, ...] = ()

    def to_dict(self) -> dict:
        return {
            "class": self.cls,
            "module": self.module,
            "state": self.state,
            "custom_state": self.custom_state,
            "optional_tail": self.optional_tail,
            "fields": [f.to_dict() for f in self.fields],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "WireClass":
        return cls(
            cls=str(raw["class"]),
            module=str(raw.get("module", "")),
            state=str(raw.get("state", "tuple")),
            custom_state=bool(raw.get("custom_state", False)),
            optional_tail=bool(raw.get("optional_tail", False)),
            fields=tuple(WireField.from_dict(f) for f in raw.get("fields", [])),
        )


@dataclass(frozen=True)
class WireVerb:
    """One RMI verb the runtime issues."""

    #: Part of the seed protocol (``SEED_WIRE_VERBS``) every peer build
    #: understands; non-seed verbs need a fallback edge.
    seed: bool = False
    #: Downgrade edges observed at the verb's call sites:
    #: ``probe:<capability>`` and/or ``need_full``.
    fallbacks: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"seed": self.seed, "fallbacks": list(self.fallbacks)}

    @classmethod
    def from_dict(cls, raw: dict) -> "WireVerb":
        return cls(
            seed=bool(raw.get("seed", False)),
            fallbacks=tuple(str(f) for f in raw.get("fallbacks", [])),
        )


@dataclass
class WireSpec:
    """The whole contract of one source tree."""

    tags: dict[str, int] = field(default_factory=dict)
    classes: dict[str, WireClass] = field(default_factory=dict)
    verbs: dict[str, WireVerb] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # canonical form
    # ------------------------------------------------------------------
    def contract_dict(self) -> dict:
        """The fingerprinted body: everything except version/fingerprint.

        The defining ``module`` is provenance, not contract — it names
        where a class lives in *this* tree, so it is excluded here to
        keep fingerprints identical across checkouts and path spellings.
        """
        classes: dict = {}
        for name in sorted(self.classes):
            entry = self.classes[name].to_dict()
            entry.pop("module", None)
            classes[name] = entry
        return {
            "tags": {name: value for name, value in sorted(self.tags.items())},
            "classes": classes,
            "verbs": {name: self.verbs[name].to_dict() for name in sorted(self.verbs)},
        }

    def fingerprint(self) -> str:
        canonical = json.dumps(
            self.contract_dict(), sort_keys=True, separators=(",", ":")
        )
        return f"{zlib.crc32(canonical.encode('utf-8')) & 0xFFFFFFFF:08x}"

    def to_dict(self) -> dict:
        # Unlike contract_dict(), the emitted file keeps each class's
        # defining module — useful to humans reading the spec, ignored
        # by the fingerprint and by diff.
        return {
            "version": SPEC_VERSION,
            "fingerprint": self.fingerprint(),
            "tags": {name: value for name, value in sorted(self.tags.items())},
            "classes": {
                name: self.classes[name].to_dict() for name in sorted(self.classes)
            },
            "verbs": {name: self.verbs[name].to_dict() for name in sorted(self.verbs)},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: dict) -> "WireSpec":
        version = raw.get("version")
        if version != SPEC_VERSION:
            raise ValueError(
                f"wire spec has version {version!r}; this obiwire expects "
                f"{SPEC_VERSION} — regenerate with 'obiwire spec'"
            )
        return cls(
            tags={str(k): int(v) for k, v in raw.get("tags", {}).items()},
            classes={
                str(k): WireClass.from_dict(v) for k, v in raw.get("classes", {}).items()
            },
            verbs={
                str(k): WireVerb.from_dict(v) for k, v in raw.get("verbs", {}).items()
            },
        )

    @classmethod
    def load(cls, path: str | Path) -> "WireSpec":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
