"""The wire rules: OBI301–OBI306.

All six run off the shared :class:`~repro.analysis.wire.extract.Extraction`
(cached per engine run, like the flow Project).  The per-module errors
among them are proofs — a duplicated tag byte *is* ambiguous, an
unconditionally-widened tuple *will* reach old peers — so they are
ERROR severity; the two that rest on interprocedural or cross-artifact
inference (OBI304, OBI306) are warnings, which still fail CI's
``--strict`` run.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterator
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.contract import UNSERIALIZABLE_FACTORIES
from repro.analysis.findings import Finding, ProjectRule, Severity
from repro.analysis.visitor import is_compiled_classdef, resolve_call_name
from repro.analysis.wire.extract import Extraction, RegisteredClass
from repro.analysis.wire.spec import WireSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource

#: Environment override for the committed baseline location (tests and
#: out-of-tree checkouts); without it the rule walks up from the first
#: analyzed file looking for the conventional path.
BASELINE_ENV = "OBIWIRE_BASELINE"
BASELINE_RELPATH = Path(".github") / "wire-baseline.json"

_BASELINE_CACHE_KEY = "wire-baseline-spec"


class _WireRule(ProjectRule):
    def check_project(
        self, modules: list["ModuleSource"], cache: dict
    ) -> Iterator[Finding]:
        return self.check_wire(Extraction.of(modules, cache), cache)

    def check_wire(self, extraction: Extraction, cache: dict) -> Iterator[Finding]:
        raise NotImplementedError


class TagCollisionRule(_WireRule):
    """OBI301: two wire tags share a byte value (or a name is reassigned)."""

    id = "OBI301"
    name = "tag-collision"
    severity = Severity.ERROR
    description = "a tag byte is assigned to two names in one tag table"
    rationale = (
        "The decoder dispatches on the first byte of every frame; two names "
        "sharing a value makes every frame of either kind ambiguous, and "
        "reassigning a name silently changes what deployed peers emit.  Tag "
        "values are append-only: new tags take the next free byte."
    )

    def check_wire(self, extraction: Extraction, cache: dict) -> Iterator[Finding]:
        for table in extraction.tag_tables:
            by_value: dict[int, str] = {}
            by_name: dict[str, int] = {}
            for assign in table.assigns:
                holder = by_value.get(assign.value)
                if holder is not None and holder != assign.name:
                    yield self.finding(
                        table.module,
                        assign.node,
                        f"tag {assign.name} = 0x{assign.value:02x} collides with "
                        f"{holder}; the decoder cannot tell the frames apart",
                    )
                else:
                    by_value[assign.value] = assign.name
                previous = by_name.get(assign.name)
                if previous is not None and previous != assign.value:
                    yield self.finding(
                        table.module,
                        assign.node,
                        f"tag {assign.name} reassigned from 0x{previous:02x} to "
                        f"0x{assign.value:02x}; deployed peers still use the old "
                        "value",
                    )
                by_name[assign.name] = assign.value


class WireBaselineDriftRule(_WireRule):
    """OBI302: a committed wire shape changed non-append-only."""

    id = "OBI302"
    name = "wire-baseline-drift"
    severity = Severity.ERROR
    description = "a tag value or committed field layout differs from the wire baseline"
    rationale = (
        "The committed .github/wire-baseline.json records the wire contract "
        "deployed peers were built against.  Changing a tag's value, "
        "reordering a registered class's state tuple, or hardening an "
        "optional field breaks every frame exchanged with those peers; "
        "append a guarded optional tail instead, then refresh the baseline "
        "with 'obiwire check --update'."
    )

    def check_wire(self, extraction: Extraction, cache: dict) -> Iterator[Finding]:
        baseline = _load_baseline(extraction, cache)
        if baseline is None:
            return
        for table in extraction.tag_tables:
            for assign in table.assigns:
                committed = baseline.tags.get(assign.name)
                if committed is not None and committed != assign.value:
                    yield self.finding(
                        table.module,
                        assign.node,
                        f"tag {assign.name} changed 0x{committed:02x} -> "
                        f"0x{assign.value:02x} vs the wire baseline; tag values "
                        "are append-only",
                    )
        for reg in extraction.classes:
            committed_cls = baseline.classes.get(reg.wire_name)
            if committed_cls is None:
                continue
            anchor = reg.getter if reg.getter is not None else reg.node
            if committed_cls.state != reg.state:
                yield self.finding(
                    reg.module,
                    anchor,
                    f"{reg.wire_name}: state shape went {committed_cls.state} -> "
                    f"{reg.state} vs the wire baseline",
                )
                continue
            old_names = [f.name for f in committed_cls.fields]
            new_names = [f.name for f in reg.fields]
            common_old = [n for n in old_names if n in new_names]
            common_new = [n for n in new_names if n in old_names]
            if common_old != common_new:
                yield self.finding(
                    reg.module,
                    anchor,
                    f"{reg.wire_name}: committed field order {common_old} became "
                    f"{common_new}; state tuples are positional, reordering "
                    "scrambles every deployed peer's decode",
                )
            old_by_name = {f.name: f for f in committed_cls.fields}
            for shape in reg.fields:
                committed_field = old_by_name.get(shape.name)
                if committed_field is None:
                    if not shape.optional:
                        yield self.finding(
                            reg.module,
                            shape.node,
                            f"{reg.wire_name}.{shape.name}: new required field vs "
                            "the wire baseline; old peers emit tuples without "
                            "it — append it as a guarded optional tail",
                        )
                elif committed_field.optional and not shape.optional:
                    yield self.finding(
                        reg.module,
                        shape.node,
                        f"{reg.wire_name}.{shape.name}: optional in the wire "
                        "baseline but now required; old peers omit it when unset",
                    )


class UnencodableWireFieldRule(_WireRule):
    """OBI303: a wire-visible field holds something the serializer rejects."""

    id = "OBI303"
    name = "unencodable-wire-field"
    severity = Severity.ERROR
    description = "a registered class carries a field no serializer can encode"
    rationale = (
        "A registered class's state crosses the wire; a lock, socket, thread "
        "or file handle in that state fails serialization at the first "
        "get/put that touches the instance — at runtime, on the hot path.  "
        "Keep process-local handles out of wire state (underscore fields "
        "are still wire-visible under reflective dict state)."
    )

    def check_wire(self, extraction: Extraction, cache: dict) -> Iterator[Finding]:
        for reg in extraction.classes:
            if reg.classdef is None:
                continue
            visible: set[str] | None
            if reg.state == "dict":
                visible = None  # every instance attribute travels
            else:
                visible = {f.name for f in reg.fields}
            yield from self._check_class(reg, visible)

    def _check_class(
        self, reg: RegisteredClass, visible: set[str] | None
    ) -> Iterator[Finding]:
        imports = reg.module.imports
        init = next(
            (
                stmt
                for stmt in reg.classdef.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        checked: list[tuple[str, ast.expr]] = []
        if init is not None:
            for node in ast.walk(init):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        checked.append((target.attr, value))
        for stmt in reg.classdef.body:
            # dataclass fields: ``x: Lock = field(default_factory=Lock)``.
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.value is not None:
                    checked.append((stmt.target.id, stmt.value))
        for attr, value in checked:
            if visible is not None and attr not in visible:
                continue
            reason = self._unencodable_reason(value, imports)
            if reason is not None:
                yield self.finding(
                    reg.module,
                    value,
                    f"{reg.wire_name}.{attr} is wire-visible but can never be "
                    f"serialized: {reason}",
                )

    @staticmethod
    def _unencodable_reason(value: ast.expr, imports: dict[str, str]) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        name = resolve_call_name(value.func, imports)
        if name in UNSERIALIZABLE_FACTORIES:
            return UNSERIALIZABLE_FACTORIES[name]
        # dataclasses.field(default_factory=threading.Lock)
        if name is not None and name.rsplit(".", 1)[-1] == "field":
            for keyword in value.keywords:
                if keyword.arg == "default_factory":
                    factory = resolve_call_name(keyword.value, imports)
                    if factory in UNSERIALIZABLE_FACTORIES:
                        return UNSERIALIZABLE_FACTORIES[factory]
        return None


class VerbWithoutFallbackRule(_WireRule):
    """OBI304: a non-seed verb is issued with no downgrade path in sight."""

    id = "OBI304"
    name = "verb-without-fallback"
    severity = Severity.WARNING
    description = "a negotiated RMI verb is invoked without a probe or NeedFull fallback"
    rationale = (
        "Verbs outside the seed protocol (put_delta, get_delta, ...) only "
        "exist on upgraded peers.  Issuing one without wrapping it in "
        "negotiation.probe() or checking the NeedFull downgrade reply turns "
        "a mixed-version deployment into a hard RPC failure instead of a "
        "graceful fall-back to the full-state path."
    )

    def check_wire(self, extraction: Extraction, cache: dict) -> Iterator[Finding]:
        for site in extraction.verb_sites:
            if site.seed or site.fallbacks:
                continue
            yield self.finding(
                site.func.module,
                site.node,
                f'"{site.verb}" is not a seed-protocol verb and '
                f"{site.func.qualname}() gives it no fallback: wrap the invoke "
                "in negotiation.probe() or handle a NeedFull reply",
            )


class UnguardedWidenedTupleRule(_WireRule):
    """OBI305: a widened state field is emitted unconditionally."""

    id = "OBI305"
    name = "unguarded-widened-tuple"
    severity = Severity.ERROR
    description = "an optional state-tuple field is emitted without a set-guard"
    rationale = (
        "The widened-tail idiom only keeps old peers working because the "
        "getter emits the extra fields *only when set* (ReplicationMode "
        "returns a 3-tuple until prefetch/codec are non-zero).  A getter "
        "that always emits the wide tuple ships bytes every pre-widening "
        "peer must ignore — and frames stop being byte-identical across "
        "versions, which the negotiation layer relies on."
    )

    def check_wire(self, extraction: Extraction, cache: dict) -> Iterator[Finding]:
        for reg in extraction.classes:
            if reg.state != "tuple" or not reg.optional_tail:
                continue
            for shape in reg.fields:
                if shape.optional and shape.guard is None:
                    yield self.finding(
                        reg.module,
                        shape.node,
                        f"{reg.wire_name}.{shape.name} is a widened optional "
                        "field but the getter emits it unconditionally; gate "
                        f"it on the attribute being set (if <obj>.{shape.name}: "
                        "return the wide tuple)",
                    )


class SchemaInputDriftRule(_WireRule):
    """OBI306: a compiled class's schema reads a field the instance may lack."""

    id = "OBI306"
    name = "schema-input-drift"
    severity = Severity.WARNING
    description = "a compiled class assigns a schema-visible field only conditionally"
    rationale = (
        "obicodec derives the wire schema by walking every self.X "
        "assignment in __init__ — including ones inside if/for/try blocks.  "
        "An instance that skipped the branch has no such attribute, so the "
        "compiled encoder and the reflective path disagree about the "
        "state's shape: the schema hash covers a field half the instances "
        "lack.  Assign every schema field unconditionally (a sentinel "
        "default), then narrow inside the branch."
    )

    def check_wire(self, extraction: Extraction, cache: dict) -> Iterator[Finding]:
        for module in extraction.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and is_compiled_classdef(node):
                    yield from self._check_class(module, node)

    def _check_class(
        self, module: "ModuleSource", classdef: ast.ClassDef
    ) -> Iterator[Finding]:
        init = next(
            (
                stmt
                for stmt in classdef.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        unconditional: set[str] = set()
        for stmt in init.body:
            for attr, _value, _node in _self_assigns(stmt, recurse=False):
                unconditional.add(attr)
        for stmt in init.body:
            if not isinstance(stmt, ast.If | ast.For | ast.While | ast.Try):
                continue
            for attr, value, assign_node in _self_assigns(stmt, recurse=True):
                if attr in unconditional or attr.startswith("_"):
                    continue
                if _is_scalar_value(value):
                    yield self.finding(
                        module,
                        assign_node,
                        f"{classdef.name}.{attr} enters the compiled wire "
                        "schema (derive_schema walks the whole __init__) but "
                        "is only assigned on one branch; instances that skip "
                        "it break the schema-hash contract — assign a default "
                        "unconditionally first",
                    )


def _self_assigns(stmt: ast.stmt, *, recurse: bool):
    """``(attr, value, node)`` for ``self.X = ...`` under ``stmt``."""
    nodes = ast.walk(stmt) if recurse else [stmt]
    for node in nodes:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, value, node


def _is_scalar_value(value: ast.expr) -> bool:
    """Would this assignment give the field a scalar schema kind?"""
    if isinstance(value, ast.Constant):
        return isinstance(value.value, int | float | bool | str | bytes)
    if isinstance(value, ast.UnaryOp) and isinstance(value.operand, ast.Constant):
        return isinstance(value.operand.value, int | float)
    return False


# ----------------------------------------------------------------------
def _load_baseline(extraction: Extraction, cache: dict) -> WireSpec | None:
    """The committed wire baseline, or None when there is none to honor."""
    if _BASELINE_CACHE_KEY in cache:
        return cache[_BASELINE_CACHE_KEY]
    spec: WireSpec | None = None
    path = _baseline_path(extraction)
    if path is not None:
        try:
            spec = WireSpec.load(path)
        except (OSError, ValueError):
            spec = None
    cache[_BASELINE_CACHE_KEY] = spec
    return spec


def _baseline_path(extraction: Extraction) -> Path | None:
    override = os.environ.get(BASELINE_ENV)
    if override:
        return Path(override)
    if not extraction.modules:
        return None
    try:
        anchor = extraction.modules[0].path.resolve()
    except OSError:  # pragma: no cover - unreadable cwd
        return None
    for parent in anchor.parents:
        candidate = parent / BASELINE_RELPATH
        if candidate.is_file():
            return candidate
    return None
