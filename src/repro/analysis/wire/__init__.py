"""obiwire: static wire-protocol contract extraction and analysis.

The wire contract of an OBIWAN deployment is scattered across four
surfaces: the tag table (:mod:`repro.serial.tags`), the registered frame
classes (:mod:`repro.core.packages`, :mod:`repro.rmi.protocol`, …), the
conditionally-widened state tuples (``ReplicationMode``,
``InvokeRequest``), and the RMI verbs the runtime actually issues.  A
change to any of them is a *deployment* event — every peer build must
agree — yet nothing in the codebase said so until now.

This package extracts all four into one canonical, fingerprinted spec
(:mod:`~repro.analysis.wire.spec`), diffs two specs for breaking changes
(:mod:`~repro.analysis.wire.diff`), and enforces evolution rules
OBI301–OBI306 through the ordinary obilint engine
(:mod:`~repro.analysis.wire.rules`).  The ``obiwire`` CLI
(:mod:`~repro.analysis.wire.cli`) generates the spec, compares it
against the committed ``.github/wire-baseline.json``, and reports
breaking changes between any two spec files.
"""

from repro.analysis.wire.diff import Change, diff_specs, render_diff
from repro.analysis.wire.extract import Extraction, extract_modules, spec_of
from repro.analysis.wire.spec import WireClass, WireField, WireSpec, WireVerb

__all__ = [
    "Change",
    "Extraction",
    "WireClass",
    "WireField",
    "WireSpec",
    "WireVerb",
    "diff_specs",
    "extract_modules",
    "render_diff",
    "spec_of",
]
