"""Whole-program extraction of the wire contract.

Four passes over the parsed modules, all purely syntactic (no imports of
the analyzed code, so the extractor works on fixtures and broken trees
alike):

* **tag tables** — modules that look like :mod:`repro.serial.tags`
  (named ``tags.py`` or defining several canonical tag names) contribute
  their ``UPPER = int`` assignments;
* **registrations** — ``global_registry.register(Cls, name="wire.Name",
  get_state=..., ...)`` calls, both the direct form and the
  loop-over-pairs idiom ``for _cls, _name in ((A, "a"), ...):``;
* **state shapes** — for each registered class, the getter
  (``__getstate__`` or the ``get_state=`` function) yields the field
  list in wire order; the *longest* tuple return is the full shape, the
  setter's unpacking (``*rest`` / ``len(state)`` branching) decides how
  many fields are required, and an ``if base.F`` test anywhere in the
  getter records ``F`` as its own emission guard — the only-widen-when-
  set discipline ``ReplicationMode`` and ``InvokeRequest`` follow;
* **verbs** — every literal RMI verb the flow layer sees
  (:func:`repro.analysis.flow.protocol.verb_events_of`), with its
  fallback edges: the invoke sits inside a
  :func:`repro.core.negotiation.probe` call (``probe:<capability>``)
  and/or the enclosing function checks ``isinstance(x, NeedFull)``
  (``need_full``).

The located intermediate (:class:`Extraction`) feeds rules OBI301–306;
:func:`spec_of` collapses it into the canonical :class:`WireSpec`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.contract import SEED_WIRE_VERBS
from repro.analysis.flow.protocol import verb_events_of
from repro.analysis.flow.symbols import FunctionInfo, SymbolTable
from repro.analysis.visitor import dotted_name
from repro.analysis.wire.spec import WireClass, WireField, WireSpec, WireVerb

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource

#: Names whose presence marks a module as a tag table even if it is not
#: literally called ``tags.py`` (fixtures, vendored copies).
_CANONICAL_TAG_NAMES = frozenset(
    {"NONE", "FALSE", "TRUE", "INT", "FLOAT", "STR", "BYTES", "LIST", "TUPLE", "DICT", "OBJECT"}
)
_TAG_MODULE_THRESHOLD = 3

#: Engine cache key (same sharing discipline as the flow Project).
_CACHE_KEY = "wire-extraction"


# ----------------------------------------------------------------------
# located intermediates
# ----------------------------------------------------------------------
@dataclass
class TagAssign:
    name: str
    value: int
    node: ast.Assign


@dataclass
class TagTable:
    module: "ModuleSource"
    assigns: list[TagAssign]


@dataclass
class FieldShape:
    name: str
    optional: bool
    guard: str | None
    node: ast.AST  # the tuple element introducing the field


@dataclass
class RegisteredClass:
    wire_name: str
    class_name: str
    module: "ModuleSource"
    node: ast.Call  # the register(...) call
    classdef: ast.ClassDef | None
    state: str  # "tuple" | "passthrough" | "dict"
    custom_state: bool
    optional_tail: bool
    fields: list[FieldShape] = field(default_factory=list)
    getter: ast.FunctionDef | None = None
    setter: ast.FunctionDef | None = None


@dataclass
class VerbSite:
    verb: str
    func: FunctionInfo
    node: ast.AST
    fallbacks: frozenset[str]

    @property
    def seed(self) -> bool:
        return self.verb in SEED_WIRE_VERBS


@dataclass
class Extraction:
    """Everything the wire passes found, with source locations."""

    modules: list["ModuleSource"]
    tag_tables: list[TagTable]
    classes: list[RegisteredClass]
    verb_sites: list[VerbSite]

    @classmethod
    def build(
        cls, modules: list["ModuleSource"], symtab: SymbolTable | None = None
    ) -> "Extraction":
        if symtab is None:
            symtab = SymbolTable.build(modules)
        tables = [t for m in modules if (t := _tag_table_of(m)) is not None]
        registered: list[RegisteredClass] = []
        for module in modules:
            registered.extend(_registrations_of(module))
        sites = _verb_sites_of(symtab)
        return cls(
            modules=modules, tag_tables=tables, classes=registered, verb_sites=sites
        )

    @classmethod
    def of(cls, modules: list["ModuleSource"], cache: dict) -> "Extraction":
        """The per-run shared instance (see ``ProjectRule``'s cache)."""
        extraction = cache.get(_CACHE_KEY)
        if extraction is None or extraction.modules is not modules:
            # Share the symbol table with the flow rules when possible.
            from repro.analysis.flow.project import Project

            extraction = cls.build(modules, Project.of(modules, cache).symtab)
            cache[_CACHE_KEY] = extraction
        return extraction


# ----------------------------------------------------------------------
# tags
# ----------------------------------------------------------------------
def _tag_table_of(module: "ModuleSource") -> TagTable | None:
    assigns: list[TagAssign] = []
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id.isupper()
            and isinstance(stmt.value, ast.Constant)
            and type(stmt.value.value) is int
        ):
            assigns.append(TagAssign(stmt.targets[0].id, stmt.value.value, stmt))
    if not assigns:
        return None
    stem = module.display_path.replace("\\", "/").rsplit("/", 1)[-1]
    names = {a.name for a in assigns}
    if stem != "tags.py" and len(names & _CANONICAL_TAG_NAMES) < _TAG_MODULE_THRESHOLD:
        return None
    return TagTable(module=module, assigns=assigns)


# ----------------------------------------------------------------------
# registrations
# ----------------------------------------------------------------------
def _is_register_call(node: ast.AST) -> bool:
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    if node.func.attr != "register":
        return False
    base = dotted_name(node.func.value)
    return base is not None and "registry" in base.rsplit(".", 1)[-1].lower()


def _loop_pairs(
    loop: ast.For, cls_var: str, name_var: str
) -> list[tuple[str, str]]:
    """``for _cls, _name in ((A, "a"), (B, "b")):`` → [("A","a"), ...]."""
    if not isinstance(loop.target, ast.Tuple):
        return []
    targets = [t.id for t in loop.target.elts if isinstance(t, ast.Name)]
    if cls_var not in targets or name_var not in targets:
        return []
    cls_at, name_at = targets.index(cls_var), targets.index(name_var)
    if not isinstance(loop.iter, ast.Tuple | ast.List):
        return []
    pairs: list[tuple[str, str]] = []
    for elt in loop.iter.elts:
        if not (isinstance(elt, ast.Tuple) and len(elt.elts) == len(targets)):
            continue
        cls_elt, name_elt = elt.elts[cls_at], elt.elts[name_at]
        if (
            isinstance(cls_elt, ast.Name)
            and isinstance(name_elt, ast.Constant)
            and isinstance(name_elt.value, str)
        ):
            pairs.append((cls_elt.id, name_elt.value))
    return pairs


def _registrations_of(module: "ModuleSource") -> list[RegisteredClass]:
    loops = [n for n in ast.walk(module.tree) if isinstance(n, ast.For)]
    classdefs = {
        n.name: n for n in module.tree.body if isinstance(n, ast.ClassDef)
    }
    functions = {
        n.name: n for n in module.tree.body if isinstance(n, ast.FunctionDef)
    }
    out: list[RegisteredClass] = []
    for call in ast.walk(module.tree):
        if not _is_register_call(call) or not call.args:
            continue
        arg0 = call.args[0]
        if not isinstance(arg0, ast.Name):
            continue
        keywords = {kw.arg: kw.value for kw in call.keywords if kw.arg}
        name_kw = keywords.get("name")
        custom_state = bool(
            {"get_state", "set_state", "factory"} & keywords.keys()
        )
        getter_name = (
            keywords["get_state"].id
            if isinstance(keywords.get("get_state"), ast.Name)
            else None
        )
        setter_name = (
            keywords["set_state"].id
            if isinstance(keywords.get("set_state"), ast.Name)
            else None
        )
        if isinstance(name_kw, ast.Constant) and isinstance(name_kw.value, str):
            pairs = [(arg0.id, name_kw.value)]
        elif isinstance(name_kw, ast.Name):
            loop = next(
                (l for l in loops if any(n is call for n in ast.walk(l))), None
            )
            pairs = _loop_pairs(loop, arg0.id, name_kw.id) if loop is not None else []
        else:
            # No literal wire name — a dynamic registration (porting,
            # decorator helpers) outside the static contract.
            continue
        for class_name, wire_name in pairs:
            classdef = classdefs.get(class_name)
            shape = _state_shape(module, classdef, functions, getter_name, setter_name)
            out.append(
                RegisteredClass(
                    wire_name=wire_name,
                    class_name=class_name,
                    module=module,
                    node=call,
                    classdef=classdef,
                    state=shape.state,
                    custom_state=custom_state,
                    optional_tail=shape.optional_tail,
                    fields=shape.fields,
                    getter=shape.getter,
                    setter=shape.setter,
                )
            )
    return out


# ----------------------------------------------------------------------
# state shapes
# ----------------------------------------------------------------------
@dataclass
class _Shape:
    state: str
    optional_tail: bool
    fields: list[FieldShape]
    getter: ast.FunctionDef | None
    setter: ast.FunctionDef | None


def _method(classdef: ast.ClassDef | None, name: str) -> ast.FunctionDef | None:
    if classdef is None:
        return None
    for stmt in classdef.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _state_shape(
    module: "ModuleSource",
    classdef: ast.ClassDef | None,
    functions: dict[str, ast.FunctionDef],
    getter_name: str | None,
    setter_name: str | None,
) -> _Shape:
    getter = (
        functions.get(getter_name)
        if getter_name is not None
        else _method(classdef, "__getstate__")
    )
    setter = (
        functions.get(setter_name)
        if setter_name is not None
        else _method(classdef, "__setstate__")
    )
    if getter is None:
        # Default reflective state: the instance dict, keyed by name.
        return _Shape("dict", False, [], None, setter)
    base = _first_param(getter)
    returns = [
        r for r in ast.walk(getter) if isinstance(r, ast.Return) and r.value is not None
    ]
    tuple_returns = [r for r in returns if isinstance(r.value, ast.Tuple)]
    if not tuple_returns:
        if not returns:
            return _Shape("dict", False, [], getter, setter)
        value = returns[0].value
        name = _field_name(value, base)
        return _Shape(
            "passthrough",
            False,
            [FieldShape(name=name, optional=False, guard=None, node=value)],
            getter,
            setter,
        )
    longest = max(tuple_returns, key=lambda r: len(r.value.elts))
    elts = longest.value.elts
    names = [_field_name(elt, base) for elt in elts]
    required, optional_tail = _setter_shape(setter, fallback=min(
        len(r.value.elts) for r in tuple_returns
    ))
    required = min(required, len(names))
    guarded = _guard_attrs(getter, base)
    fields = [
        FieldShape(
            name=name,
            optional=index >= required,
            guard=name if (index >= required and name in guarded) else None,
            node=elts[index],
        )
        for index, name in enumerate(names)
    ]
    return _Shape("tuple", optional_tail, fields, getter, setter)


def _first_param(func: ast.FunctionDef) -> str:
    args = func.args
    ordered = [*args.posonlyargs, *args.args]
    return ordered[0].arg if ordered else "self"


def _field_name(node: ast.expr, base: str) -> str:
    """The attribute a state-tuple element carries."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == base
    ):
        return node.attr
    if isinstance(node, ast.Call) and len(node.args) == 1:
        # ``list(iface.methods)`` — a converted attribute.
        return _field_name(node.args[0], base)
    if isinstance(node, ast.Name):
        return node.id
    return ast.unparse(node)


def _setter_shape(setter: ast.FunctionDef | None, *, fallback: int) -> tuple[int, bool]:
    """(required field count, tolerates-short-tuples) from the setter.

    ``a, b, c, *rest = state`` → (3, True); branches on ``len(state)``
    with 4- and 5-name unpacks → (4, True); a plain n-name unpack →
    (n, False).  Without a setter, the narrowest getter return decides.
    """
    if setter is None:
        return fallback, False
    lengths: set[int] = set()
    star_required: int | None = None
    for node in ast.walk(setter):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Tuple):
            continue
        star_at = next(
            (i for i, elt in enumerate(target.elts) if isinstance(elt, ast.Starred)),
            None,
        )
        if star_at is not None:
            star_required = (
                star_at if star_required is None else min(star_required, star_at)
            )
        else:
            lengths.add(len(target.elts))
    if star_required is not None:
        return star_required, True
    if not lengths:
        return fallback, False
    if len(lengths) > 1:
        return min(lengths), True
    return lengths.pop(), False


def _guard_attrs(getter: ast.FunctionDef, base: str) -> set[str]:
    """Attributes of ``base`` referenced by any If test in the getter.

    Both widening disciplines land here: ``if mode.codec: return
    <wide>`` and ``if self.trace is None: return <narrow>``.
    """
    out: set[str] = set()
    for node in ast.walk(getter):
        if not isinstance(node, ast.If):
            continue
        for ref in ast.walk(node.test):
            if (
                isinstance(ref, ast.Attribute)
                and isinstance(ref.value, ast.Name)
                and ref.value.id == base
            ):
                out.add(ref.attr)
    return out


# ----------------------------------------------------------------------
# verbs
# ----------------------------------------------------------------------
def _callee_tail(node: ast.expr) -> str | None:
    name = dotted_name(node)
    return name.rsplit(".", 1)[-1] if name is not None else None


def _capability_name(node: ast.expr) -> str:
    """``DELTA_SYNC`` / ``negotiation.COMPILED_CODEC`` → lower-cased name."""
    tail = _callee_tail(node)
    if tail is not None:
        return tail.lower()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return ast.unparse(node)


def _checks_need_full(func_node: ast.AST) -> bool:
    for node in ast.walk(func_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
            and _callee_tail(node.args[1]) == "NeedFull"
        ):
            return True
    return False


def _verb_sites_of(symtab: SymbolTable) -> list[VerbSite]:
    sites: list[VerbSite] = []
    for func in symtab.functions:
        events = verb_events_of(func)
        if not events:
            continue
        probes = [
            node
            for node in ast.walk(func.node)
            if isinstance(node, ast.Call)
            and _callee_tail(node.func) == "probe"
            and len(node.args) >= 3
        ]
        need_full = _checks_need_full(func.node)
        for event in events:
            fallbacks: set[str] = set()
            for probe_call in probes:
                if any(n is event.node for n in ast.walk(probe_call)):
                    fallbacks.add(f"probe:{_capability_name(probe_call.args[2])}")
            if need_full:
                fallbacks.add("need_full")
            sites.append(
                VerbSite(
                    verb=event.verb,
                    func=func,
                    node=event.node,
                    fallbacks=frozenset(fallbacks),
                )
            )
    return sites


# ----------------------------------------------------------------------
# spec assembly
# ----------------------------------------------------------------------
def spec_of(extraction: Extraction) -> WireSpec:
    """Collapse a located extraction into the canonical spec."""
    tags: dict[str, int] = {}
    for table in extraction.tag_tables:
        for assign in table.assigns:
            tags.setdefault(assign.name, assign.value)
    classes: dict[str, WireClass] = {}
    for reg in extraction.classes:
        classes.setdefault(
            reg.wire_name,
            WireClass(
                cls=reg.class_name,
                module=reg.module.display_path.replace("\\", "/"),
                state=reg.state,
                custom_state=reg.custom_state,
                optional_tail=reg.optional_tail,
                fields=tuple(
                    WireField(name=f.name, optional=f.optional, guard=f.guard)
                    for f in reg.fields
                ),
            ),
        )
    verbs: dict[str, WireVerb] = {}
    merged: dict[str, set[str]] = {}
    for site in extraction.verb_sites:
        merged.setdefault(site.verb, set()).update(site.fallbacks)
    for verb, fallbacks in merged.items():
        verbs[verb] = WireVerb(
            seed=verb in SEED_WIRE_VERBS, fallbacks=tuple(sorted(fallbacks))
        )
    return WireSpec(tags=tags, classes=classes, verbs=verbs)


def extract_modules(modules: list["ModuleSource"]) -> WireSpec:
    """One-shot: parsed modules → canonical spec (CLI entry point)."""
    return spec_of(Extraction.build(modules))
