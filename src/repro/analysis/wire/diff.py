"""Breaking-change analysis between two wire specs.

The evolution rules (docs/WIRE.md) boil down to: the wire surface is
append-only.  Tags keep their values forever; a class's committed field
prefix keeps its order; new fields join as a *guarded optional tail*;
verbs are never removed while any peer may still issue them, and new
verbs ship with a fallback edge.  ``diff_specs`` classifies every
difference between OLD and NEW against those rules — ``breaking`` means
a mixed-version deployment can misparse a frame or dead-end an RPC;
``compatible`` is the blessed evolution path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.wire.spec import WireSpec

BREAKING = "breaking"
COMPATIBLE = "compatible"


@dataclass(frozen=True)
class Change:
    kind: str  # BREAKING | COMPATIBLE
    category: str  # e.g. "tag-value-changed"
    entity: str  # the tag / wire name / verb
    detail: str

    def format(self) -> str:
        return f"[{self.kind}] {self.category}: {self.entity} — {self.detail}"

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "category": self.category,
            "entity": self.entity,
            "detail": self.detail,
        }


def diff_specs(old: WireSpec, new: WireSpec) -> list[Change]:
    changes: list[Change] = []
    changes.extend(_diff_tags(old, new))
    changes.extend(_diff_classes(old, new))
    changes.extend(_diff_verbs(old, new))
    return changes


def has_breaking(changes: list[Change]) -> bool:
    return any(change.kind == BREAKING for change in changes)


def render_diff(changes: list[Change]) -> str:
    if not changes:
        return "wire specs are identical"
    lines = [change.format() for change in changes]
    breaking = sum(1 for c in changes if c.kind == BREAKING)
    lines.append(
        f"{len(changes)} change(s), {breaking} breaking"
        if breaking
        else f"{len(changes)} compatible change(s)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
def _diff_tags(old: WireSpec, new: WireSpec) -> list[Change]:
    changes: list[Change] = []
    for name in sorted(old.tags):
        if name not in new.tags:
            changes.append(
                Change(
                    BREAKING,
                    "tag-removed",
                    name,
                    f"tag 0x{old.tags[name]:02x} no longer exists; old peers "
                    "still emit it",
                )
            )
        elif new.tags[name] != old.tags[name]:
            changes.append(
                Change(
                    BREAKING,
                    "tag-value-changed",
                    name,
                    f"0x{old.tags[name]:02x} -> 0x{new.tags[name]:02x}; every "
                    "deployed decoder keyed on the old byte",
                )
            )
    for name in sorted(new.tags):
        if name not in old.tags:
            changes.append(
                Change(
                    COMPATIBLE,
                    "tag-added",
                    name,
                    f"new tag 0x{new.tags[name]:02x}; emit it only to peers "
                    "that negotiated it",
                )
            )
    return changes


def _diff_classes(old: WireSpec, new: WireSpec) -> list[Change]:
    changes: list[Change] = []
    for wire_name in sorted(old.classes):
        if wire_name not in new.classes:
            changes.append(
                Change(
                    BREAKING,
                    "class-removed",
                    wire_name,
                    "frames with this wire name no longer resolve",
                )
            )
            continue
        changes.extend(_diff_one_class(wire_name, old, new))
    for wire_name in sorted(new.classes):
        if wire_name not in old.classes:
            changes.append(
                Change(
                    COMPATIBLE,
                    "class-added",
                    wire_name,
                    "new frame type; send it only on negotiated paths",
                )
            )
    return changes


def _diff_one_class(wire_name: str, old: WireSpec, new: WireSpec) -> list[Change]:
    changes: list[Change] = []
    before, after = old.classes[wire_name], new.classes[wire_name]
    if before.state != after.state:
        changes.append(
            Change(
                BREAKING,
                "state-kind-changed",
                wire_name,
                f"state shape went {before.state} -> {after.state}; old "
                "decoders unpack the other representation",
            )
        )
        return changes
    old_names = [f.name for f in before.fields]
    new_names = [f.name for f in after.fields]
    removed = [n for n in old_names if n not in new_names]
    for name in removed:
        changes.append(
            Change(
                BREAKING,
                "field-removed",
                f"{wire_name}.{name}",
                "positional decoders shift every later field",
            )
        )
    common_old = [n for n in old_names if n in new_names]
    common_new = [n for n in new_names if n in old_names]
    if common_old != common_new:
        changes.append(
            Change(
                BREAKING,
                "field-reordered",
                wire_name,
                f"committed order {common_old} became {common_new}; state "
                "tuples are positional",
            )
        )
    old_by_name = {f.name: f for f in before.fields}
    for f in after.fields:
        if f.name not in old_by_name:
            if f.optional:
                changes.append(
                    Change(
                        COMPATIBLE,
                        "optional-field-added",
                        f"{wire_name}.{f.name}",
                        "widened tail; old peers unpack it into *rest",
                    )
                )
            else:
                changes.append(
                    Change(
                        BREAKING,
                        "required-field-added",
                        f"{wire_name}.{f.name}",
                        "old peers emit tuples without it; append as a "
                        "guarded optional tail instead",
                    )
                )
        elif old_by_name[f.name].optional and not f.optional:
            changes.append(
                Change(
                    BREAKING,
                    "field-now-required",
                    f"{wire_name}.{f.name}",
                    "old peers omit it when unset",
                )
            )
    return changes


def _diff_verbs(old: WireSpec, new: WireSpec) -> list[Change]:
    changes: list[Change] = []
    for verb in sorted(old.verbs):
        if verb not in new.verbs:
            changes.append(
                Change(
                    BREAKING,
                    "verb-removed",
                    verb,
                    "peers running the old build still issue it",
                )
            )
    for verb in sorted(new.verbs):
        if verb not in old.verbs:
            entry = new.verbs[verb]
            if entry.seed or entry.fallbacks:
                detail = (
                    "seed verb"
                    if entry.seed
                    else f"fallbacks: {', '.join(entry.fallbacks)}"
                )
                changes.append(
                    Change(COMPATIBLE, "verb-added", verb, detail)
                )
            else:
                changes.append(
                    Change(
                        BREAKING,
                        "verb-without-fallback",
                        verb,
                        "new verb with no probe or NeedFull downgrade path "
                        "(see OBI304)",
                    )
                )
    return changes
