"""Rendering analysis reports: human text and machine JSON."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisReport
from repro.analysis.findings import Rule

#: Schema version of the JSON report; bump on incompatible changes.
JSON_SCHEMA_VERSION = 1


def render_text(report: AnalysisReport, *, strict: bool = False, verbose: bool = False) -> str:
    lines = [finding.format() for finding in report.all_findings()]
    if verbose and report.suppressed:
        for finding in sorted(report.suppressed, key=lambda f: (f.path, f.line)):
            lines.append(f"{finding.format()} [suppressed]")
    counts = report.counts()
    summary = (
        f"obilint: {report.files_analyzed} files, "
        f"{counts['error']} errors, {counts['warning']} warnings, "
        f"{len(report.suppressed)} suppressed"
    )
    if report.failed(strict=strict):
        summary += " — FAIL"
    else:
        summary += " — OK"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport, *, strict: bool = False) -> str:
    counts = report.counts()
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_analyzed": report.files_analyzed,
        "strict": strict,
        "failed": report.failed(strict=strict),
        "summary": {
            "errors": counts["error"],
            "warnings": counts["warning"],
            "suppressed": len(report.suppressed),
        },
        "findings": [finding.to_json() for finding in report.all_findings()],
        "suppressed": [finding.to_json() for finding in report.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog(rules: list[Rule]) -> str:
    lines = []
    for rule in rules:
        lines.append(f"{rule.id}  {rule.name}  [{rule.severity}]")
        lines.append(f"    {rule.description}")
        if rule.rationale:
            lines.append(f"    why: {rule.rationale}")
    return "\n".join(lines)
