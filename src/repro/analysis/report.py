"""Rendering analysis reports: human text, machine JSON, and SARIF."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisReport
from repro.analysis.findings import Finding, Rule

#: Schema version of the JSON report; bump on incompatible changes.
JSON_SCHEMA_VERSION = 1

#: The SARIF spec version the renderer targets.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(report: AnalysisReport, *, strict: bool = False, verbose: bool = False) -> str:
    lines = [finding.format() for finding in report.all_findings()]
    if verbose and report.baselined:
        for finding in sorted(report.baselined, key=lambda f: (f.path, f.line)):
            lines.append(f"{finding.format()} [baselined]")
    if verbose and report.suppressed:
        for finding in sorted(report.suppressed, key=lambda f: (f.path, f.line)):
            lines.append(f"{finding.format()} [suppressed]")
    counts = report.counts()
    summary = (
        f"obilint: {report.files_analyzed} files, "
        f"{counts['error']} errors, {counts['warning']} warnings, "
        f"{len(report.suppressed)} suppressed"
    )
    if report.baselined:
        summary += f", {len(report.baselined)} baselined"
    if report.failed(strict=strict):
        summary += " — FAIL"
    else:
        summary += " — OK"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport, *, strict: bool = False) -> str:
    counts = report.counts()
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_analyzed": report.files_analyzed,
        "strict": strict,
        "failed": report.failed(strict=strict),
        "summary": {
            "errors": counts["error"],
            "warnings": counts["warning"],
            "suppressed": len(report.suppressed),
        },
        "findings": [finding.to_json() for finding in report.all_findings()],
        "suppressed": [finding.to_json() for finding in report.suppressed],
        "baselined": [finding.to_json() for finding in report.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(
    report: AnalysisReport, rules: list[Rule], *, strict: bool = False
) -> str:
    """SARIF 2.1.0, the interchange format code-scanning UIs ingest.

    One run, one ``tool.driver`` carrying the whole rule catalog, one
    ``result`` per finding.  Baselined findings are included with
    ``baselineState: "unchanged"`` so viewers can fold them; new findings
    carry ``baselineState: "new"`` only when a baseline was applied.
    """
    catalog = [
        {
            "id": rule.id,
            "name": _sarif_rule_name(rule.name),
            "shortDescription": {"text": rule.description or rule.name},
            "fullDescription": {"text": rule.rationale or rule.description or rule.name},
            "defaultConfiguration": {"level": str(rule.severity)},
        }
        for rule in rules
    ]
    results = [
        _sarif_result(finding, baseline_state="new" if report.baselined else None)
        for finding in report.all_findings()
    ]
    results.extend(
        _sarif_result(finding, baseline_state="unchanged")
        for finding in sorted(report.baselined, key=lambda f: (f.path, f.line))
    )
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "obilint",
                        "informationUri": "https://example.invalid/obilint",
                        "rules": catalog,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_result(finding: Finding, *, baseline_state: str | None) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": str(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    return result


def _sarif_rule_name(name: str) -> str:
    """SARIF wants PascalCase rule names: ``lock-order-cycle`` → ``LockOrderCycle``."""
    return "".join(part.capitalize() for part in name.split("-"))


def render_rule_catalog(rules: list[Rule]) -> str:
    lines = []
    for rule in rules:
        lines.append(f"{rule.id}  {rule.name}  [{rule.severity}]")
        lines.append(f"    {rule.description}")
        if rule.rationale:
            lines.append(f"    why: {rule.rationale}")
    return "\n".join(lines)
