"""The obilint engine: file collection, parsing, rule running.

The engine is deliberately simple — parse each module once, hand the
parsed :class:`ModuleSource` to every selected rule, filter the findings
through the module's suppression comments, and collate a report.  All
policy (which severities fail the run) lives in the report so the CLI
and CI can share it.

With ``jobs > 1`` the per-file unit (parse + module rules) fans out over
a thread pool; results are collated in input order, so the report is
byte-identical to a serial run.  Module rules hold no mutable state
during :meth:`~repro.analysis.findings.Rule.check` (configuration is
frozen in ``__init__``), which is what makes sharing the catalog across
workers sound.  Project rules need every module at once and stay serial.
"""

from __future__ import annotations

import ast
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, ProjectRule, Rule, Severity
from repro.analysis.suppressions import SuppressionIndex, parse_suppressions
from repro.analysis.visitor import import_map

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hg", ".venv", "node_modules"})


@dataclass
class ModuleSource:
    """One parsed module, as rules see it."""

    path: Path
    display_path: str
    text: str
    tree: ast.Module
    suppressions: SuppressionIndex
    imports: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, *, display_path: str | None = None) -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            display_path=display_path if display_path is not None else str(path),
            text=text,
            tree=tree,
            suppressions=parse_suppressions(text),
            imports=import_map(tree),
        )


@dataclass
class AnalysisReport:
    """Everything one run produced."""

    findings: list[Finding]
    suppressed: list[Finding]
    files_analyzed: int
    parse_failures: list[Finding]
    #: Findings matched by a ``--baseline`` file: accepted debt.  They
    #: are reported but never fail the run (see repro.analysis.baseline).
    baselined: list[Finding] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        counts = {"error": 0, "warning": 0}
        for finding in self.findings:
            counts[str(finding.severity)] += 1
        counts["error"] += len(self.parse_failures)
        return counts

    def failed(self, *, strict: bool = False) -> bool:
        counts = self.counts()
        if counts["error"]:
            return True
        return strict and counts["warning"] > 0

    def all_findings(self) -> list[Finding]:
        ordered = self.parse_failures + self.findings
        return sorted(ordered, key=lambda f: (f.path, f.line, f.col, f.rule))


class Analyzer:
    """Runs a rule catalog over a set of paths."""

    def __init__(
        self,
        rules: list[Rule],
        *,
        select: set[str] | None = None,
        ignore: set[str] | None = None,
        strict: bool = False,
        jobs: int = 1,
    ):
        chosen = rules
        if select:
            keys = {k.upper() if k.upper().startswith("OBI") else k.lower() for k in select}
            chosen = [r for r in chosen if r.id in keys or r.name in keys]
        if ignore:
            keys = {k.upper() if k.upper().startswith("OBI") else k.lower() for k in ignore}
            chosen = [r for r in chosen if r.id not in keys and r.name not in keys]
        self.rules = chosen
        self.strict = strict
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    # ------------------------------------------------------------------
    # file collection
    # ------------------------------------------------------------------
    @staticmethod
    def collect_files(paths: list[str | Path]) -> list[Path]:
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                for candidate in sorted(path.rglob("*.py")):
                    if not _SKIP_DIRS & set(candidate.parts):
                        files.append(candidate)
            elif path.is_file():
                files.append(path)
            else:
                raise FileNotFoundError(f"no such file or directory: {path}")
        # De-duplicate while preserving order (overlapping path arguments).
        seen: set[Path] = set()
        unique = []
        for path in files:
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                unique.append(path)
        return unique

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, paths: list[str | Path]) -> AnalysisReport:
        files = self.collect_files(paths)
        findings: list[Finding] = []
        suppressed: list[Finding] = []
        parse_failures: list[Finding] = []
        modules: list[ModuleSource] = []
        module_rules = [r for r in self.rules if not isinstance(r, ProjectRule)]
        project_rules = [r for r in self.rules if isinstance(r, ProjectRule)]
        if self.jobs > 1 and len(files) > 1:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                # pool.map preserves input order, so collation below is
                # deterministic no matter how the workers interleave.
                results = list(
                    pool.map(lambda path: self._analyze_file(path, module_rules), files)
                )
        else:
            results = [self._analyze_file(path, module_rules) for path in files]
        for module, failure, file_findings, file_suppressed in results:
            if failure is not None:
                parse_failures.append(failure)
                continue
            modules.append(module)
            findings.extend(file_findings)
            suppressed.extend(file_suppressed)
        if project_rules and modules:
            by_path = {module.display_path: module for module in modules}
            cache: dict = {}
            for rule in project_rules:
                for finding in rule.check_project(modules, cache):
                    owner = by_path.get(finding.path)
                    if owner is not None and owner.suppressions.matches(
                        finding.rule, finding.name, finding.line
                    ):
                        suppressed.append(finding)
                    else:
                        findings.append(finding)
        report = AnalysisReport(
            findings=findings,
            suppressed=suppressed,
            files_analyzed=len(files),
            parse_failures=parse_failures,
        )
        return report

    def _analyze_file(
        self, path: Path, module_rules: list[Rule]
    ) -> tuple[ModuleSource | None, Finding | None, list[Finding], list[Finding]]:
        """The per-file unit a ``--jobs`` worker runs: parse + module rules."""
        try:
            module = ModuleSource.parse(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            failure = Finding(
                rule="OBI001",
                name="parse-error",
                severity=Severity.ERROR,
                path=str(path),
                line=line,
                col=1,
                message=f"cannot parse: {exc.msg if isinstance(exc, SyntaxError) else exc}",
            )
            return None, failure, [], []
        findings: list[Finding] = []
        suppressed: list[Finding] = []
        for rule in module_rules:
            for finding in rule.check(module):
                if module.suppressions.matches(finding.rule, finding.name, finding.line):
                    suppressed.append(finding)
                else:
                    findings.append(finding)
        if self.strict:
            findings.extend(self._bare_suppressions(module))
        return module, None, findings, suppressed

    @staticmethod
    def _bare_suppressions(module: ModuleSource) -> list[Finding]:
        """In strict mode a suppression must say *why* (after ``--``)."""
        out = []
        for suppression in module.suppressions.all():
            if not suppression.justification:
                out.append(
                    Finding(
                        rule="OBI002",
                        name="bare-suppression",
                        severity=Severity.ERROR,
                        path=module.display_path,
                        line=suppression.line,
                        col=1,
                        message=(
                            "suppression without justification; append "
                            "'-- <reason>' explaining why the hazard is acceptable"
                        ),
                    )
                )
        return out


def analyze_paths(
    paths: list[str | Path],
    *,
    rules: list[Rule] | None = None,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    strict: bool = False,
    jobs: int = 1,
) -> AnalysisReport:
    """Convenience wrapper: run the default catalog over ``paths``."""
    from repro.analysis.rules import build_rules

    analyzer = Analyzer(
        rules if rules is not None else build_rules(),
        select=select,
        ignore=ignore,
        strict=strict,
        jobs=jobs,
    )
    return analyzer.run(paths)
