"""Findings, severities, and the rule base class."""

from __future__ import annotations

import ast
import enum
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the run; ``WARNING`` findings fail only under
    ``--strict`` (the CI configuration).
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # e.g. "OBI101"
    name: str  # e.g. "unserializable-state"
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.severity}: {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class for obilint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one parsed module.  Rules must be pure functions
    of the module source: no filesystem access, no global state — the
    engine may run them in any order.
    """

    id: str = "OBI000"
    name: str = "abstract-rule"
    severity: Severity = Severity.ERROR
    description: str = ""
    rationale: str = ""

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: "ModuleSource",
        node: ast.AST,
        message: str,
        *,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=self.id,
            name=self.name,
            severity=severity if severity is not None else self.severity,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Where a :class:`Rule` sees one module at a time, a project rule runs
    once per analysis with *every* parsed module, so it can follow calls
    across file boundaries (lock-order graphs, protocol state machines).
    The ``cache`` dict is shared by all project rules of one run — rules
    use it to share expensive artifacts (the symbol table, the call
    graph) without global state leaking between runs.
    """

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        # Project rules run through check_project; the per-module pass
        # skips them.
        return iter(())

    def check_project(
        self, modules: list["ModuleSource"], cache: dict
    ) -> Iterator[Finding]:
        raise NotImplementedError
