"""Lock analysis: per-function summaries, the lock-order graph, and
interprocedural blocking-call propagation.

Every function gets one :class:`FunctionSummary` from a single walk that
tracks the set of locks held at each point (the same discipline as the
intra-module OBI104 walk, but recording events instead of judging them):

* **acquires** — each ``with <lock>:`` entry, with the locks already
  held there;
* **calls** — each call site, with the locks held around it;
* **blocking** — calls that can park the thread (network sends, socket
  reads/accepts, ``Event.wait``, ``time.sleep``);
* **accesses** — ``self.<attr>`` reads and writes, with held locks (the
  guarded-state analysis consumes these).

:class:`LockAnalysis` then propagates across the call graph:

* ``may_entry_held`` — locks that *may* be held when a function starts
  (union over call sites), feeding the lock-order graph and the
  blocking-under-lock check;
* ``must_entry_held`` — locks *provably* held on every analyzed call
  path into a private function (intersection; public functions get the
  empty set — anything may call them), feeding guarded-state inference;
* ``blocking_chain`` — for each function, a witness call chain to a
  blocking operation, if one is reachable.

Lock identity is class-qualified (``Site._lock``) or module-qualified
(``tcp.REGISTRY_LOCK``): the analyses reason about lock *roles*, not
instances.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.contract import NETWORK_SEND_METHODS
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.symbols import (
    FunctionInfo,
    SymbolTable,
    _is_lock_factory_call,
    _looks_lock_like,
)
from repro.analysis.visitor import dotted_name, resolve_call_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource

#: Attribute names whose call can park the calling thread.
BLOCKING_ATTRS: frozenset[str] = NETWORK_SEND_METHODS | frozenset(
    {"recv", "recv_into", "accept", "connect", "wait", "wait_for"}
)

#: Fully-qualified callables that block.
BLOCKING_DOTTED: frozenset[str] = frozenset(
    {"time.sleep", "socket.create_connection"}
)

#: Container-mutating method names (writes for guarded-state purposes).
MUTATING_METHODS: frozenset[str] = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "add", "discard", "appendleft", "popleft",
        "sort", "reverse",
    }
)


@dataclass
class Acquire:
    lock: str
    held: tuple[str, ...]
    node: ast.AST
    #: The acquire's stripe key is a loop variable of an ascending
    #: ``for k in range(...)`` / ``for k in sorted(...)`` — multi-stripe
    #: acquisition in index order (see OBI208).
    ordered: bool = False


@dataclass
class LocalCall:
    node: ast.Call
    held: tuple[str, ...]


@dataclass
class Blocking:
    node: ast.AST
    what: str
    held: tuple[str, ...]


@dataclass
class Access:
    attr: str
    kind: str  # "read" | "write"
    node: ast.AST
    held: tuple[str, ...]
    #: Canonical subscript key for ``self.attr[key]`` accesses — the
    #: stripe-key expression OBI207 matches against held family locks.
    subscript_key: str | None = None


@dataclass
class FunctionSummary:
    func: FunctionInfo
    acquires: list[Acquire] = field(default_factory=list)
    calls: list[LocalCall] = field(default_factory=list)
    blocking: list[Blocking] = field(default_factory=list)
    accesses: list[Access] = field(default_factory=list)
    #: Variable → (group, rank) from ``lo, hi = sorted((i, j))`` unpacks:
    #: within one group, a smaller rank is provably ≤ a larger one, so
    #: acquiring family locks in rank order ascends by stripe index.
    sorted_ranks: dict[str, tuple[int, int]] = field(default_factory=dict)


# ----------------------------------------------------------------------
# per-function walk
# ----------------------------------------------------------------------
class _Walker:
    def __init__(self, symtab: SymbolTable, func: FunctionInfo):
        self.symtab = symtab
        self.func = func
        self.module = func.module
        self.summary = FunctionSummary(func=func)
        self.self_name = _self_arg(func)
        self.module_locks = _module_lock_names(symtab, func.module)
        #: Attribute/subscript nodes already folded into a composite
        #: access (a mutator call, subscript store, or augmented
        #: assignment) — the plain branches must not report them again.
        self._claimed: set[int] = set()
        #: Loop variables of ascending ``for k in range/sorted(...)``
        #: loops currently in scope — acquires keyed by them are ordered.
        self._ordered_vars: set[str] = set()
        self._sorted_groups = 0

    def walk(self) -> FunctionSummary:
        self._visit_block(self.func.node, ())
        return self.summary

    def _visit_block(self, node: ast.AST, held: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda):
                continue  # runs later, outside these locks
            if isinstance(child, ast.With | ast.AsyncWith):
                acquired = []
                for item in child.items:
                    lock = self.lock_id(item.context_expr)
                    if lock is not None:
                        self.summary.acquires.append(
                            Acquire(
                                lock=lock,
                                held=held,
                                node=child,
                                ordered=self._is_ordered_acquire(item.context_expr),
                            )
                        )
                        acquired.append(lock)
                    else:
                        self._visit_expr(item.context_expr, held)
                self._visit_block(child, held + tuple(acquired))
                continue
            if isinstance(child, ast.For):
                saved = set(self._ordered_vars)
                if _is_ascending_loop(child):
                    self._ordered_vars.add(child.target.id)
                self._visit_block(child, held)
                self._ordered_vars = saved
                continue
            self._visit_expr(child, held)
            self._visit_block(child, held)

    def _visit_expr(self, node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, ast.Call):
            self.summary.calls.append(LocalCall(node=node, held=held))
            what = self._blocking_kind(node)
            if what is not None:
                self.summary.blocking.append(Blocking(node=node, what=what, held=held))
            self._record_mutator_call(node, held)
        elif isinstance(node, ast.Attribute):
            attr = self._self_attr(node)
            if attr is not None and id(node) not in self._claimed:
                kind = "write" if isinstance(node.ctx, ast.Store | ast.Del) else "read"
                self.summary.accesses.append(
                    Access(attr=attr, kind=kind, node=node, held=held)
                )
        elif isinstance(node, ast.Subscript):
            if id(node) in self._claimed:
                return
            # self.x[k] = v parses as Subscript(Store) over Attribute(Load);
            # self.x[i][k] = v nests a second Subscript — there the *inner*
            # index picks the stripe, so that key is the one recorded.
            if isinstance(node.ctx, ast.Store | ast.Del):
                attr = self._self_attr(node.value)
                if attr is not None:
                    self._claimed.add(id(node.value))
                    self.summary.accesses.append(
                        Access(
                            attr=attr,
                            kind="write",
                            node=node,
                            held=held,
                            subscript_key=self._canon_key(node.slice),
                        )
                    )
                    return
                inner = node.value
                if isinstance(inner, ast.Subscript):
                    attr = self._self_attr(inner.value)
                    if attr is not None:
                        self._claimed.add(id(inner))
                        self._claimed.add(id(inner.value))
                        self.summary.accesses.append(
                            Access(
                                attr=attr,
                                kind="write",
                                node=node,
                                held=held,
                                subscript_key=self._canon_key(inner.slice),
                            )
                        )
                return
            attr = self._self_attr(node.value)
            if attr is not None:
                self._claimed.add(id(node.value))
                self.summary.accesses.append(
                    Access(
                        attr=attr,
                        kind="read",
                        node=node,
                        held=held,
                        subscript_key=self._canon_key(node.slice),
                    )
                )
        elif isinstance(node, ast.AugAssign):
            attr = self._self_attr(node.target)
            if attr is not None:
                self._claimed.add(id(node.target))
                self.summary.accesses.append(
                    Access(attr=attr, kind="write", node=node, held=held)
                )
        elif isinstance(node, ast.Assign):
            self._record_sorted_unpack(node)

    def _record_mutator_call(self, node: ast.Call, held: tuple[str, ...]) -> None:
        """``self.x.append(...)`` and friends are writes to ``self.x`` —
        including the striped form ``self.x[i].setdefault(...)``."""
        func_expr = node.func
        if not isinstance(func_expr, ast.Attribute):
            return
        if func_expr.attr not in MUTATING_METHODS:
            return
        receiver = func_expr.value
        attr = self._self_attr(receiver)
        if attr is not None:
            self._claimed.add(id(receiver))
            self.summary.accesses.append(
                Access(attr=attr, kind="write", node=node, held=held)
            )
            return
        if isinstance(receiver, ast.Subscript):
            attr = self._self_attr(receiver.value)
            if attr is not None:
                self._claimed.add(id(receiver))
                self._claimed.add(id(receiver.value))
                self.summary.accesses.append(
                    Access(
                        attr=attr,
                        kind="write",
                        node=node,
                        held=held,
                        subscript_key=self._canon_key(receiver.slice),
                    )
                )

    def _record_sorted_unpack(self, node: ast.Assign) -> None:
        """``lo, hi = sorted((i, j))`` proves ``lo <= hi`` — record ranks."""
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Tuple):
            return
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "sorted"
        ):
            return
        elts = node.targets[0].elts
        if not all(isinstance(elt, ast.Name) for elt in elts):
            return
        group = self._sorted_groups
        self._sorted_groups += 1
        for rank, elt in enumerate(elts):
            self.summary.sorted_ranks[elt.id] = (group, rank)

    def _is_ordered_acquire(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.slice, ast.Name)
            and expr.slice.id in self._ordered_vars
        )

    def _self_attr(self, node: ast.AST) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and self.self_name is not None
            and node.value.id == self.self_name
        ):
            return node.attr
        return None

    def _blocking_kind(self, node: ast.Call) -> str | None:
        func_expr = node.func
        if isinstance(func_expr, ast.Attribute) and func_expr.attr in BLOCKING_ATTRS:
            return f".{func_expr.attr}()"
        resolved = resolve_call_name(func_expr, self.module.imports)
        if resolved in BLOCKING_DOTTED:
            return f"{resolved}()"
        return None

    # ------------------------------------------------------------------
    def lock_id(self, expr: ast.expr) -> str | None:
        """Class- or module-qualified identity of a lock expression.

        ``self._stripe_locks[idx]`` — one member of a lock *family* —
        gets a key-qualified identity ``Cls._stripe_locks[idx]``.  Keys
        are canonical source text (frame-local): two acquisitions match
        only when their key expressions read the same, which is why
        helpers taking a stripe index should call the parameter ``idx``
        like their callers do.
        """
        if isinstance(expr, ast.Subscript):
            return self._family_lock_id(expr)
        name = dotted_name(expr)
        if name is None:
            return None
        parts = name.split(".")
        tail = parts[-1]
        # self._lock / self.sub._lock
        if self.self_name is not None and parts[0] == self.self_name:
            owner = self.func.class_name
            if len(parts) == 2 and owner is not None:
                for cls in self.symtab.class_named(owner):
                    if tail in cls.lock_attrs:
                        return f"{owner}.{tail}"
                if _looks_lock_like(tail):
                    return f"{owner}.{tail}"
                return None
            if len(parts) == 3 and owner is not None:
                for cls in self.symtab.class_named(owner):
                    mid_type = cls.attr_types.get(parts[1])
                    if mid_type is not None:
                        for mid_cls in self.symtab.class_named(mid_type):
                            if tail in mid_cls.lock_attrs:
                                return f"{mid_type}.{tail}"
                if _looks_lock_like(tail):
                    return f"?{self.func.qualname}.{name}"
                return None
        # module-level lock
        if len(parts) == 1:
            if tail in self.module_locks:
                return f"{_module_stem(self.module)}.{tail}"
            if _looks_lock_like(tail):
                return f"?{_module_stem(self.module)}.{tail}"
            return None
        # imported module-global: mod.LOCK
        resolved = resolve_call_name(expr, self.module.imports)
        if resolved is not None and _looks_lock_like(resolved.rsplit(".", 1)[-1]):
            return resolved
        if _looks_lock_like(tail):
            return f"?{self.func.qualname}.{name}"
        return None

    def _family_lock_id(self, expr: ast.Subscript) -> str | None:
        """``self.<family>[key]`` → ``Cls.<family>[<canonical key>]``."""
        attr = self._self_attr(expr.value)
        owner = self.func.class_name
        if attr is None or owner is None:
            return None
        key = self._canon_key(expr.slice)
        for cls in self.symtab.class_named(owner):
            if attr in cls.lock_families:
                return f"{owner}.{attr}[{key}]"
        if _looks_lock_like(attr):
            return f"{owner}.{attr}[{key}]"
        return None

    def _canon_key(self, slice_expr: ast.expr) -> str:
        """Canonical source text of a subscript key.

        The only normalization is the self parameter's name — so a
        method using ``s`` instead of ``self`` still produces keys that
        match across methods.  Everything else is textual: key matching
        is deliberately frame-local.
        """
        key = ast.unparse(slice_expr)
        if self.self_name is not None and self.self_name != "self":
            key = re.sub(rf"\b{re.escape(self.self_name)}\b", "self", key)
        return key


def _is_ascending_loop(node: ast.For) -> bool:
    """``for k in range(...)`` / ``for k in sorted(...)`` — k ascends."""
    return (
        isinstance(node.target, ast.Name)
        and isinstance(node.iter, ast.Call)
        and isinstance(node.iter.func, ast.Name)
        and node.iter.func.id in {"range", "sorted"}
    )


def _self_arg(func: FunctionInfo) -> str | None:
    if func.class_name is None:
        return None
    args = func.node.args
    ordered = [*args.posonlyargs, *args.args]
    return ordered[0].arg if ordered else None


_MODULE_LOCKS_CACHE_KEY = "flow-module-locks"


def _module_lock_names(symtab: SymbolTable, module: "ModuleSource") -> set[str]:
    cache: dict[str, set[str]] = getattr(symtab, "_module_lock_cache", None) or {}
    if not hasattr(symtab, "_module_lock_cache"):
        symtab._module_lock_cache = cache  # type: ignore[attr-defined]
    names = cache.get(module.display_path)
    if names is None:
        names = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and _is_lock_factory_call(
                node.value, module.imports
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        cache[module.display_path] = names
    return names


def _module_stem(module: "ModuleSource") -> str:
    path = module.display_path.replace("\\", "/")
    stem = path.rsplit("/", 1)[-1]
    return stem[:-3] if stem.endswith(".py") else stem


# ----------------------------------------------------------------------
# interprocedural propagation
# ----------------------------------------------------------------------
@dataclass
class OrderEdge:
    """``held`` was held while ``acquired`` was taken at ``node``."""

    held: str
    acquired: str
    func: FunctionInfo
    node: ast.AST


class LockAnalysis:
    """Summaries plus the three propagated facts (see module docstring)."""

    def __init__(self, symtab: SymbolTable, graph: CallGraph):
        self.symtab = symtab
        self.graph = graph
        self.summaries: dict[tuple[str, str], FunctionSummary] = {}
        for func in symtab.functions:
            self.summaries[func.key] = _Walker(symtab, func).walk()
        self.may_entry_held: dict[tuple[str, str], frozenset[str]] = {}
        self.must_entry_held: dict[tuple[str, str], frozenset[str]] = {}
        self.blocking_chain: dict[tuple[str, str], tuple[str, ...] | None] = {}
        self._propagate_may()
        self._propagate_must()
        self._propagate_blocking()

    # ------------------------------------------------------------------
    def _held_at_site(self, site_func: FunctionInfo, held: tuple[str, ...]) -> frozenset[str]:
        return self.may_entry_held.get(site_func.key, frozenset()) | frozenset(held)

    def _propagate_may(self) -> None:
        for func in self.symtab.functions:
            self.may_entry_held[func.key] = frozenset()
        changed = True
        while changed:
            changed = False
            for func in self.symtab.functions:
                summary = self.summaries[func.key]
                base = self.may_entry_held[func.key]
                for site in self.graph.sites_of(func):
                    local = next(
                        (c.held for c in summary.calls if c.node is site.node), ()
                    )
                    outgoing = base | frozenset(local)
                    if not outgoing:
                        continue
                    for callee in site.callees:
                        current = self.may_entry_held.get(callee.key, frozenset())
                        merged = current | outgoing
                        if merged != current:
                            self.may_entry_held[callee.key] = merged
                            changed = True

    def _propagate_must(self) -> None:
        universe = frozenset(
            acquire.lock
            for summary in self.summaries.values()
            for acquire in summary.acquires
        )
        # Public functions (and functions without analyzed callers) can be
        # entered from anywhere: nothing is provably held.
        must: dict[tuple[str, str], frozenset[str]] = {}
        for func in self.symtab.functions:
            callers = self.graph.callers_of(func)
            if not callers or not func.is_private:
                must[func.key] = frozenset()
            else:
                must[func.key] = universe
        changed = True
        while changed:
            changed = False
            for func in self.symtab.functions:
                callers = self.graph.callers_of(func)
                if not callers or not func.is_private:
                    continue
                incoming: frozenset[str] | None = None
                for site in callers:
                    caller_summary = self.summaries.get(site.caller.key)
                    local: tuple[str, ...] = ()
                    if caller_summary is not None:
                        local = next(
                            (c.held for c in caller_summary.calls if c.node is site.node),
                            (),
                        )
                    context = must.get(site.caller.key, frozenset()) | frozenset(local)
                    incoming = context if incoming is None else (incoming & context)
                new = incoming if incoming is not None else frozenset()
                if new != must[func.key]:
                    must[func.key] = new
                    changed = True
        self.must_entry_held = must

    def _propagate_blocking(self) -> None:
        chain: dict[tuple[str, str], tuple[str, ...] | None] = {}
        for func in self.symtab.functions:
            summary = self.summaries[func.key]
            direct = summary.blocking[0] if summary.blocking else None
            chain[func.key] = (
                (func.qualname, direct.what) if direct is not None else None
            )
        changed = True
        while changed:
            changed = False
            for func in self.symtab.functions:
                if chain[func.key] is not None:
                    continue
                for site in self.graph.sites_of(func):
                    for callee in site.callees:
                        callee_chain = chain.get(callee.key)
                        if callee_chain is not None:
                            chain[func.key] = (func.qualname, *callee_chain)
                            changed = True
                            break
                    if chain[func.key] is not None:
                        break
        self.blocking_chain = chain

    # ------------------------------------------------------------------
    # consumers
    # ------------------------------------------------------------------
    def order_edges(self) -> list[OrderEdge]:
        """Every (held → acquired) pair, with interprocedural context."""
        edges: list[OrderEdge] = []
        for func in self.symtab.functions:
            summary = self.summaries[func.key]
            entry = self.may_entry_held.get(func.key, frozenset())
            for acquire in summary.acquires:
                context = entry | frozenset(acquire.held)
                for held in sorted(context):
                    if held != acquire.lock:
                        edges.append(
                            OrderEdge(
                                held=held,
                                acquired=acquire.lock,
                                func=func,
                                node=acquire.node,
                            )
                        )
        return edges

    def effective_held(self, func: FunctionInfo, held: tuple[str, ...]) -> frozenset[str]:
        """Locks provably held at a point: local ``with`` nesting plus the
        must-entry context (private functions only)."""
        return frozenset(held) | self.must_entry_held.get(func.key, frozenset())
