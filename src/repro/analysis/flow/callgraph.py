"""Call graph over the project symbol table.

Resolution is deliberately conservative — an edge the analyzer cannot
justify is worse than a missing one, because held-lock sets propagate
along edges.  A call resolves when one of these applies, tried in order:

* ``name(...)`` — a function defined in the same module, or one imported
  from a project module (matched through the import map against the
  project's dotted module names);
* ``ClassName(...)`` — the project class's ``__init__``;
* ``self.m(...)`` — method ``m`` on the enclosing class (or a project
  base class), plus project subclass overrides (virtual dispatch);
* ``super().m(...)`` — ``m`` on the project base classes;
* ``recv.m(...)`` where the receiver's class is known — from an
  annotated parameter, a local ``x = ClassName(...)`` assignment, or an
  inferred ``self.attr`` type — again with subclass overrides;
* **unique-name fallback**: ``recv.m(...)`` with an unknown receiver
  resolves only if exactly one project class defines ``m`` and the name
  is not a common builtin-container verb (``get``, ``append``, …).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.flow.symbols import (
    FunctionInfo,
    SymbolTable,
    parameter_types,
)
from repro.analysis.visitor import dotted_name, resolve_call_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource

#: Method names too generic for unique-name dispatch — they collide with
#: builtin container/str methods, so a lone project definition proves
#: nothing about an unknown receiver.
AMBIGUOUS_METHOD_NAMES = frozenset(
    {
        "get", "put", "set", "add", "pop", "clear", "update", "append",
        "close", "send", "read", "write", "items", "keys", "values",
        "copy", "next", "run", "start", "join", "wait", "acquire",
        "release", "encode", "decode", "format", "count", "index",
        "sort", "reverse", "extend", "insert", "remove", "discard",
        "setdefault", "popitem", "split", "strip", "lower", "upper",
        "match", "search", "replace", "open",
    }
)


@dataclass
class CallSite:
    """One resolved call: where it happens and what it may reach."""

    caller: FunctionInfo
    node: ast.Call
    callees: tuple[FunctionInfo, ...]


@dataclass
class CallGraph:
    """Call sites per function, plus the reverse (caller) index."""

    symtab: SymbolTable
    sites: dict[tuple[str, str], list[CallSite]] = field(default_factory=dict)
    callers: dict[tuple[str, str], list[CallSite]] = field(default_factory=dict)

    @classmethod
    def build(cls, symtab: SymbolTable) -> "CallGraph":
        graph = cls(symtab=symtab)
        for func in symtab.functions:
            resolver = _Resolver(symtab, func)
            own_sites: list[CallSite] = []
            for node in _own_calls(func.node):
                callees = resolver.resolve(node)
                if callees:
                    site = CallSite(caller=func, node=node, callees=tuple(callees))
                    own_sites.append(site)
                    for callee in callees:
                        graph.callers.setdefault(callee.key, []).append(site)
            graph.sites[func.key] = own_sites
        return graph

    def sites_of(self, func: FunctionInfo) -> list[CallSite]:
        return self.sites.get(func.key, [])

    def callers_of(self, func: FunctionInfo) -> list[CallSite]:
        return self.callers.get(func.key, [])

    def resolve_call(self, func: FunctionInfo, node: ast.Call) -> tuple[FunctionInfo, ...]:
        for site in self.sites.get(func.key, []):
            if site.node is node:
                return site.callees
        return ()


class _Resolver:
    """Resolves call expressions inside one function."""

    def __init__(self, symtab: SymbolTable, func: FunctionInfo):
        self.symtab = symtab
        self.func = func
        self.module: "ModuleSource" = func.module
        self.local_types = parameter_types(func.node)
        self.self_name = _self_parameter(func)
        # Local ``x = ClassName(...)`` / annotated assignments refine types.
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                name = resolve_call_name(node.value.func, self.module.imports)
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
                if tail in symtab.classes:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.local_types.setdefault(target.id, tail)

    def resolve(self, node: ast.Call) -> list[FunctionInfo]:
        func_expr = node.func
        if isinstance(func_expr, ast.Name):
            return self._resolve_name(func_expr.id)
        if isinstance(func_expr, ast.Attribute):
            return self._resolve_attribute(func_expr)
        return []

    # ------------------------------------------------------------------
    def _resolve_name(self, name: str) -> list[FunctionInfo]:
        local = self.symtab.module_functions.get((self.module.display_path, name))
        if local is not None:
            return [local]
        if name in self.symtab.classes:
            return self.symtab.resolve_method(name, "__init__")
        origin = self.module.imports.get(name)
        if origin is not None and "." in origin:
            module_part, _, func_name = origin.rpartition(".")
            for path in self.symtab.modules_for_dotted(module_part):
                info = self.symtab.module_functions.get((path, func_name))
                if info is not None:
                    return [info]
            if func_name in self.symtab.classes:
                return self.symtab.resolve_method(func_name, "__init__")
        return []

    def _resolve_attribute(self, expr: ast.Attribute) -> list[FunctionInfo]:
        method = expr.attr
        receiver = expr.value
        # self.m(...)
        if (
            isinstance(receiver, ast.Name)
            and receiver.id == self.self_name
            and self.func.class_name is not None
        ):
            resolved = self.symtab.resolve_method(self.func.class_name, method)
            if resolved:
                return resolved
        # super().m(...)
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
            and self.func.class_name is not None
        ):
            for cls in self.symtab.class_named(self.func.class_name):
                for base in cls.base_names:
                    resolved = self.symtab.resolve_method(base, method)
                    if resolved:
                        return resolved
            return []
        receiver_class = self._receiver_class(receiver)
        if receiver_class is not None:
            resolved = self.symtab.resolve_method(receiver_class, method)
            if resolved:
                return resolved
            return []
        # module.function(...) through the import map
        dotted = resolve_call_name(expr, self.module.imports)
        if dotted is not None and "." in dotted:
            module_part, _, func_name = dotted.rpartition(".")
            for path in self.symtab.modules_for_dotted(module_part):
                info = self.symtab.module_functions.get((path, func_name))
                if info is not None:
                    return [info]
        # Unique-name fallback for unknown receivers.  Owners are keyed by
        # (module, class): two same-named classes in different modules are
        # different receivers, and merging their methods would fuse
        # call-graph edges (and lock contexts) that never meet at runtime.
        if method not in AMBIGUOUS_METHOD_NAMES:
            candidates = self.symtab.methods_by_name.get(method, [])
            owning = {
                (info.module.display_path, info.class_name) for info in candidates
            }
            if len(owning) == 1 and candidates:
                return list(candidates)
        return []

    def _receiver_class(self, receiver: ast.expr) -> str | None:
        """The simple class name of a call receiver, when inferable."""
        if isinstance(receiver, ast.Name):
            if receiver.id == self.self_name:
                return self.func.class_name
            inferred = self.local_types.get(receiver.id)
            if inferred in self.symtab.classes:
                return inferred
            return None
        if isinstance(receiver, ast.Attribute):
            base = receiver.value
            owner: str | None = None
            if isinstance(base, ast.Name):
                if base.id == self.self_name:
                    owner = self.func.class_name
                else:
                    owner = self.local_types.get(base.id)
            elif isinstance(base, ast.Attribute):
                owner = self._receiver_class(base)
            if owner is None:
                return None
            for cls in self.symtab.class_named(owner):
                inferred = cls.attr_types.get(receiver.attr)
                if inferred is not None:
                    return inferred
        return None


def _own_calls(func: ast.FunctionDef | ast.AsyncFunctionDef):
    """Call nodes in ``func``'s own body, skipping nested function bodies
    (they run later, as functions of their own)."""
    stack: list[ast.AST] = [func]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda):
                continue
            if isinstance(child, ast.Call):
                yield child
            stack.append(child)


def _self_parameter(func: FunctionInfo) -> str | None:
    if func.class_name is None:
        return None
    args = func.node.args
    ordered = [*args.posonlyargs, *args.args]
    return ordered[0].arg if ordered else None
