"""One :class:`Project` per engine run: the shared flow artifacts.

Building the symbol table, call graph, and analyses is the expensive part
of the flow layer, and every OBI2xx rule needs the same ones.  The engine
hands project rules a per-run ``cache`` dict; :meth:`Project.of` keeps a
single lazily-built Project there, keyed on the module list identity so a
stale Project from a previous run can never leak in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.guarded import GuardedStateAnalysis
from repro.analysis.flow.locks import LockAnalysis
from repro.analysis.flow.protocol import ProtocolAnalysis
from repro.analysis.flow.stripes import StripeAnalysis
from repro.analysis.flow.symbols import SymbolTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource

_CACHE_KEY = "flow-project"


class Project:
    """Lazily-built whole-program view of one analysis run."""

    def __init__(self, modules: list["ModuleSource"]):
        self.modules = modules
        self._symtab: SymbolTable | None = None
        self._graph: CallGraph | None = None
        self._locks: LockAnalysis | None = None
        self._guarded: GuardedStateAnalysis | None = None
        self._protocol: ProtocolAnalysis | None = None
        self._stripes: StripeAnalysis | None = None

    @classmethod
    def of(cls, modules: list["ModuleSource"], cache: dict) -> "Project":
        project = cache.get(_CACHE_KEY)
        if project is None or project.modules is not modules:
            project = cls(modules)
            cache[_CACHE_KEY] = project
        return project

    @property
    def symtab(self) -> SymbolTable:
        if self._symtab is None:
            self._symtab = SymbolTable.build(self.modules)
        return self._symtab

    @property
    def graph(self) -> CallGraph:
        if self._graph is None:
            self._graph = CallGraph.build(self.symtab)
        return self._graph

    @property
    def locks(self) -> LockAnalysis:
        if self._locks is None:
            self._locks = LockAnalysis(self.symtab, self.graph)
        return self._locks

    @property
    def guarded(self) -> GuardedStateAnalysis:
        if self._guarded is None:
            self._guarded = GuardedStateAnalysis(self.symtab, self.locks)
        return self._guarded

    @property
    def protocol(self) -> ProtocolAnalysis:
        if self._protocol is None:
            self._protocol = ProtocolAnalysis(self.symtab, self.graph)
        return self._protocol

    @property
    def stripes(self) -> StripeAnalysis:
        if self._stripes is None:
            self._stripes = StripeAnalysis(
                self.symtab, self.graph, self.locks, self.guarded
            )
        return self._stripes
