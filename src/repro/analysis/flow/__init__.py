"""obiflow: whole-program interprocedural analysis under obilint.

The per-module rules (OBI101–108) see one file at a time; the flow layer
sees the project.  It is built in three stages, each consuming the one
before:

1. :mod:`~repro.analysis.flow.symbols` — a project-wide symbol table:
   every module-level function, class, and method, plus per-class lock
   attributes and light attribute-type inference (``self.endpoint =
   endpoint`` with an annotated parameter, ``self.x = ClassName(...)``);
2. :mod:`~repro.analysis.flow.callgraph` — a call graph over those
   symbols, resolving ``self.method()``, imported functions, constructor
   calls, typed-attribute dispatch (``self.endpoint.invoke`` →
   ``RmiEndpoint.invoke``) and, for names unique in the project,
   bound-method dispatch by name;
3. the analyses — :mod:`~repro.analysis.flow.locks` (lock-order graph,
   blocking-call propagation), :mod:`~repro.analysis.flow.guarded`
   (which ``self.`` fields each lock owns) and
   :mod:`~repro.analysis.flow.protocol` (the paper's
   get/demand/updateMember/put replica lifecycle).

The rules themselves (OBI201–206) live in
:mod:`~repro.analysis.flow.rules` and register through the ordinary
``rules/`` catalog; they share one :class:`~repro.analysis.flow.project.Project`
per engine run through the project-rule cache.
"""

from repro.analysis.flow.project import Project

__all__ = ["Project"]
