"""Stripe-ownership analysis: the lock-family facts behind OBI207–209.

The single-lock analyses treat ``Site._lock`` as one identity.  A
striped runtime replaces it with a lock *family* — an array of locks
keyed by an oid-hash index — and partitions its tables the same way
(:mod:`repro.core.striping`).  The lock walker already produces the raw
material: family acquisitions carry key-qualified identities
(``Site._stripe_locks[idx]``), striped-table accesses carry their
canonical subscript key, and ``@snapshot_read`` declarations mark the
lock-free read paths.  This analysis judges three disciplines over it:

* **key mismatches** (OBI207) — an access to a stripe-partitioned table
  must hold a member of the owning family derived from the *same* key
  expression; holding stripe ``i`` while touching stripe ``j``'s shard
  is as unguarded as holding nothing;
* **order violations** (OBI208) — taking a second member of one family
  must ascend by stripe index.  Two proofs are accepted: the key is the
  loop variable of an ascending ``for k in range/sorted(...)`` loop, or
  both keys come from one ``lo, hi = sorted((i, j))`` unpack and the
  held key ranks lower;
* **snapshot mutations** (OBI209) — no path out of a declared
  ``@snapshot_read`` may write guarded state: the declaration bought
  lock-free reads precisely by promising read-only behaviour.

Key matching is textual and frame-local (see ``_Walker._canon_key``):
a helper that receives a stripe index under a different parameter name
than its caller used will not match.  The runtime convention — call the
index ``idx`` everywhere — keeps the analysis precise.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.guarded import _CONSTRUCTORS, GuardedStateAnalysis
from repro.analysis.flow.locks import FunctionSummary, LockAnalysis
from repro.analysis.flow.symbols import ClassInfo, FunctionInfo, SymbolTable

#: ``Cls.attr[key]`` — the key-qualified identity a family member gets.
_FAMILY_ID = re.compile(r"^(?P<cls>[^.\[?]+)\.(?P<attr>[^.\[]+)\[(?P<key>.*)\]$")


def family_of(lock_id: str) -> tuple[str, str] | None:
    """``("Cls.attr", key)`` when ``lock_id`` names a family member."""
    match = _FAMILY_ID.match(lock_id)
    if match is None:
        return None
    return f"{match['cls']}.{match['attr']}", match["key"]


@dataclass
class KeyMismatch:
    """A striped-table access whose held family keys miss its own key."""

    cls: ClassInfo
    attr: str
    family: str  # "Site._stripe_locks"
    func: FunctionInfo
    node: ast.AST
    key: str | None  # access key; None for a whole-table (bare) access
    held_keys: tuple[str, ...]


@dataclass
class OrderViolation:
    """A second family member taken without an ascending-index proof."""

    func: FunctionInfo
    node: ast.AST
    family: str
    held_key: str
    acquired_key: str


@dataclass
class SnapshotMutation:
    """A guarded-state write reachable from a declared snapshot read."""

    reader: FunctionInfo
    writer: FunctionInfo
    attr: str
    node: ast.AST
    chain: tuple[str, ...]


class StripeAnalysis:
    """The three stripe-discipline fact lists (see module docstring)."""

    def __init__(
        self,
        symtab: SymbolTable,
        graph: CallGraph,
        locks: LockAnalysis,
        guarded: GuardedStateAnalysis,
    ):
        self.symtab = symtab
        self.graph = graph
        self.locks = locks
        self.guarded = guarded
        self.key_mismatches: list[KeyMismatch] = []
        self.order_violations: list[OrderViolation] = []
        self.snapshot_mutations: list[SnapshotMutation] = []
        self._check_key_discipline()
        self._check_order_discipline()
        self._check_snapshot_reads()

    # ------------------------------------------------------------------
    # OBI207: stripe-key matching
    # ------------------------------------------------------------------
    def _check_key_discipline(self) -> None:
        for infos in self.symtab.classes.values():
            for cls in infos:
                if cls.lock_families and cls.stripe_tables:
                    self._check_class_keys(cls)

    def _check_class_keys(self, cls: ClassInfo) -> None:
        families = {f"{cls.name}.{fam}" for fam in sorted(cls.lock_families)}
        family_label = ", ".join(sorted(families))
        for func in cls.methods.values():
            if func.name in _CONSTRUCTORS:
                continue
            summary = self.locks.summaries.get(func.key)
            if summary is None:
                continue
            for access in summary.accesses:
                if access.attr not in cls.stripe_tables:
                    continue
                if access.kind == "read" and func.snapshot_read:
                    continue
                held_keys: set[str] = set()
                for lock in self.locks.effective_held(func, access.held):
                    member = family_of(lock)
                    if member is not None and member[0] in families:
                        held_keys.add(member[1])
                if access.subscript_key is None:
                    # Whole-table access (rebinding, len, iteration …):
                    # flagged only when no family member is held at all.
                    if not held_keys:
                        self.key_mismatches.append(
                            KeyMismatch(
                                cls=cls,
                                attr=access.attr,
                                family=family_label,
                                func=func,
                                node=access.node,
                                key=None,
                                held_keys=(),
                            )
                        )
                    continue
                if access.subscript_key not in held_keys:
                    self.key_mismatches.append(
                        KeyMismatch(
                            cls=cls,
                            attr=access.attr,
                            family=family_label,
                            func=func,
                            node=access.node,
                            key=access.subscript_key,
                            held_keys=tuple(sorted(held_keys)),
                        )
                    )

    # ------------------------------------------------------------------
    # OBI208: ascending acquisition order within a family
    # ------------------------------------------------------------------
    def _check_order_discipline(self) -> None:
        for func in self.symtab.functions:
            summary = self.locks.summaries.get(func.key)
            if summary is None:
                continue
            entry = self.locks.may_entry_held.get(func.key, frozenset())
            for acquire in summary.acquires:
                acquired = family_of(acquire.lock)
                if acquired is None:
                    continue
                family, acquired_key = acquired
                for lock in frozenset(acquire.held) | entry:
                    held = family_of(lock)
                    if held is None or held[0] != family:
                        continue
                    held_key = held[1]
                    if held_key == acquired_key:
                        continue  # reentrant re-acquire of the same stripe
                    if acquire.ordered:
                        continue  # ascending loop index
                    if _rank_proven(summary, held_key, acquired_key):
                        continue  # lo/hi from one sorted() unpack
                    self.order_violations.append(
                        OrderViolation(
                            func=func,
                            node=acquire.node,
                            family=family,
                            held_key=held_key,
                            acquired_key=acquired_key,
                        )
                    )

    # ------------------------------------------------------------------
    # OBI209: snapshot reads must not mutate guarded state
    # ------------------------------------------------------------------
    def _check_snapshot_reads(self) -> None:
        guarded_fields = {
            (field.cls.name, field.attr) for field in self.guarded.fields
        }
        protected: dict[str, set[str]] = {}
        for infos in self.symtab.classes.values():
            for cls in infos:
                if cls.lock_families or cls.stripe_tables:
                    protected.setdefault(cls.name, set()).update(
                        cls.lock_families | cls.stripe_tables
                    )
        for func in self.symtab.functions:
            if func.snapshot_read:
                self._scan_reader(func, guarded_fields, protected)

    def _scan_reader(
        self,
        reader: FunctionInfo,
        guarded_fields: set[tuple[str, str]],
        protected: dict[str, set[str]],
    ) -> None:
        seen = {reader.key}
        queue: list[tuple[FunctionInfo, tuple[str, ...]]] = [
            (reader, (reader.qualname,))
        ]
        while queue:
            current, chain = queue.pop(0)
            summary = self.locks.summaries.get(current.key)
            if summary is not None:
                for access in summary.accesses:
                    if access.kind != "write":
                        continue
                    owner = current.class_name
                    if owner is None:
                        continue
                    if (owner, access.attr) in guarded_fields or access.attr in protected.get(
                        owner, ()
                    ):
                        self.snapshot_mutations.append(
                            SnapshotMutation(
                                reader=reader,
                                writer=current,
                                attr=f"{owner}.{access.attr}",
                                node=access.node,
                                chain=chain,
                            )
                        )
            for site in self.graph.sites_of(current):
                for callee in site.callees:
                    if callee.key in seen or callee.name in _CONSTRUCTORS:
                        continue
                    seen.add(callee.key)
                    queue.append((callee, chain + (callee.qualname,)))


def _rank_proven(summary: FunctionSummary, held_key: str, acquired_key: str) -> bool:
    """Both keys ranked by one ``sorted()`` unpack, held before acquired."""
    held_rank = summary.sorted_ranks.get(held_key)
    acquired_rank = summary.sorted_ranks.get(acquired_key)
    return (
        held_rank is not None
        and acquired_rank is not None
        and held_rank[0] == acquired_rank[0]
        and held_rank[1] < acquired_rank[1]
    )
