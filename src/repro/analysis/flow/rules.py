"""The flow rules: OBI201–OBI210.

Each rule is a thin adapter from one flow analysis to findings — the
heavy lifting lives in :mod:`~repro.analysis.flow.locks`,
:mod:`~repro.analysis.flow.guarded` and
:mod:`~repro.analysis.flow.protocol`, shared through the per-run
:class:`~repro.analysis.flow.project.Project`.

All six are warnings: interprocedural facts rest on a conservative call
graph, so a finding is a strong signal but not a proof the way the
per-module errors are.  CI runs ``--strict``, where warnings fail too;
a deliberate exception carries a justified suppression.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.contract import FEED_APPLY_CALLEES
from repro.analysis.findings import Finding, ProjectRule, Severity
from repro.analysis.flow.locks import OrderEdge
from repro.analysis.flow.project import Project

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource


class _FlowRule(ProjectRule):
    severity = Severity.WARNING

    def check_project(
        self, modules: list["ModuleSource"], cache: dict
    ) -> Iterator[Finding]:
        return self.check_flow(Project.of(modules, cache))

    def check_flow(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def flow_finding(self, func_module: "ModuleSource", node: ast.AST, message: str) -> Finding:
        return self.finding(func_module, node, message)


class LockOrderCycleRule(_FlowRule):
    """OBI201: two locks acquired in opposite orders on different paths."""

    id = "OBI201"
    name = "lock-order-cycle"
    description = "locks are acquired in conflicting orders across the project"
    rationale = (
        "If one thread takes A then B while another takes B then A, each can "
        "hold the lock the other needs — a deadlock that only strikes under "
        "concurrent faults or put-backs, exactly when it is hardest to debug."
    )

    def check_flow(self, project: Project) -> Iterator[Finding]:
        edges = [
            edge
            for edge in project.locks.order_edges()
            if not edge.held.startswith("?") and not edge.acquired.startswith("?")
        ]
        adjacency: dict[str, dict[str, OrderEdge]] = {}
        for edge in edges:
            adjacency.setdefault(edge.held, {}).setdefault(edge.acquired, edge)
        for cycle in _cycles(adjacency):
            witnesses = [
                adjacency[cycle[i]][cycle[(i + 1) % len(cycle)]]
                for i in range(len(cycle))
            ]
            anchor = witnesses[0]
            steps = "; ".join(
                f"{edge.acquired} taken under {edge.held} in {edge.func.qualname} "
                f"({edge.func.module.display_path}:{edge.node.lineno})"
                for edge in witnesses
            )
            yield self.flow_finding(
                anchor.func.module,
                anchor.node,
                f"lock-order cycle between {', '.join(cycle)}: {steps}",
            )


class BlockingUnderLockRule(_FlowRule):
    """OBI202: a call made under a lock transitively reaches a blocking op."""

    id = "OBI202"
    name = "blocking-under-lock"
    description = "a function called while holding a lock can block on the network"
    rationale = (
        "OBI104 sees a send under a lock in one function; this is the "
        "interprocedural version — the lock is held here, the sendall is "
        "three calls away.  Holding a lock across a network round trip "
        "stalls every thread that needs the lock for the round-trip time."
    )

    def check_flow(self, project: Project) -> Iterator[Finding]:
        locks = project.locks
        for func in project.symtab.functions:
            summary = locks.summaries[func.key]
            for site in project.graph.sites_of(func):
                held = next(
                    (c.held for c in summary.calls if c.node is site.node), ()
                )
                if not held:
                    continue
                for callee in site.callees:
                    chain = locks.blocking_chain.get(callee.key)
                    if chain is None:
                        continue
                    path = " -> ".join(chain)
                    yield self.flow_finding(
                        func.module,
                        site.node,
                        f"call to {callee.qualname}() while holding "
                        f"{', '.join(sorted(held))} can block: {path}",
                    )
                    break


class UnguardedStateRule(_FlowRule):
    """OBI203: a lock-owned field accessed without its lock."""

    id = "OBI203"
    name = "unguarded-state"
    description = "a field written under a lock elsewhere is accessed without it"
    rationale = (
        "If Site._replicas is maintained under Site._lock, an unlocked "
        "pop or read races with every locked writer: lost updates, "
        "phantom replicas, and iteration over a dict mid-resize."
    )

    def check_flow(self, project: Project) -> Iterator[Finding]:
        for violation in project.guarded.violations:
            verb = "written" if violation.kind == "write" else "read"
            yield self.flow_finding(
                violation.func.module,
                violation.node,
                f"{violation.cls.name}.{violation.attr} is guarded by "
                f"{violation.lock} but {verb} without it in "
                f"{violation.func.qualname}()",
            )


class PutWithoutSourceRule(_FlowRule):
    """OBI204: a component writes back replicas it never acquired."""

    id = "OBI204"
    name = "put-without-source"
    description = "'put' issued by a component with no reachable get/demand"
    rationale = (
        "The protocol's put pushes a replica's diff against the version "
        "its get/demand recorded; a component that puts without any "
        "acquisition path is writing back state of unknown provenance."
    )

    def check_flow(self, project: Project) -> Iterator[Finding]:
        for event in project.protocol.puts_without_source():
            scope = (
                event.func.class_name
                if event.func.class_name is not None
                else f"module {event.func.module.display_path}"
            )
            yield self.flow_finding(
                event.func.module,
                event.node,
                f"'put' in {event.func.qualname}() but no 'get' or 'demand' "
                f"is reachable from {scope} — nothing here ever acquired "
                "the replica being written back",
            )


class DemandOutsideFaultPathRule(_FlowRule):
    """OBI205: a 'demand' issued outside the fault-resolution module."""

    id = "OBI205"
    name = "demand-outside-fault-path"
    description = "'demand' issued outside the object-fault path"
    rationale = (
        "demand is the fault path's verb: faults.py coalesces concurrent "
        "demands, batches siblings, and counts stats.  A demand issued "
        "elsewhere bypasses all three — duplicate round trips under "
        "concurrency and stats that silently undercount."
    )

    def check_flow(self, project: Project) -> Iterator[Finding]:
        for event in project.protocol.demands_outside_fault_path():
            yield self.flow_finding(
                event.func.module,
                event.node,
                f"'demand' issued from {event.func.qualname}() — outside the "
                "fault path; route object faults through "
                "repro.core.faults.resolve_fault so they coalesce and batch",
            )


class SpliceEscapeRule(_FlowRule):
    """OBI206: a replica escapes before its splice (updateMember) completes."""

    id = "OBI206"
    name = "splice-escape"
    description = "replica returned or stored before splice/updateMember ran"
    rationale = (
        "Until splice rewrites every demander, aliases still point at the "
        "proxy-out; handing the replica out early lets the application "
        "mutate state the next fault on an alias will silently refetch."
    )

    def check_flow(self, project: Project) -> Iterator[Finding]:
        for escape in project.protocol.escapes_before_splice():
            yield self.flow_finding(
                escape.splice.func.module,
                escape.node,
                f"replica '{escape.splice.replica_name}' {escape.how} before "
                f"splice at line {escape.splice.node.lineno} completed — "
                "demanders may still reference the proxy",
            )


class StripeKeyMismatchRule(_FlowRule):
    """OBI207: a striped-table access without its own stripe's lock."""

    id = "OBI207"
    name = "stripe-key-mismatch"
    description = "stripe-partitioned table accessed without the matching stripe lock"
    rationale = (
        "A striped table's shard i is owned by stripe lock i.  Holding "
        "stripe j's lock — or none — while touching shard i is exactly "
        "the race the old global lock prevented, hidden behind a lock "
        "that LOOKS held.  The key expressions must match."
    )

    def check_flow(self, project: Project) -> Iterator[Finding]:
        for mismatch in project.stripes.key_mismatches:
            if mismatch.key is None:
                detail = (
                    "accessed whole-table with no stripe lock of "
                    f"{mismatch.family} held"
                )
            elif mismatch.held_keys:
                held = ", ".join(f"[{key}]" for key in mismatch.held_keys)
                detail = (
                    f"accessed with key [{mismatch.key}] while holding "
                    f"{mismatch.family}{held} — keys do not match"
                )
            else:
                detail = (
                    f"accessed with key [{mismatch.key}] while holding no "
                    f"stripe lock of {mismatch.family}"
                )
            yield self.flow_finding(
                mismatch.func.module,
                mismatch.node,
                f"{mismatch.cls.name}.{mismatch.attr} is stripe-partitioned "
                f"under {mismatch.family} but {detail} in "
                f"{mismatch.func.qualname}()",
            )


class StripeOrderRule(_FlowRule):
    """OBI208: multi-stripe acquisitions must ascend by stripe index."""

    id = "OBI208"
    name = "stripe-order"
    description = "a second stripe lock taken without an ascending-index proof"
    rationale = (
        "Two threads nesting stripes i-then-j and j-then-i deadlock the "
        "same way two named locks do (OBI201), but the conflict hides "
        "inside one family.  Ascending by index — a range/sorted loop, "
        "or a lo/hi = sorted((i, j)) unpack — makes the order total."
    )

    def check_flow(self, project: Project) -> Iterator[Finding]:
        for violation in project.stripes.order_violations:
            yield self.flow_finding(
                violation.func.module,
                violation.node,
                f"{violation.family}[{violation.acquired_key}] taken while "
                f"holding {violation.family}[{violation.held_key}] in "
                f"{violation.func.qualname}() without an ascending-index "
                "proof (iterate stripes via range()/sorted(), or unpack "
                "lo, hi = sorted((i, j)) and lock lo first)",
            )


class SnapshotReadMutationRule(_FlowRule):
    """OBI209: a declared snapshot read reaches a guarded-state write."""

    id = "OBI209"
    name = "snapshot-read-mutation"
    description = "a @snapshot_read path mutates lock-guarded or striped state"
    rationale = (
        "@snapshot_read buys lock-free reads by promising read-only "
        "behaviour; a write on any path out of one runs unsynchronized "
        "against every locked writer — the declaration exempted exactly "
        "the discipline that would have caught it."
    )

    def check_flow(self, project: Project) -> Iterator[Finding]:
        for mutation in project.stripes.snapshot_mutations:
            path = " -> ".join(mutation.chain)
            yield self.flow_finding(
                mutation.writer.module,
                mutation.node,
                f"{mutation.attr} is written on a path out of snapshot read "
                f"{mutation.reader.qualname}(): {path} — declared lock-free "
                "reads must not mutate guarded state",
            )


class FeedApplyEpochGuardRule(_FlowRule):
    """OBI210: a feed frame applied with no epoch comparison before it."""

    id = "OBI210"
    name = "feed-apply-outside-epoch-check"
    description = "apply_feed_frame called without an epoch comparison earlier in the function"
    rationale = (
        "After a failover the deposed primary may still be pushing frames "
        "stamped with the old epoch; applying one without first comparing "
        "epochs is a split-brain write that silently diverges the mirror "
        "from the group the moment both primaries touch the same object."
    )

    def check_flow(self, project: Project) -> Iterator[Finding]:
        for func in project.symtab.functions:
            applies = [
                node
                for node in ast.walk(func.node)
                if isinstance(node, ast.Call)
                and _callee_tail(node.func) in FEED_APPLY_CALLEES
            ]
            if not applies:
                continue
            guard_lines = [
                node.lineno
                for node in ast.walk(func.node)
                if isinstance(node, ast.Compare) and _compares_epoch(node)
            ]
            for call in applies:
                if any(line <= call.lineno for line in guard_lines):
                    continue
                yield self.flow_finding(
                    func.module,
                    call,
                    f"{_callee_tail(call.func)}() in {func.qualname}() applies "
                    "a feed frame with no epoch comparison before it — check "
                    "the frame's epoch against the local epoch first so a "
                    "deposed primary's pushes are rejected, not applied",
                )


def _callee_tail(func: ast.expr) -> str | None:
    """The last component of a call target: ``f`` for ``a.b.f(...)``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _compares_epoch(compare: ast.Compare) -> bool:
    """Does this comparison mention an epoch on either side?"""
    for node in ast.walk(compare):
        if isinstance(node, ast.Name) and node.id.lower().endswith("epoch"):
            return True
        if isinstance(node, ast.Attribute) and node.attr.lower().endswith("epoch"):
            return True
    return False


def _cycles(adjacency: dict[str, dict[str, OrderEdge]]) -> list[list[str]]:
    """Elementary cycles, one canonical representative per lock set."""
    seen: set[frozenset[str]] = set()
    cycles: list[list[str]] = []

    def dfs(start: str, node: str, path: list[str], visited: set[str]) -> None:
        for nxt in sorted(adjacency.get(node, {})):
            if nxt == start and len(path) > 1:
                key = frozenset(path)
                if key not in seen:
                    seen.add(key)
                    cycles.append(list(path))
            elif nxt not in visited and nxt > start:
                # Only walk nodes ordered after start: each cycle is then
                # discovered exactly once, from its smallest lock.
                visited.add(nxt)
                dfs(start, nxt, path + [nxt], visited)
                visited.discard(nxt)

    for start in sorted(adjacency):
        dfs(start, start, [start], {start})
    return cycles
