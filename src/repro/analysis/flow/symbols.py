"""Project-wide symbol table for the flow layer.

One pass over every parsed module collects what the interprocedural
analyses need:

* every module-level function, class, and method (nested functions are
  indexed too — they run outside their enclosing function's locks, so
  they get summaries of their own);
* per-class **lock attributes**: ``self.x = threading.Lock()`` in any
  method, or a dataclass field whose ``default_factory`` (or annotation)
  is a lock;
* light **attribute-type inference** so the call graph can resolve
  bound-method dispatch: ``self.endpoint = endpoint`` with an annotated
  parameter, ``self.x = ClassName(...)``, and annotated assignments.

Lock identities are class-qualified (``Site._lock``) — the analyses
reason per *class*, the standard abstraction for lock-order and
guarded-state checking (two instances of one class use their locks the
same way the code does).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.contract import SNAPSHOT_READ_DECORATORS
from repro.analysis.visitor import dotted_name, resolve_call_name, self_attr_target

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource

#: Constructors whose result is a lock (order/guard analyses track these).
LOCK_FACTORIES = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)

#: Constructors whose result is a mutable container — the element shape
#: a stripe-partitioned table holds per stripe.
CONTAINER_FACTORIES = frozenset(
    {
        "dict", "list", "set", "defaultdict", "OrderedDict", "deque",
        "Counter", "WeakValueDictionary", "WeakKeyDictionary",
    }
)


def _looks_lock_like(tail: str) -> bool:
    """Heuristic: does this name read as a lock?"""
    lowered = tail.lower()
    return "lock" in lowered or "mutex" in lowered


@dataclass
class FunctionInfo:
    """One function or method, addressable across the project."""

    qualname: str  # "Site.begin_demand", "resolve_fault", "outer.<locals>.inner"
    name: str
    module: "ModuleSource"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    #: Declared ``@snapshot_read`` — a lock-free read path (see OBI209).
    snapshot_read: bool = False

    @property
    def key(self) -> tuple[str, str]:
        return (self.module.display_path, self.qualname)

    @property
    def is_private(self) -> bool:
        return self.name.startswith("_") and not self.name.startswith("__")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname!r} @ {self.module.display_path})"


@dataclass
class ClassInfo:
    """One class: methods, lock attributes, inferred attribute types."""

    name: str
    module: "ModuleSource"
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    lock_attrs: set[str] = field(default_factory=set)
    #: Attributes holding an *array of locks* keyed by a stripe index
    #: (``self._stripe_locks = [StripeLock() for _ in range(n)]``).
    lock_families: set[str] = field(default_factory=set)
    #: Attributes holding an array of mutable containers partitioned the
    #: same way (``self._masters = [{} for _ in range(n)]``).
    stripe_tables: set[str] = field(default_factory=set)
    #: ``self.x`` → simple class name, when inferable.
    attr_types: dict[str, str] = field(default_factory=dict)
    base_names: set[str] = field(default_factory=set)


def _annotation_class(annotation: ast.expr | None) -> str | None:
    """The simple class name an annotation refers to, if any.

    Handles ``Site``, ``pkg.Site``, ``"Site"`` (string annotations) and
    ``Site | None`` / ``Optional[Site]`` by picking the lone class-like
    component.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        parts = [_annotation_class(annotation.left), _annotation_class(annotation.right)]
        named = [p for p in parts if p is not None]
        return named[0] if len(named) == 1 else None
    if isinstance(annotation, ast.Subscript):
        base = dotted_name(annotation.value)
        if base is not None and base.rsplit(".", 1)[-1] == "Optional":
            return _annotation_class(annotation.slice)
        return None
    name = dotted_name(annotation)
    if name is None:
        return None
    tail = name.rsplit(".", 1)[-1]
    if tail in {"None", "Optional", "Any", "object"}:
        return None
    return tail


def _is_lock_factory_call(value: ast.expr, imports: dict[str, str]) -> bool:
    if not isinstance(value, ast.Call):
        return False
    resolved = resolve_call_name(value.func, imports)
    if resolved in LOCK_FACTORIES:
        return True
    # dataclasses.field(default_factory=threading.Lock)
    if resolved is not None and resolved.rsplit(".", 1)[-1] == "field":
        for keyword in value.keywords:
            if keyword.arg == "default_factory":
                factory = resolve_call_name(keyword.value, imports)
                if factory in LOCK_FACTORIES:
                    return True
    return False


def _list_elements(value: ast.expr) -> list[ast.expr] | None:
    """The element expressions of a list display or one-clause listcomp."""
    if isinstance(value, ast.List) and value.elts:
        return value.elts
    if isinstance(value, ast.ListComp) and len(value.generators) == 1:
        return [value.elt]
    return None


def _is_lock_family_value(value: ast.expr, imports: dict[str, str]) -> bool:
    """``[Lock() for _ in range(n)]`` / ``[RLock(), RLock()]`` — a lock array."""
    elts = _list_elements(value)
    if elts is None:
        return False
    for elt in elts:
        if _is_lock_factory_call(elt, imports):
            continue
        if isinstance(elt, ast.Call):
            resolved = resolve_call_name(elt.func, imports)
            if resolved is not None and _looks_lock_like(resolved.rsplit(".", 1)[-1]):
                continue
        return False
    return True


def _is_stripe_table_value(value: ast.expr, imports: dict[str, str]) -> bool:
    """``[{} for _ in range(n)]`` and friends — an array of mutable tables."""
    elts = _list_elements(value)
    if elts is None:
        return False
    for elt in elts:
        if isinstance(elt, ast.Dict | ast.Set | ast.List):
            continue
        if isinstance(elt, ast.Call):
            resolved = resolve_call_name(elt.func, imports)
            if (
                resolved is not None
                and resolved.rsplit(".", 1)[-1] in CONTAINER_FACTORIES
            ):
                continue
        return False
    return True


def _is_snapshot_read(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        expr = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(expr)
        if name is not None and name.rsplit(".", 1)[-1] in SNAPSHOT_READ_DECORATORS:
            return True
    return False


class SymbolTable:
    """All classes and functions of one analysis run."""

    def __init__(self) -> None:
        #: simple class name → every project class with that name.
        self.classes: dict[str, list[ClassInfo]] = {}
        #: (module display path, local name) → module-level function.
        self.module_functions: dict[tuple[str, str], FunctionInfo] = {}
        #: method name → every method with that name (unique-name dispatch).
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        #: function simple name → every module-level function with it.
        self.functions_by_name: dict[str, list[FunctionInfo]] = {}
        #: every function in the project, in deterministic order.
        self.functions: list[FunctionInfo] = []
        #: dotted suffix ("repro.core.faults") → module display paths.
        self._module_dotted: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, modules: list["ModuleSource"]) -> "SymbolTable":
        table = cls()
        for module in modules:
            table._index_module(module)
        for infos in table.classes.values():
            for info in infos:
                table._infer_class_details(info)
        return table

    def _index_module(self, module: "ModuleSource") -> None:
        for suffix in _dotted_suffixes(module.display_path):
            self._module_dotted.setdefault(suffix, []).append(module.display_path)
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef):
                self._index_function(module, node, prefix="", class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node)

    def _index_class(self, module: "ModuleSource", node: ast.ClassDef) -> None:
        info = ClassInfo(
            name=node.name,
            module=module,
            node=node,
            base_names={
                name.rsplit(".", 1)[-1]
                for base in node.bases
                if (name := dotted_name(base)) is not None
            },
        )
        self.classes.setdefault(node.name, []).append(info)
        for child in node.body:
            if isinstance(child, ast.FunctionDef | ast.AsyncFunctionDef):
                method = FunctionInfo(
                    qualname=f"{node.name}.{child.name}",
                    name=child.name,
                    module=module,
                    node=child,
                    class_name=node.name,
                    snapshot_read=_is_snapshot_read(child),
                )
                info.methods[child.name] = method
                self.methods_by_name.setdefault(child.name, []).append(method)
                self.functions.append(method)
                self._index_nested(module, child, f"{node.name}.{child.name}", node.name)

    def _index_function(
        self,
        module: "ModuleSource",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        prefix: str,
        class_name: str | None,
    ) -> None:
        qualname = f"{prefix}{node.name}" if prefix else node.name
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            module=module,
            node=node,
            class_name=class_name,
            snapshot_read=_is_snapshot_read(node),
        )
        if not prefix:
            self.module_functions[(module.display_path, node.name)] = info
            self.functions_by_name.setdefault(node.name, []).append(info)
        self.functions.append(info)
        self._index_nested(module, node, qualname, class_name)

    def _index_nested(
        self,
        module: "ModuleSource",
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        class_name: str | None,
    ) -> None:
        for child in ast.walk(func):
            if child is func or not isinstance(child, ast.FunctionDef | ast.AsyncFunctionDef):
                continue
            if _direct_parent_function(func, child) is func:
                self._index_function(
                    module,
                    child,
                    prefix=f"{qualname}.<locals>.",
                    class_name=class_name,
                )

    # ------------------------------------------------------------------
    # per-class inference
    # ------------------------------------------------------------------
    def _infer_class_details(self, info: ClassInfo) -> None:
        imports = info.module.imports
        # Class-body fields: dataclass lock fields and annotated attributes.
        for stmt in info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                attr = stmt.target.id
                annotated = _annotation_class(stmt.annotation)
                resolved = (
                    resolve_call_name(stmt.annotation, imports)
                    if not isinstance(stmt.annotation, ast.Constant)
                    else None
                )
                if resolved in LOCK_FACTORIES or (
                    stmt.value is not None and _is_lock_factory_call(stmt.value, imports)
                ):
                    info.lock_attrs.add(attr)
                elif annotated is not None and annotated in self.classes:
                    info.attr_types[attr] = annotated
        # Method bodies: self.x = ... assignments.
        for method in info.methods.values():
            param_types = parameter_types(method.node)
            for node in ast.walk(method.node):
                if isinstance(node, ast.AnnAssign):
                    attr = self_attr_target(node.target)
                    if attr is None:
                        continue
                    if node.value is not None and _is_lock_factory_call(node.value, imports):
                        info.lock_attrs.add(attr)
                        continue
                    if node.value is not None and _is_lock_family_value(node.value, imports):
                        info.lock_families.add(attr)
                        continue
                    if node.value is not None and _is_stripe_table_value(node.value, imports):
                        info.stripe_tables.add(attr)
                        continue
                    annotated = _annotation_class(node.annotation)
                    if annotated is not None and annotated in self.classes:
                        info.attr_types.setdefault(attr, annotated)
                elif isinstance(node, ast.Assign):
                    value = node.value
                    for target in node.targets:
                        attr = self_attr_target(target)
                        if attr is None:
                            continue
                        if _is_lock_factory_call(value, imports):
                            info.lock_attrs.add(attr)
                        elif _is_lock_family_value(value, imports):
                            info.lock_families.add(attr)
                        elif _is_stripe_table_value(value, imports):
                            info.stripe_tables.add(attr)
                        else:
                            inferred = self._value_class(value, param_types, imports)
                            if inferred is not None:
                                info.attr_types.setdefault(attr, inferred)

    def _value_class(
        self,
        value: ast.expr,
        param_types: dict[str, str],
        imports: dict[str, str],
    ) -> str | None:
        """The class a value expression constructs or carries, if known."""
        if isinstance(value, ast.Name):
            inferred = param_types.get(value.id)
            return inferred if inferred in self.classes else None
        if isinstance(value, ast.Call):
            name = resolve_call_name(value.func, imports)
            if name is None:
                return None
            tail = name.rsplit(".", 1)[-1]
            return tail if tail in self.classes else None
        return None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def class_named(self, name: str) -> list[ClassInfo]:
        return self.classes.get(name, [])

    def subclasses_of(self, name: str) -> list[ClassInfo]:
        """Project classes that (transitively) list ``name`` as a base."""
        out: list[ClassInfo] = []
        frontier = {name}
        seen = set(frontier)
        while frontier:
            next_frontier: set[str] = set()
            for infos in self.classes.values():
                for info in infos:
                    if info.name in seen:
                        continue
                    if info.base_names & frontier:
                        out.append(info)
                        next_frontier.add(info.name)
            seen |= next_frontier
            frontier = next_frontier
        return out

    def resolve_method(self, class_name: str, method: str) -> list[FunctionInfo]:
        """``method`` as dispatched on an instance of ``class_name``.

        Looks in the class itself, then project base classes (inherited
        implementations), and includes project subclass overrides —
        virtual dispatch over the classes the analyzer can see.
        """
        found: list[FunctionInfo] = []
        seen_keys: set[tuple[str, str]] = set()

        def add(info: FunctionInfo | None) -> None:
            if info is not None and info.key not in seen_keys:
                seen_keys.add(info.key)
                found.append(info)

        pending = list(self.class_named(class_name))
        visited: set[str] = set()
        while pending:
            cls = pending.pop()
            if cls.name in visited:
                continue
            visited.add(cls.name)
            if method in cls.methods:
                add(cls.methods[method])
            else:
                for base in cls.base_names:
                    pending.extend(self.class_named(base))
        for sub in self.subclasses_of(class_name):
            add(sub.methods.get(method))
        return found

    def modules_for_dotted(self, dotted: str) -> list[str]:
        return self._module_dotted.get(dotted, [])


def parameter_types(func: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    """Parameter name → annotated simple class name."""
    types: dict[str, str] = {}
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        annotated = _annotation_class(arg.annotation)
        if annotated is not None:
            types[arg.arg] = annotated
    return types


def _direct_parent_function(
    root: ast.AST, target: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The innermost function enclosing ``target`` under ``root``."""
    result: list[ast.FunctionDef | ast.AsyncFunctionDef | None] = [None]

    def visit(node: ast.AST, owner) -> None:
        for child in ast.iter_child_nodes(node):
            if child is target:
                result[0] = owner
                return
            next_owner = (
                child if isinstance(child, ast.FunctionDef | ast.AsyncFunctionDef) else owner
            )
            visit(child, next_owner)

    visit(root, root if isinstance(root, ast.FunctionDef | ast.AsyncFunctionDef) else None)
    return result[0]


def _dotted_suffixes(display_path: str) -> list[str]:
    """Dotted module names a file path can answer to.

    ``src/repro/core/faults.py`` → ``faults``, ``core.faults``,
    ``repro.core.faults``, ``src.repro.core.faults`` — so imports of
    ``repro.core.faults`` match the file regardless of the path prefix
    the analyzer was invoked with.
    """
    parts = display_path.replace("\\", "/").split("/")
    if not parts:
        return []
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    if stem == "__init__":
        parts = parts[:-1]
        if not parts:
            return []
        segments = parts
    else:
        segments = parts[:-1] + [stem]
    suffixes = []
    for start in range(len(segments)):
        suffixes.append(".".join(segments[start:]))
    return suffixes
