"""Guarded-state inference: which ``self.`` fields does each lock own?

The inference runs per class, over the accesses the lock walker recorded
(:class:`~repro.analysis.flow.locks.FunctionSummary.accesses`), with the
interprocedural must-held context folded in (a private helper only ever
called under the lock counts as locked):

* a field is **owned** by lock ``L`` when at least one write outside
  ``__init__``/``__post_init__`` happens with ``L`` held, and at least
  half of all such writes do — a lone locked write among many unlocked
  ones says the *lock* is the anomaly, not the field;
* once owned, every write outside the constructors must hold ``L``, and
  every read outside the constructors must too — an unlocked read of a
  lock-guarded table sees torn state on free-threaded builds and stale
  state anywhere.

Constructors are exempt because the instance is not yet shared.  Lock
attributes themselves are never treated as guarded state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.flow.locks import LockAnalysis
from repro.analysis.flow.symbols import ClassInfo, FunctionInfo, SymbolTable

#: Methods that run before the instance can be shared across threads.
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class GuardViolation:
    """One access to a lock-owned field without the lock."""

    cls: ClassInfo
    attr: str
    lock: str
    kind: str  # "read" | "write"
    func: FunctionInfo
    node: ast.AST


@dataclass
class GuardedField:
    cls: ClassInfo
    attr: str
    lock: str
    locked_writes: int
    total_writes: int


class GuardedStateAnalysis:
    """Ownership map plus the violations it implies."""

    def __init__(self, symtab: SymbolTable, locks: LockAnalysis):
        self.symtab = symtab
        self.locks = locks
        self.fields: list[GuardedField] = []
        self.violations: list[GuardViolation] = []
        for infos in symtab.classes.values():
            for cls in infos:
                if cls.lock_attrs:
                    self._analyze_class(cls)

    def _analyze_class(self, cls: ClassInfo) -> None:
        own_locks = {f"{cls.name}.{attr}" for attr in cls.lock_attrs}
        # attr → [(kind, func, node, effective-held ∩ own locks)]
        accesses: dict[str, list[tuple[str, FunctionInfo, ast.AST, frozenset[str]]]] = {}
        for func in cls.methods.values():
            summary = self.locks.summaries.get(func.key)
            if summary is None:
                continue
            for access in summary.accesses:
                if access.attr in cls.lock_attrs or access.attr in cls.lock_families:
                    continue
                if access.attr in cls.stripe_tables:
                    continue  # stripe-key discipline is OBI207's job
                if access.kind == "read" and func.snapshot_read:
                    continue  # declared lock-free read (OBI209 owns writes)
                held = self.locks.effective_held(func, access.held) & own_locks
                accesses.setdefault(access.attr, []).append(
                    (access.kind, func, access.node, held)
                )
        for attr, events in accesses.items():
            outside = [
                event for event in events if event[1].name not in _CONSTRUCTORS
            ]
            writes = [event for event in outside if event[0] == "write"]
            locked_writes = [event for event in writes if event[3]]
            if not locked_writes or 2 * len(locked_writes) < len(writes):
                continue
            lock = _majority_lock(locked_writes)
            field = GuardedField(
                cls=cls,
                attr=attr,
                lock=lock,
                locked_writes=len(locked_writes),
                total_writes=len(writes),
            )
            self.fields.append(field)
            for kind, func, node, held in outside:
                if lock not in held:
                    self.violations.append(
                        GuardViolation(
                            cls=cls,
                            attr=attr,
                            lock=lock,
                            kind=kind,
                            func=func,
                            node=node,
                        )
                    )


def _majority_lock(locked_writes: list[tuple]) -> str:
    counts: dict[str, int] = {}
    for _kind, _func, _node, held in locked_writes:
        for lock in held:
            counts[lock] = counts.get(lock, 0) + 1
    return max(sorted(counts), key=lambda lock: counts[lock])
