"""Replication-protocol state machine over the call graph.

The paper's replica lifecycle is ``get``/``demand`` (acquire state) →
local use → ``updateMember`` (splice the replica into its demanders) →
``put`` (write back).  The analyzer recovers the protocol events a
function performs from its RMI call sites:

* ``endpoint.invoke(ref, "verb", args)`` / ``invoke_oneway`` with a
  literal verb;
* ``endpoint.invoke_batch(site, calls)`` where ``calls`` contains
  literal ``(ref, "verb", args)`` triples;
* a call to a function named ``splice`` or ``updateMember`` counts as
  the updateMember step (with the replica argument noted).

Three checks consume the events:

* **put-without-source** — a component (class, or module for free
  functions) that writes back with ``put`` but has no way to have
  acquired the replica: no ``get`` or ``demand`` reachable from any of
  its functions through the call graph;
* **demand-outside-fault-path** — ``demand`` is the object-fault
  protocol's verb; only the fault-resolution module may issue it, so a
  stray ``demand`` elsewhere bypasses coalescing, batching, and the
  stats the fault path maintains;
* **splice-escape** — inside a resolution function, the replica must
  not escape (be returned, or stored into an attribute) before the
  ``splice``/``updateMember`` call completes, or the application can
  observe a replica whose demanders still point at the proxy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.contract import PUT_FAMILY_VERBS, REPLICA_SOURCE_VERBS
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.symbols import FunctionInfo, SymbolTable

#: RMI entry points whose literal second argument is a protocol verb.
_INVOKE_METHODS = frozenset({"invoke", "invoke_oneway"})

#: Verbs that acquire replica state (delegated to the contract so the
#: delta-sync verbs stay in lockstep with the runtime).
SOURCE_VERBS = REPLICA_SOURCE_VERBS

#: Module stems allowed to issue ``demand`` (the fault path itself).
FAULT_PATH_MODULES = frozenset({"faults"})


@dataclass
class VerbEvent:
    """One protocol verb issued at one call site."""

    verb: str
    func: FunctionInfo
    node: ast.AST


@dataclass
class SpliceCall:
    """One ``splice(proxy, replica)`` / ``updateMember`` call site."""

    func: FunctionInfo
    node: ast.Call
    replica_name: str | None


@dataclass
class EscapeBeforeSplice:
    """The replica escaped before its splice completed."""

    splice: SpliceCall
    node: ast.AST
    how: str  # "returned" | "stored"


class ProtocolAnalysis:
    """Verb events, reachable-verb sets, and the three protocol checks."""

    def __init__(self, symtab: SymbolTable, graph: CallGraph):
        self.symtab = symtab
        self.graph = graph
        self.events: dict[tuple[str, str], list[VerbEvent]] = {}
        self.splices: dict[tuple[str, str], list[SpliceCall]] = {}
        for func in symtab.functions:
            self.events[func.key] = list(_extract_events(func))
            self.splices[func.key] = list(_extract_splices(func))
        self.reachable_verbs = self._propagate_verbs()

    def _propagate_verbs(self) -> dict[tuple[str, str], frozenset[str]]:
        reachable = {
            func.key: frozenset(event.verb for event in self.events[func.key])
            for func in self.symtab.functions
        }
        changed = True
        while changed:
            changed = False
            for func in self.symtab.functions:
                merged = reachable[func.key]
                for site in self.graph.sites_of(func):
                    for callee in site.callees:
                        merged = merged | reachable.get(callee.key, frozenset())
                if merged != reachable[func.key]:
                    reachable[func.key] = merged
                    changed = True
        return reachable

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def puts_without_source(self) -> list[VerbEvent]:
        """Put-family emissions whose component never acquires replicas."""
        out: list[VerbEvent] = []
        for func in self.symtab.functions:
            for event in self.events[func.key]:
                if event.verb not in PUT_FAMILY_VERBS:
                    continue
                scope = self._component_functions(func)
                verbs: frozenset[str] = frozenset()
                for member in scope:
                    verbs = verbs | self.reachable_verbs.get(member.key, frozenset())
                if not (verbs & SOURCE_VERBS):
                    out.append(event)
        return out

    def demands_outside_fault_path(self) -> list[VerbEvent]:
        out: list[VerbEvent] = []
        for func in self.symtab.functions:
            stem = _module_stem(func)
            if stem in FAULT_PATH_MODULES:
                continue
            for event in self.events[func.key]:
                if event.verb == "demand":
                    out.append(event)
        return out

    def escapes_before_splice(self) -> list[EscapeBeforeSplice]:
        out: list[EscapeBeforeSplice] = []
        for func in self.symtab.functions:
            for splice in self.splices[func.key]:
                if splice.replica_name is None:
                    continue
                out.extend(_find_escapes(func, splice))
        return out

    # ------------------------------------------------------------------
    def _component_functions(self, func: FunctionInfo) -> list[FunctionInfo]:
        """The functions sharing ``func``'s protocol component: its class's
        methods, or — for a free function — its module's functions."""
        if func.class_name is not None:
            for cls in self.symtab.class_named(func.class_name):
                if cls.module is func.module:
                    return list(cls.methods.values())
        return [
            other
            for other in self.symtab.functions
            if other.module is func.module and other.class_name is None
        ]


# ----------------------------------------------------------------------
# event extraction
# ----------------------------------------------------------------------
def _extract_events(func: FunctionInfo):
    uses_batch = False
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
        if attr in _INVOKE_METHODS and len(node.args) >= 2:
            verb = _literal_str(node.args[1])
            if verb is not None:
                yield VerbEvent(verb=verb, func=func, node=node)
        elif attr == "invoke_batch":
            uses_batch = True
    if uses_batch:
        # The batch's call list is usually built before the invoke_batch
        # call (appends, comprehensions), so match every literal
        # ``(ref, "verb", args)`` triple in the function.  Functions that
        # never batch are exempt, which keeps acl-style string tables
        # from reading as protocol traffic.
        for triple in ast.walk(func.node):
            if (
                isinstance(triple, ast.Tuple)
                and len(triple.elts) == 3
                and (verb := _literal_str(triple.elts[1])) is not None
            ):
                yield VerbEvent(verb=verb, func=func, node=triple)


def verb_events_of(func: FunctionInfo) -> list[VerbEvent]:
    """The protocol verbs ``func`` issues, as the analyzer sees them.

    Public wrapper over event extraction for consumers outside the flow
    rules (the wire layer's spec extractor and OBI304)."""
    return list(_extract_events(func))


def _extract_splices(func: FunctionInfo):
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        name = (
            node.func.id
            if isinstance(node.func, ast.Name)
            else node.func.attr
            if isinstance(node.func, ast.Attribute)
            else None
        )
        if name not in {"splice", "updateMember", "update_member"}:
            continue
        replica: str | None = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Name):
            replica = node.args[1].id
        yield SpliceCall(func=func, node=node, replica_name=replica)


def _find_escapes(func: FunctionInfo, splice: SpliceCall):
    """Returns / attribute stores of the replica before the splice line."""
    line = splice.node.lineno
    name = splice.replica_name
    for node in ast.walk(func.node):
        if node is splice.node or getattr(node, "lineno", line) >= line:
            continue
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Name)
            and node.value.id == name
        ):
            yield EscapeBeforeSplice(splice=splice, node=node, how="returned")
        elif isinstance(node, ast.Assign) and (
            isinstance(node.value, ast.Name) and node.value.id == name
        ):
            if any(isinstance(target, ast.Attribute) for target in node.targets):
                yield EscapeBeforeSplice(splice=splice, node=node, how="stored")


def _literal_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _module_stem(func: FunctionInfo) -> str:
    path = func.module.display_path.replace("\\", "/")
    stem = path.rsplit("/", 1)[-1]
    return stem[:-3] if stem.endswith(".py") else stem
