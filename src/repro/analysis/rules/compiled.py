"""Rules about obicomp-compiled classes (OBI101, OBI102, OBI106).

These mirror, statically, what the runtime either enforces at decoration
time (``__slots__``) or cannot see at all (unserializable fields, control
-name shadowing, shared mutable class defaults).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.contract import RESERVED_CONTROL_METHODS, UNSERIALIZABLE_FACTORIES
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.visitor import (
    is_compiled_classdef,
    is_mutable_value,
    iter_classes,
    public_methods,
    resolve_call_name,
    self_attr_target,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource


def _assign_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        return [node.target]
    return []


def _assign_value(node: ast.stmt) -> ast.expr | None:
    if isinstance(node, ast.Assign | ast.AnnAssign):
        return node.value
    return None


class UnserializableStateRule(Rule):
    """OBI101: compiled classes must hold only wire-safe state.

    ``__slots__`` removes the instance ``__dict__`` replication relies
    on; locks, sockets, threads, file handles and queues are OS/process
    state that cannot be rebuilt on the receiving site.
    """

    id = "OBI101"
    name = "unserializable-state"
    severity = Severity.ERROR
    description = (
        "compiled class declares __slots__ or assigns a field of a known-"
        "unserializable type (lock, socket, thread, file handle, queue)"
    )
    rationale = (
        "replica state must live in the instance __dict__ and survive "
        "encode/decode; OS handles and scheduler state cannot"
    )

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        for classdef in iter_classes(module.tree):
            if not is_compiled_classdef(classdef):
                continue
            for stmt in classdef.body:
                for target in _assign_targets(stmt):
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        yield self.finding(
                            module,
                            stmt,
                            f"compiled class {classdef.name!r} declares __slots__; "
                            "OBIWAN-managed state must live in the instance __dict__",
                        )
            for method in ast.walk(classdef):
                if not isinstance(method, ast.Assign | ast.AnnAssign):
                    continue
                value = _assign_value(method)
                if not isinstance(value, ast.Call):
                    continue
                call_name = resolve_call_name(value.func, module.imports)
                reason = UNSERIALIZABLE_FACTORIES.get(call_name or "")
                if reason is None:
                    continue
                for target in _assign_targets(method):
                    attr = self_attr_target(target)
                    if attr is not None:
                        yield self.finding(
                            module,
                            method,
                            f"compiled class {classdef.name!r} stores "
                            f"{call_name}() in self.{attr}: {reason}, so the "
                            "field cannot cross a site boundary",
                        )


class InterfaceShadowingRule(Rule):
    """OBI102: compiled classes must not shadow proxy-in control names.

    The proxy-in forwards unknown attributes to the master, but its own
    ``get``/``put``/``demand``/``get_version`` take precedence — a user
    method with one of those names becomes unreachable via RMI, and a
    proxy-out fault on it would resolve the *platform* verb instead of
    the business method.
    """

    id = "OBI102"
    name = "interface-shadowing"
    severity = Severity.ERROR
    description = (
        "public method on a compiled class collides with a reserved "
        "ReplicationInterfaces name (get/put/demand/get_version/updateMember)"
    )
    rationale = "shadowed control verbs break fault resolution and RMI dispatch"

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        for classdef in iter_classes(module.tree):
            if not is_compiled_classdef(classdef):
                continue
            for method in public_methods(classdef):
                if method.name in RESERVED_CONTROL_METHODS:
                    yield self.finding(
                        module,
                        method,
                        f"method {classdef.name}.{method.name}() shadows the "
                        f"reserved proxy-in control name {method.name!r}; rename "
                        "it (e.g. fetch_/store_) so fault resolution stays sound",
                    )


class MutableClassDefaultRule(Rule):
    """OBI106: no mutable class-level defaults on compiled classes.

    A class-level list/dict/set is one object shared by the master and
    every replica decoded on this site — writes through one replica leak
    into all of them without any ``put``/``get`` having happened.
    """

    id = "OBI106"
    name = "mutable-class-default"
    severity = Severity.ERROR
    description = "compiled class has a mutable class-level default attribute"
    rationale = (
        "class attributes are not per-instance state: replicas on one site "
        "would silently share them"
    )

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        for classdef in iter_classes(module.tree):
            if not is_compiled_classdef(classdef):
                continue
            for stmt in classdef.body:
                value = _assign_value(stmt)
                if value is None or not is_mutable_value(value, module.imports):
                    continue
                for target in _assign_targets(stmt):
                    if (
                        isinstance(target, ast.Name)
                        and not target.id.startswith("__")
                    ):
                        yield self.finding(
                            module,
                            stmt,
                            f"compiled class {classdef.name!r} defines mutable "
                            f"class-level default {target.id!r}; initialise it "
                            "per instance in __init__ instead",
                        )
