"""Lock-discipline rules (OBI104).

Two hazards the threaded/TCP transports and the RMI endpoint are prone
to:

* **lock held across a network send** — the send blocks on the link (or
  on a remote handler that may call back into this site), serializing
  the network under the lock and inviting reentrancy deadlocks;
* **inconsistent acquisition order** — module acquires lock A inside B
  in one place and B inside A in another: the classic ABBA deadlock.

A name is lock-like if it contains "lock"/"mutex" (case-insensitive) or
the module assigns it from ``threading.Lock``/``RLock``/``Condition``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.contract import NETWORK_SEND_METHODS
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.visitor import dotted_name, resolve_call_name, self_attr_target

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource

_LOCK_FACTORIES = frozenset({"threading.Lock", "threading.RLock", "threading.Condition"})


def _assigned_lock_names(tree: ast.Module, imports: dict[str, str]) -> set[str]:
    """Names (plain or ``self.x`` attrs) bound to a lock constructor."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign | ast.AnnAssign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        if resolve_call_name(value.func, imports) not in _LOCK_FACTORIES:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            attr = self_attr_target(target)
            if attr is not None:
                names.add(attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _lock_name(expr: ast.expr, known_locks: set[str]) -> str | None:
    """The display name of a lock-like ``with`` context expression."""
    name = dotted_name(expr)
    if name is None:
        return None
    tail = name.rsplit(".", 1)[-1]
    lowered = tail.lower()
    if "lock" in lowered or "mutex" in lowered or tail in known_locks:
        return name
    return None


class LockDisciplineRule(Rule):
    """OBI104: no sends under a lock; one global acquisition order."""

    id = "OBI104"
    name = "lock-discipline"
    severity = Severity.WARNING
    description = (
        "network send while holding a lock, or two locks acquired in "
        "opposite orders within one module"
    )
    rationale = (
        "a send can block on the link or on a remote handler calling back "
        "into this site; inconsistent lock order is an ABBA deadlock"
    )

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        known_locks = _assigned_lock_names(module.tree, module.imports)
        orders: dict[tuple[str, str], ast.With] = {}
        yield from self._walk(module, module.tree, [], known_locks, orders)

    def _walk(
        self,
        module: "ModuleSource",
        node: ast.AST,
        held: list[str],
        known_locks: set[str],
        orders: dict[tuple[str, str], ast.With],
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.With | ast.AsyncWith):
                acquired = [
                    name
                    for item in child.items
                    if (name := _lock_name(item.context_expr, known_locks)) is not None
                ]
                for name in acquired:
                    for outer in held:
                        if outer == name:
                            continue
                        orders[(outer, name)] = child
                        if (name, outer) in orders:
                            yield self.finding(
                                module,
                                child,
                                f"locks {outer!r} and {name!r} are acquired in "
                                "both orders in this module; pick one global "
                                "order to rule out ABBA deadlock",
                                severity=Severity.ERROR,
                            )
                yield from self._walk(module, child, held + acquired, known_locks, orders)
            elif isinstance(child, ast.Call) and held:
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in NETWORK_SEND_METHODS
                ):
                    yield self.finding(
                        module,
                        child,
                        f".{func.attr}() called while holding lock "
                        f"{held[-1]!r}; move the send outside the critical "
                        "section (it can block on the link or re-enter this site)",
                    )
                yield from self._walk(module, child, held, known_locks, orders)
            elif isinstance(child, ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda):
                # A nested function body runs later, not under the lock.
                yield from self._walk(module, child, [], known_locks, orders)
            else:
                yield from self._walk(module, child, held, known_locks, orders)
