"""Hygiene rules (OBI107, OBI108).

OBI107 — swallowed failures.  A bare ``except:`` (or ``except
BaseException:`` without re-raise) hides replication faults, transport
timeouts and even ``KeyboardInterrupt``; a ``pass``-only handler for an
OBIWAN error class drops a replication failure on the floor, leaving the
consumer's object graph silently inconsistent.

OBI108 — ambient time and entropy.  Everything outside the ambient-clock
modules (``repro/util/clock.py``, plus the obitrace span context whose
site-less fallback clock is wall time — see
:data:`repro.analysis.contract.AMBIENT_CLOCK_MODULE_SUFFIXES`) must take
a ``Clock``; calling ``time.time()``
(or drawing from the global ``random``) makes simnet replays
non-deterministic, which the benchmark harness and the trace tests rely
on.  Seeded ``random.Random(seed)`` instances are fine.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.contract import (
    AMBIENT_CLOCK_MODULE_SUFFIXES,
    GLOBAL_RANDOM_MODULE,
    NONDETERMINISTIC_CALLS,
    REPLICATION_ERROR_NAMES,
)
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.visitor import dotted_name, resolve_call_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _handler_is_empty(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ...
        return False
    return True


def _exception_names(handler: ast.ExceptHandler) -> set[str]:
    if handler.type is None:
        return set()
    exprs = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names = set()
    for expr in exprs:
        name = dotted_name(expr)
        if name is not None:
            names.add(name.rsplit(".", 1)[-1])
    return names


class SwallowedExceptionRule(Rule):
    """OBI107: no bare excepts, no silently dropped replication errors."""

    id = "OBI107"
    name = "swallowed-exception"
    severity = Severity.ERROR
    description = (
        "bare except:, except BaseException without re-raise, or a pass-only "
        "handler for an OBIWAN error class"
    )
    rationale = (
        "a dropped replication failure leaves the consumer's object graph "
        "silently inconsistent; bare excepts also eat KeyboardInterrupt"
    )

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except: hides replication faults and KeyboardInterrupt; "
                    "catch a specific exception class",
                )
                continue
            names = _exception_names(node)
            if "BaseException" in names and not _handler_reraises(node):
                yield self.finding(
                    module,
                    node,
                    "except BaseException without re-raise; catch Exception or "
                    "re-raise after cleanup",
                )
            swallowed = names & REPLICATION_ERROR_NAMES
            if swallowed and _handler_is_empty(node):
                pretty = ", ".join(sorted(swallowed))
                yield self.finding(
                    module,
                    node,
                    f"{pretty} caught and silently discarded; handle it or "
                    "let it propagate — a dropped replication failure corrupts "
                    "the consumer's view",
                )


class NondeterministicClockRule(Rule):
    """OBI108: ambient time/entropy only inside ``util/clock.py``."""

    id = "OBI108"
    name = "nondeterministic-clock"
    severity = Severity.WARNING
    description = (
        "direct time.time()/perf_counter()/global-random use outside "
        "repro/util/clock.py"
    )
    rationale = (
        "components take a Clock so simnet replays are deterministic; "
        "ambient time or unseeded randomness breaks trace reproducibility"
    )

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        path = module.display_path.replace("\\", "/")
        if any(path.endswith(suffix) for suffix in AMBIENT_CLOCK_MODULE_SUFFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, module.imports)
            if name is None:
                continue
            hint = NONDETERMINISTIC_CALLS.get(name)
            if hint is not None:
                yield self.finding(
                    module, node, f"direct call to {name}(); {hint}"
                )
                continue
            head, _, tail = name.partition(".")
            if head == GLOBAL_RANDOM_MODULE and tail:
                if tail == "SystemRandom":
                    # OS entropy ignores seeding entirely — no argument
                    # form of it is replayable.
                    yield self.finding(
                        module,
                        node,
                        "random.SystemRandom() draws OS entropy and cannot be "
                        "seeded; simnet replays need a seeded random.Random(seed)",
                    )
                elif tail == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module,
                            node,
                            "random.Random() without a seed is nondeterministic; "
                            "pass an explicit seed",
                        )
                elif tail[0].islower():
                    yield self.finding(
                        module,
                        node,
                        f"random.{tail}() draws from the global unseeded "
                        "generator; use a seeded random.Random(seed) instance",
                    )
