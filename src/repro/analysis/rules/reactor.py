"""Reactor-discipline rule (OBI401).

OBI401 — blocking call on the reactor loop thread.  The obireactor
transport (:mod:`repro.simnet.reactor`) runs every socket in the process
on ONE event-loop thread; a body that runs there must never park.  A
single ``time.sleep``, blocking socket op, lock acquire or thread join
inside a loop callback stalls *every* connection the process holds — the
exact convoy the reactor exists to eliminate.

The rule keys on declaration, not inference: a function is loop-hosted
if it is decorated with ``@loop_callback`` (the marker
:mod:`repro.simnet.reactor` attaches to selector entry points) or is an
``async def`` (coroutine bodies share their event loop the same way).
Inside such a body the rule flags:

* ``time.sleep`` / ``socket.create_connection`` / ``select.select``;
* blocking socket methods — ``connect``/``sendall``/``makefile`` always,
  and ``accept``/``recv``/``recv_into``/``recvfrom``/``send`` unless the
  module puts its sockets in non-blocking mode (a literal
  ``.setblocking(False)`` call anywhere in the file);
* waits on other threads: ``.join()`` / ``.result()`` / ``.wait()`` /
  ``.wait_for()`` (string-literal receivers are exempt, so
  ``", ".join(parts)`` stays quiet);
* lock acquisition: ``with <lock-like>:`` or ``.acquire()`` without
  ``blocking=False``.  Locked bookkeeping belongs in a small undecorated
  helper (so the critical section is tight and auditable) or on a
  dispatch worker — the discipline ``repro.simnet.reactor`` itself
  follows.

Nested ``def``s inside a callback are skipped: they run wherever they
are later invoked, and are checked on their own if they carry the
decorator.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.contract import LOOP_CALLBACK_DECORATORS
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.visitor import dotted_name, import_map, resolve_call_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource

#: Dotted callables that always park the calling thread.
_BLOCKING_DOTTED: dict[str, str] = {
    "time.sleep": "sleeps the shared loop for its full duration",
    "socket.create_connection": "blocks until the TCP handshake completes",
    "select.select": "the loop already owns the selector; a nested select deadlocks it",
}

#: Socket/transport methods that block regardless of socket mode.
_ALWAYS_BLOCKING_ATTRS: frozenset[str] = frozenset(
    {"connect", "sendall", "makefile", "call", "cast", "invoke", "invoke_oneway"}
)

#: Socket methods that block only on a blocking-mode socket; exempt when
#: the module demonstrably runs non-blocking (a ``setblocking(False)``
#: call anywhere in the file).
_MODE_DEPENDENT_ATTRS: frozenset[str] = frozenset(
    {"accept", "recv", "recv_into", "recvfrom", "send"}
)

#: Methods that wait on another thread or future.
_WAIT_ATTRS: frozenset[str] = frozenset({"join", "result", "wait", "wait_for"})

#: Substrings that mark a context-manager expression as a lock.
_LOCK_NAME_HINTS: tuple[str, ...] = ("lock", "cond", "mutex", "sem")


def _is_loop_callback(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in fn.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name is not None and name.rsplit(".", 1)[-1] in LOOP_CALLBACK_DECORATORS:
            return True
    return False


def _body_nodes(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function body, stopping at nested function boundaries."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _looks_like_lock(expr: ast.AST) -> bool:
    target = expr.func if isinstance(expr, ast.Call) else expr
    name = dotted_name(target)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1].lower()
    return any(hint in last for hint in _LOCK_NAME_HINTS)


def _module_goes_nonblocking(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setblocking"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value is False
        ):
            return True
    return False


class BlockingCallInReactorRule(Rule):
    """OBI401: loop callbacks and coroutines must never park."""

    id = "OBI401"
    name = "blocking-call-in-reactor"
    severity = Severity.ERROR
    description = (
        "time.sleep, blocking socket op, thread join/wait or lock acquire "
        "inside a @loop_callback body or async def"
    )
    rationale = (
        "the reactor runs every connection in the process on one event-loop "
        "thread; a single blocking call there stalls all of them — the "
        "convoy the reactor transport exists to eliminate"
    )

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        imports = import_map(module.tree)
        nonblocking = _module_goes_nonblocking(module.tree)
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not (isinstance(fn, ast.AsyncFunctionDef) or _is_loop_callback(fn)):
                continue
            where = (
                "coroutine" if isinstance(fn, ast.AsyncFunctionDef) else "loop callback"
            )
            for node in _body_nodes(fn):
                if isinstance(node, ast.With):
                    for item in node.items:
                        if _looks_like_lock(item.context_expr):
                            yield self.finding(
                                module,
                                node,
                                f"lock acquired in {where} {fn.name}; a contended "
                                "acquire stalls every connection — move locked "
                                "bookkeeping to an undecorated helper or a "
                                "dispatch worker",
                            )
                    continue
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_call(module, fn.name, where, node, imports, nonblocking)

    def _check_call(
        self,
        module: "ModuleSource",
        fn_name: str,
        where: str,
        node: ast.Call,
        imports: dict[str, str],
        nonblocking: bool,
    ) -> Iterator[Finding]:
        resolved = resolve_call_name(node.func, imports)
        if resolved in _BLOCKING_DOTTED:
            yield self.finding(
                module,
                node,
                f"{resolved} in {where} {fn_name} {_BLOCKING_DOTTED[resolved]}; "
                "hand the wait to a dispatch worker or a timer command",
            )
            return
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        receiver = node.func.value
        if attr in _WAIT_ATTRS:
            if isinstance(receiver, ast.Constant):
                return  # ", ".join(parts) and friends
            yield self.finding(
                module,
                node,
                f".{attr}() in {where} {fn_name} waits on another thread from "
                "the loop thread; complete the future from a worker instead",
            )
            return
        if attr == "acquire":
            for kw in node.keywords:
                if (
                    kw.arg == "blocking"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                ):
                    return
            yield self.finding(
                module,
                node,
                f".acquire() in {where} {fn_name} can park the loop thread; "
                "pass blocking=False or move it to an undecorated helper",
            )
            return
        if attr in _ALWAYS_BLOCKING_ATTRS or (
            attr in _MODE_DEPENDENT_ATTRS and not nonblocking
        ):
            yield self.finding(
                module,
                node,
                f".{attr}() in {where} {fn_name} can block the loop thread, "
                "stalling every connection in the process",
            )
