"""The obilint rule catalog.

One instance per rule; the engine runs every selected rule over every
module.  Ids are stable (suppressions reference them); add new rules at
the end with the next free id.
"""

from __future__ import annotations

from repro.analysis.findings import Rule
from repro.analysis.flow.rules import (
    BlockingUnderLockRule,
    DemandOutsideFaultPathRule,
    FeedApplyEpochGuardRule,
    LockOrderCycleRule,
    PutWithoutSourceRule,
    SnapshotReadMutationRule,
    SpliceEscapeRule,
    StripeKeyMismatchRule,
    StripeOrderRule,
    UnguardedStateRule,
)
from repro.analysis.rules.compiled import (
    InterfaceShadowingRule,
    MutableClassDefaultRule,
    UnserializableStateRule,
)
from repro.analysis.rules.concurrency import LockDisciplineRule
from repro.analysis.rules.dataflow import ReplicaLeakRule
from repro.analysis.rules.hygiene import NondeterministicClockRule, SwallowedExceptionRule
from repro.analysis.rules.protocol import ProtocolSuperCallRule
from repro.analysis.rules.reactor import BlockingCallInReactorRule
from repro.analysis.wire.rules import (
    SchemaInputDriftRule,
    TagCollisionRule,
    UnencodableWireFieldRule,
    UnguardedWidenedTupleRule,
    VerbWithoutFallbackRule,
    WireBaselineDriftRule,
)


def build_rules() -> list[Rule]:
    """Fresh instances of every shipped rule, in catalog order."""
    return [
        UnserializableStateRule(),
        InterfaceShadowingRule(),
        ReplicaLeakRule(),
        LockDisciplineRule(),
        ProtocolSuperCallRule(),
        MutableClassDefaultRule(),
        SwallowedExceptionRule(),
        NondeterministicClockRule(),
        # Whole-program flow rules (see repro.analysis.flow).
        LockOrderCycleRule(),
        BlockingUnderLockRule(),
        UnguardedStateRule(),
        PutWithoutSourceRule(),
        DemandOutsideFaultPathRule(),
        SpliceEscapeRule(),
        StripeKeyMismatchRule(),
        StripeOrderRule(),
        SnapshotReadMutationRule(),
        FeedApplyEpochGuardRule(),
        # Wire-contract rules (see repro.analysis.wire).
        TagCollisionRule(),
        WireBaselineDriftRule(),
        UnencodableWireFieldRule(),
        VerbWithoutFallbackRule(),
        UnguardedWidenedTupleRule(),
        SchemaInputDriftRule(),
        # Reactor-discipline rules (see repro.simnet.reactor).
        BlockingCallInReactorRule(),
    ]


#: The default catalog (shared instances; rules are stateless between runs).
ALL_RULES: list[Rule] = build_rules()

__all__ = ["ALL_RULES", "build_rules"]
