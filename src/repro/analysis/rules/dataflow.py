"""Replica-leak rule (OBI103).

A compiled class method that returns an internal mutable container *by
reference* behaves differently in LMI and RMI mode: locally the caller
aliases live replica state (mutations bypass ``put_back`` change
tracking); remotely the container is serialized, so the caller gets a
copy and mutations are silently lost.  Either way the contract the
proxy-in exposes is broken.  Return a copy (``list(self.x)``) or an
OBIWAN object.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.visitor import (
    is_compiled_classdef,
    is_mutable_value,
    iter_classes,
    iter_methods,
    public_methods,
    self_attr_target,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource


def _mutable_init_attrs(classdef: ast.ClassDef, imports: dict[str, str]) -> set[str]:
    """Attributes ``__init__`` binds to a fresh mutable container."""
    attrs: set[str] = set()
    for method in iter_methods(classdef):
        if method.name != "__init__":
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign | ast.AnnAssign):
                continue
            value = node.value
            if value is None or not is_mutable_value(value, imports):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = self_attr_target(target)
                if attr is not None:
                    attrs.add(attr)
    return attrs


class ReplicaLeakRule(Rule):
    """OBI103: exposed methods must not return raw internal containers."""

    id = "OBI103"
    name = "replica-leak"
    severity = Severity.WARNING
    description = (
        "public method of a compiled class returns an internal mutable "
        "container by reference"
    )
    rationale = (
        "LMI callers alias live replica state; RMI callers get a throwaway "
        "copy — return an explicit copy or an OBIWAN object instead"
    )

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        for classdef in iter_classes(module.tree):
            if not is_compiled_classdef(classdef):
                continue
            leaky = _mutable_init_attrs(classdef, module.imports)
            if not leaky:
                continue
            for method in public_methods(classdef):
                for node in ast.walk(method):
                    if not isinstance(node, ast.Return) or node.value is None:
                        continue
                    attr = self_attr_target(node.value)
                    if attr in leaky:
                        yield self.finding(
                            module,
                            node,
                            f"{classdef.name}.{method.name}() returns the internal "
                            f"container self.{attr} by reference; return a copy "
                            f"(e.g. list(self.{attr})) so LMI and RMI agree",
                        )
