"""Consistency-protocol subclassing rule (OBI105).

The shipped protocols (:mod:`repro.consistency`) keep bookkeeping inside
their ``read``/``write_back`` (and any ``get``/``put``) verbs: lease
expiry checks, vector increments, invalidation bits.  A subclass of a
*concrete* protocol that overrides a verb without delegating to
``super()`` silently drops that bookkeeping — the protocol still "works"
but no longer provides its guarantee.  Direct subclasses of the abstract
``ConsistencyProtocol`` base are exempt: its verbs are abstract.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.contract import PROTOCOL_VERBS, concrete_protocol_names
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.visitor import calls_super_method, dotted_name, iter_classes, iter_methods

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import ModuleSource


class ProtocolSuperCallRule(Rule):
    """OBI105: protocol-verb overrides must call ``super()``."""

    id = "OBI105"
    name = "protocol-super-call"
    severity = Severity.WARNING
    description = (
        "subclass of a concrete consistency protocol overrides "
        "get/put/read/write_back without delegating to super()"
    )
    rationale = (
        "the parent verb carries the protocol's bookkeeping (leases, "
        "vectors, invalidation bits); dropping it voids the guarantee"
    )

    def __init__(self) -> None:
        self._protocols = concrete_protocol_names()

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        for classdef in iter_classes(module.tree):
            bases = {
                name.rsplit(".", 1)[-1]
                for base in classdef.bases
                if (name := dotted_name(base)) is not None
            }
            parents = bases & self._protocols
            if not parents:
                continue
            parent = sorted(parents)[0]
            for method in iter_methods(classdef):
                if method.name not in PROTOCOL_VERBS:
                    continue
                if not calls_super_method(method, method.name):
                    yield self.finding(
                        module,
                        method,
                        f"{classdef.name}.{method.name}() overrides the "
                        f"{parent} protocol verb without calling "
                        f"super().{method.name}(); the parent's consistency "
                        "bookkeeping is silently dropped",
                    )
