"""``# obilint: disable=RULE`` suppression comments.

Two forms, pylint-style:

* same-line: ``self.x = open(p)  # obilint: disable=OBI101 -- why``
  suppresses the listed rules on that physical line only;
* file-level: a comment line ``# obilint: disable-file=OBI108 -- why``
  suppresses the listed rules for the whole module.

Rules may be named by id (``OBI101``) or slug (``unserializable-state``).
Text after ``--`` is the justification; ``--strict`` requires one, so a
suppression in CI always says *why* the hazard is acceptable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_DIRECTIVE = re.compile(
    r"#\s*obilint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s-]+?)\s*(?:--\s*(?P<why>.*))?$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed directive."""

    rules: frozenset[str]
    line: int  # physical line of the comment
    file_level: bool
    justification: str


@dataclass
class SuppressionIndex:
    """All directives of one module, queryable per finding."""

    by_line: dict[int, list[Suppression]] = field(default_factory=dict)
    file_level: list[Suppression] = field(default_factory=list)

    def all(self) -> list[Suppression]:
        flat = list(self.file_level)
        for entries in self.by_line.values():
            flat.extend(entries)
        return flat

    def matches(self, rule_id: str, rule_name: str, line: int) -> bool:
        keys = {rule_id.upper(), rule_name.lower()}
        for suppression in self.file_level:
            if suppression.rules & keys:
                return True
        for suppression in self.by_line.get(line, ()):
            if suppression.rules & keys:
                return True
        return False


def parse_suppressions(text: str) -> SuppressionIndex:
    index = SuppressionIndex()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _DIRECTIVE.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip().upper() if token.strip().upper().startswith("OBI") else token.strip().lower()
            for token in match.group("rules").split(",")
            if token.strip()
        )
        if not rules:
            continue
        suppression = Suppression(
            rules=rules,
            line=lineno,
            file_level=match.group("kind") == "disable-file",
            justification=(match.group("why") or "").strip(),
        )
        if suppression.file_level:
            index.file_level.append(suppression)
        else:
            index.by_line.setdefault(lineno, []).append(suppression)
    return index
