"""The obilint command line.

::

    python -m repro.analysis src/repro examples --strict
    python -m repro.analysis --list-rules
    python -m repro.analysis src/repro --format json

Exit codes: 0 clean, 1 findings at failing severity, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import Analyzer
from repro.analysis.report import (
    render_json,
    render_rule_catalog,
    render_sarif,
    render_text,
)
from repro.analysis.rules import build_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="obilint: replication-safety static analysis for OBIWAN code",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to analyze")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="fail only on findings beyond this baseline (see --write-baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as accepted debt and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings fail the run and suppressions must carry a justification",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse and run per-module rules over N worker threads (default: 1)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also show suppressed findings (text format)"
    )
    return parser


def _split(values: list[str]) -> set[str]:
    out: set[str] = set()
    for value in values:
        out.update(token.strip() for token in value.split(",") if token.strip())
    return out


def main(argv: Sequence[str] | None = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # Downstream closed the pipe (``obilint ... | head``); the report
        # was cut short on purpose, so exit quietly instead of tracebacking.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _run(argv: Sequence[str] | None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    rules = build_rules()

    if args.list_rules:
        print(render_rule_catalog(rules))
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2

    known = {rule.id for rule in rules} | {rule.name for rule in rules}
    unknown = (_split(args.select) | _split(args.ignore)) - known
    if unknown:
        print(
            f"error: unknown rule(s): {', '.join(sorted(unknown))}"
            " (see --list-rules)",
            file=sys.stderr,
        )
        return 2

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    analyzer = Analyzer(
        rules,
        select=_split(args.select) or None,
        ignore=_split(args.ignore) or None,
        strict=args.strict,
        jobs=args.jobs,
    )
    try:
        report = analyzer.run(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        recorded = write_baseline(args.write_baseline, report)
        print(f"obilint: baseline of {recorded} finding(s) written to {args.write_baseline}")
        return 0
    if args.baseline:
        try:
            report = apply_baseline(report, load_baseline(args.baseline))
        except FileNotFoundError:
            print(
                f"error: baseline file not found: {args.baseline} "
                "(generate it with --write-baseline)",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.format == "json":
        print(render_json(report, strict=args.strict))
    elif args.format == "sarif":
        print(render_sarif(report, rules, strict=args.strict))
    else:
        print(render_text(report, strict=args.strict, verbose=args.verbose))
    return 1 if report.failed(strict=args.strict) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
