"""Shared AST utilities for obilint rules.

Rules work on plain :mod:`ast` trees; these helpers answer the questions
every rule asks — "what is this call's dotted name, after imports?",
"is this class obicomp-compiled?", "which methods are public?" — in one
place so each rule stays a screenful.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

#: Decorator spellings that mark a class as obicomp-compiled.
COMPILE_DECORATORS: frozenset[str] = frozenset(
    {
        "compile",
        "compile_class",
        "obiwan.compile",
        "obiwan.compile_class",
        "port_legacy_class",
        "obiwan.port_legacy_class",
    }
)

#: Containers whose literals / constructors mark state as mutable.
MUTABLE_CONSTRUCTORS: frozenset[str] = frozenset(
    {"list", "dict", "set", "bytearray", "collections.defaultdict", "collections.deque"}
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import threading`` -> ``{"threading": "threading"}``;
    ``from threading import Lock as L`` -> ``{"L": "threading.Lock"}``.
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def resolve_call_name(node: ast.AST, imports: dict[str, str]) -> str | None:
    """The fully-qualified dotted name of a callable expression.

    Resolves the leading segment through ``imports`` so that both
    ``threading.Lock`` and ``from threading import Lock; Lock`` resolve
    to ``"threading.Lock"``.
    """
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = imports.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


def decorator_names(classdef: ast.ClassDef) -> set[str]:
    """Dotted names of a class's decorators, unwrapping calls."""
    names: set[str] = set()
    for deco in classdef.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name is not None:
            names.add(name)
    return names


def is_compiled_classdef(classdef: ast.ClassDef) -> bool:
    """True if the class carries an obicomp compile decorator."""
    return bool(decorator_names(classdef) & COMPILE_DECORATORS)


def iter_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def iter_methods(classdef: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in classdef.body:
        if isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef):
            yield node


def public_methods(classdef: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for method in iter_methods(classdef):
        if not method.name.startswith("_"):
            yield method


def is_mutable_value(node: ast.expr, imports: dict[str, str]) -> bool:
    """True for list/dict/set displays and mutable-constructor calls."""
    if isinstance(node, ast.List | ast.Dict | ast.Set | ast.ListComp | ast.DictComp | ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        name = resolve_call_name(node.func, imports)
        return name in MUTABLE_CONSTRUCTORS
    return False


def self_attr_target(node: ast.expr) -> str | None:
    """``x`` when ``node`` is the assignment target ``self.x``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def calls_super_method(func: ast.FunctionDef | ast.AsyncFunctionDef, name: str) -> bool:
    """True if ``func`` contains ``super().name(...)`` anywhere."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == name
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            return True
    return False
