"""The contract obilint enforces, derived from the live runtime.

Rather than hard-coding a parallel list of "reserved" names and "safe"
types that would rot as the platform evolves, this module interrogates
the same machinery obicomp and the serializer use:

* reserved proxy-in method names come from running
  :func:`~repro.core.obicomp.interface.derive_interface` over
  :class:`~repro.core.proxy_in.ProxyIn` — literally the obicomp view of
  the control surface — plus the paper's fault-resolution verbs;
* the wire-encodable builtin types mirror :mod:`repro.serial.tags` (one
  entry per tag byte);
* the replication error hierarchy is read off
  :mod:`repro.util.errors`.

``tests/analysis/test_contract.py`` cross-checks these sets against the
serializer registry so a drift fails the suite, not a user.
"""

from __future__ import annotations

from repro.core.obicomp.interface import derive_interface
from repro.core.proxy_in import ProxyIn
from repro.util import errors as _errors

#: Method names a compiled class must not define: obicomp's proxy-in
#: control surface (get/put/demand/get_version) plus the paper's
#: fault-resolution verbs, which the graph-walker treats specially.
RESERVED_CONTROL_METHODS: frozenset[str] = frozenset(
    derive_interface(ProxyIn).methods
) | frozenset({"updateMember", "update_member", "setProvider", "setDemander"})

#: RMI verbs of the put family — write-back operations on a proxy-in or
#: consistency coordinator.  The delta variants (PR 4) are first-class
#: members, so ``build_put_delta``/``apply_put_delta`` call sites read as
#: ordinary write-backs to OBI204 instead of unknown traffic.
PUT_FAMILY_VERBS: frozenset[str] = frozenset(
    {"put", "put_delta", "try_put", "try_put_delta", "vector_put", "vector_put_delta"}
)

#: RMI verbs that acquire replica state — the legitimate "source" a
#: component must reach before it may emit a put-family verb.
#: ``get_delta`` is the versioned refresh; the feed acquisition verbs
#: are how a follower's mirrors come to exist, so its write-through
#: ``put`` is a legitimate write-back, not unsourced traffic.
REPLICA_SOURCE_VERBS: frozenset[str] = frozenset(
    {"get", "demand", "get_delta", "feed_subscribe", "feed_snapshot"}
)

#: The wire verbs every peer build understands — the protocol surface as
#: it stood before any negotiated extension (core replication, DGC,
#: invalidation/epidemic propagation, agent migration).  Deliberately a
#: frozen literal, NOT derived from the live proxy-in: a verb added to
#: the runtime must NOT silently join this set, or OBI304 would exempt
#: it from needing a downgrade path the moment it ships.
SEED_WIRE_VERBS: frozenset[str] = frozenset(
    {
        "get",
        "put",
        "demand",
        "get_version",
        "clean",
        "dirty",
        "invalidate",
        "apply_update",
        "receive",
    }
)

#: Negotiated protocol extensions: verb -> the capability whose probe
#: gates it (see :mod:`repro.core.negotiation`).  Every verb here must
#: carry a statically visible fallback edge — a ``probe(...)``-wrapped
#: invocation or a ``NeedFull`` downgrade check (OBI304).
NEGOTIATED_WIRE_VERBS: dict[str, str] = {
    "put_delta": "delta_sync",
    "get_delta": "delta_sync",
    "feed_subscribe": "feed",
    "feed_events": "feed",
    "feed_snapshot": "feed",
    "promote": "feed",
}

#: Callables that apply a change-feed frame to local tables.  OBI210
#: requires every call site to sit below an epoch comparison in the same
#: function — applying a deposed primary's frame without the check is a
#: split-brain write (see :mod:`repro.feed.apply`).
FEED_APPLY_CALLEES: frozenset[str] = frozenset({"apply_feed_frame"})

#: Builtin types with a wire tag in :mod:`repro.serial.tags`.  Everything
#: else crosses the wire only via the type registry.
WIRE_ENCODABLE_BUILTINS: frozenset[type] = frozenset(
    {type(None), bool, int, float, str, bytes, bytearray, list, tuple, dict, set, frozenset}
)


def schema_codec_names() -> frozenset[str]:
    """Wire names with a generated obicodec fast-path codec.

    The contract view of PR 7's compiled serialization: every name here
    corresponds to an ``OBJECT_SCHEMA`` frame the runtime may emit, and
    must resolve to the same registered class on every site.  Delegates
    to the live codec cache so the set never drifts from the runtime.
    """
    from repro.serial.compiled import registered_codec_names

    return registered_codec_names()

#: Dotted callables whose results can never cross a site boundary: OS
#: handles and scheduler state.  Keys are fully-qualified call names as
#: they appear after import resolution; values say why.
UNSERIALIZABLE_FACTORIES: dict[str, str] = {
    "threading.Lock": "a lock is scheduler state on one machine",
    "threading.RLock": "a lock is scheduler state on one machine",
    "threading.Condition": "a condition variable is scheduler state",
    "threading.Semaphore": "a semaphore is scheduler state",
    "threading.BoundedSemaphore": "a semaphore is scheduler state",
    "threading.Event": "an event is scheduler state",
    "threading.Thread": "a thread handle is process-local",
    "threading.Timer": "a timer thread is process-local",
    "socket.socket": "a socket is an OS handle",
    "socket.create_connection": "a socket is an OS handle",
    "subprocess.Popen": "a process handle is machine-local",
    "open": "a file handle is an OS handle",
    "io.open": "a file handle is an OS handle",
    "queue.Queue": "a queue wraps locks and condition variables",
    "queue.LifoQueue": "a queue wraps locks and condition variables",
    "queue.PriorityQueue": "a queue wraps locks and condition variables",
    "queue.SimpleQueue": "a queue wraps locks and condition variables",
}

#: Exception class names in the OBIWAN hierarchy that must never be
#: silently swallowed — a dropped replication failure corrupts the
#: consumer's view of the object graph.
REPLICATION_ERROR_NAMES: frozenset[str] = frozenset(
    name
    for name, obj in vars(_errors).items()
    if isinstance(obj, type)
    and issubclass(obj, _errors.ObiwanError)
)

#: Concrete consistency protocols (``ConsistencyProtocol`` subclasses).
#: Subclassing one of these and overriding a verb without delegating to
#: ``super()`` silently drops the parent protocol's bookkeeping.
def concrete_protocol_names() -> frozenset[str]:
    from repro.consistency.base import ConsistencyProtocol

    # Importing the package registers every shipped protocol subclass.
    import repro.consistency  # noqa: F401

    names = set()
    pending = list(ConsistencyProtocol.__subclasses__())
    while pending:
        cls = pending.pop()
        names.add(cls.__name__)
        pending.extend(cls.__subclasses__())
    return frozenset(names)

#: Verbs whose overrides must delegate (see rule OBI105).
PROTOCOL_VERBS: frozenset[str] = frozenset({"get", "put", "read", "write_back"})

#: Module-level callables that read ambient time or entropy.  Outside
#: :mod:`repro.util.clock` they break deterministic simnet replays.
NONDETERMINISTIC_CALLS: dict[str, str] = {
    "time.time": "use a Clock from repro.util.clock",
    "time.time_ns": "use a Clock from repro.util.clock",
    "time.monotonic": "use a Clock from repro.util.clock",
    "time.monotonic_ns": "use a Clock from repro.util.clock",
    "time.perf_counter": "use a Clock from repro.util.clock",
    "time.perf_counter_ns": "use a Clock from repro.util.clock",
    "datetime.datetime.now": "use a Clock from repro.util.clock",
    "datetime.datetime.utcnow": "use a Clock from repro.util.clock",
}

#: ``random`` module functions drawing from the shared, unseeded global
#: generator.  A seeded ``random.Random(seed)`` instance is fine.
GLOBAL_RANDOM_MODULE = "random"

#: The one module allowed to touch ambient time directly.
CLOCK_MODULE_SUFFIX = "util/clock.py"

#: Modules allowed to touch ambient time: the clock abstraction itself,
#: and the obitrace span context — a :class:`repro.obs.context.Tracer`
#: built without a site falls back to ``time.perf_counter`` (sites always
#: inject ``site.clock.now``, so traced runs stay replay-deterministic).
AMBIENT_CLOCK_MODULE_SUFFIXES: frozenset[str] = frozenset(
    {CLOCK_MODULE_SUFFIX, "obs/context.py"}
)

#: Call attribute names that put bytes on the wire.  Holding a lock
#: across one of these serializes the network under the lock and — for
#: reentrant handler paths — deadlocks.
NETWORK_SEND_METHODS: frozenset[str] = frozenset(
    {"send", "sendall", "sendto", "call", "cast", "invoke", "invoke_oneway", "_transmit"}
)

#: Decorator names that declare a function a reactor loop callback
#: (``repro.simnet.reactor.loop_callback``).  OBI401 keys on the
#: declaration: a decorated body runs on the one event-loop thread every
#: connection in the process shares, so it must never park — blocking
#: steps belong in an undecorated helper or on a dispatch worker.
LOOP_CALLBACK_DECORATORS: frozenset[str] = frozenset({"loop_callback"})

#: Decorator names that declare a method a lock-free snapshot read
#: (``repro.core.striping.snapshot_read``).  The flow layer keys on the
#: declaration: OBI203/OBI207 exempt the unlocked *reads*, and OBI209
#: enforces that no path out of a declared snapshot read mutates
#: guarded state.
SNAPSHOT_READ_DECORATORS: frozenset[str] = frozenset({"snapshot_read"})
