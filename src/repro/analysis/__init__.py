"""obilint: replication-safety static analysis for OBIWAN code.

The paper's ``obicomp`` derives interfaces and proxies so "the programmer
only has to worry about the business logic" — but the reflective port can
only validate a class when it is decorated, at run time.  ``obilint``
closes the gap: it walks Python sources *before* they run and flags
object-graph shapes and concurrency patterns that are unsafe to ship
across a site boundary.

Usage::

    python -m repro.analysis src/repro examples --strict

or programmatically::

    from repro.analysis import analyze_paths
    report = analyze_paths(["src/repro"])
    for finding in report.findings:
        print(finding.format())

The rule catalog lives in :mod:`repro.analysis.rules`; the contract the
rules enforce (reserved proxy-in method names, wire-serializable types)
is derived from the live obicomp/serialization machinery in
:mod:`repro.analysis.contract`, so the analyzer and the runtime cannot
drift apart.
"""

from repro.analysis.engine import AnalysisReport, Analyzer, analyze_paths
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Analyzer",
    "Finding",
    "Rule",
    "Severity",
    "analyze_paths",
]
