"""The span model and the per-site span collector.

A :class:`Span` is one timed protocol step: a ``replicate``, a ``fault``,
one ``rmi.invoke`` round trip, the provider-side ``build_package`` it
triggered.  Spans form trees through ``parent_id`` and whole causal
cascades through ``trace_id`` — both travel across the wire in RMI
request metadata, so a consumer-side fault and the provider-side package
build it caused end up in one tree even though they were recorded by
different sites (on different threads, or different processes on the TCP
transport).

A :class:`SpanCollector` is the per-site sink.  Faulting threads and
dispatcher threads record concurrently, so the collector is lock-safe
and — like ``FaultPathStats`` — exact: no record may be lost or double
counted, and ``stats()`` is mutually consistent.  Capacity is bounded;
overflow drops the *newest* span (the cascade's root and early structure
matter more than its tail) and counts the drop.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

#: Spans kept per collector before overflow counting starts.
DEFAULT_CAPACITY = 100_000

#: Process-wide monotonic sequence used to order spans whose clock
#: timestamps tie (the simulated clock only moves when costs are
#: charged, so sibling spans often share a start time).
_seq = itertools.count(1)


def next_seq() -> int:
    """The next process-wide span sequence number (GIL-atomic)."""
    return next(_seq)


@dataclass(slots=True)
class Span:
    """One timed, attributed step of a causal cascade."""

    trace_id: str
    span_id: str
    parent_id: str | None
    #: Protocol step class: ``replicate``, ``fault``, ``demand``,
    #: ``splice``, ``rmi.invoke``, ``rmi.serve``, ``build_package``, …
    kind: str
    #: Human label (method name, target id); defaults to ``kind``.
    name: str
    #: Site that recorded the span.
    site: str
    #: Clock reading at entry, seconds (site clock: simulated time on the
    #: loopback transport, wall time on threaded/TCP).
    start: float
    duration: float = 0.0
    attributes: dict[str, object] = field(default_factory=dict)
    status: str = "ok"
    #: Process-wide creation sequence — the tiebreaker for equal starts.
    seq: int = 0

    @property
    def end(self) -> float:
        return self.start + self.duration

    def jsonable(self) -> dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "site": self.site,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class SpanCollector:
    """Lock-safe bounded sink for one site's finished spans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"collector capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._recorded = 0
        self._dropped = 0
        self._high_water = 0

    def record(self, span: Span) -> bool:
        """Store a finished span; returns ``False`` when it was dropped."""
        with self._lock:
            if len(self._spans) >= self.capacity:
                self._dropped += 1
                return False
            self._spans.append(span)
            self._recorded += 1
            if len(self._spans) > self._high_water:
                self._high_water = len(self._spans)
            return True

    def spans(self) -> list[Span]:
        """A snapshot of the stored spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        """Remove and return the stored spans (drop/recorded totals and
        the high-water mark survive — they describe the whole run)."""
        with self._lock:
            out = self._spans
            self._spans = []
            return out

    def stats(self) -> dict[str, int]:
        """Mutually-consistent counters: recorded, dropped, held, high water."""
        with self._lock:
            return {
                "recorded": self._recorded,
                "dropped": self._dropped,
                "held": len(self._spans),
                "high_water": self._high_water,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"SpanCollector(held={stats['held']}/{self.capacity}, "
            f"recorded={stats['recorded']}, dropped={stats['dropped']})"
        )
