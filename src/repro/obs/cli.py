"""The ``obitrace`` command line.

::

    obitrace record                         # trace a 3-site fault cascade
    obitrace record --prefetch 16 --format chrome --out cascade.json
    obitrace analyze cascade.jsonl          # re-render an earlier export

``record`` runs the canonical mobility workload — S1 masters the paper's
linked list, S2 incrementally replicates and walks it (the fault
cascade), then re-exports its replica so S3 replicates *through* S2 —
with tracing enabled on every site, and renders the assembled cross-site
trace: indented timeline, critical path, per-kind time attribution, and
the frame/span reconciliation (every request frame on the wire must be
some recorded ``rmi.invoke``/``rmi.invoke_batch`` span).

``analyze`` re-loads a ``--format jsonl`` export and renders the same
analysis offline.  Exit codes: 0 ok, 1 reconciliation or workload
failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

from repro.bench.workloads import ListSpec, list_values_sum, make_linked_list
from repro.core.interfaces import Incremental
from repro.core.proxy_out import ProxyOutBase
from repro.core.runtime import World
from repro.obs.assemble import Trace, assemble_traces, gather_spans
from repro.obs.critical_path import critical_path, slow_spans, time_by_kind
from repro.obs.export import from_jsonl, to_chrome_json, to_jsonl
from repro.obs.spans import Span, SpanCollector
from repro.simnet.message import MessageKind
from repro.simnet.trace import TraceRecorder

#: Span kinds that correspond one-to-one with REQUEST frames on the wire.
REQUEST_SPAN_KINDS = ("rmi.invoke", "rmi.invoke_batch")


@dataclass
class CascadeRecording:
    """Everything ``record`` captured about one traced workload run."""

    #: The workload's cross-site trace (root span kind ``workload``).
    trace: Trace
    #: Every assembled trace, workload included.
    traces: list[Trace]
    #: The pooled span list behind :attr:`traces`.
    spans: list[Span]
    #: Per-site collectors, by site name.
    collectors: dict[str, SpanCollector]
    #: REQUEST frames the network moved while recording.
    request_frames: int
    #: Recorded spans of the kinds in :data:`REQUEST_SPAN_KINDS`.
    request_spans: int
    #: Walk checksums, by walking site.
    sums: dict[str, int]

    @property
    def reconciled(self) -> bool:
        """Frame/span agreement: each request frame has its invoke span."""
        return self.request_frames == self.request_spans


def _walk(site, node) -> int:
    total = 0
    while node is not None:
        total += site.invoke_local(node, "get_index")
        node = site.invoke_local(node, "get_next")
        if isinstance(node, ProxyOutBase) and node._obi_resolved is not None:
            node = node._obi_resolved
    return total


def record_cascade(
    *,
    length: int = 32,
    object_size: int = 64,
    chunk: int = 1,
    prefetch: int = 0,
) -> CascadeRecording:
    """Run the 3-site incremental-replication workload with tracing on.

    S1 masters the list and hosts the name server; S2 replicates under
    ``Incremental(chunk, prefetch=prefetch)`` and walks it — one fault
    cascade against S1 — then exports its replica as ``relay``; S3
    replicates ``relay`` and walks, faulting against S2.  The whole run
    sits under one ``workload`` root span, so assembly yields a single
    trace spanning all three sites.
    """
    world = World.loopback()
    s1 = world.create_site("S1")
    s2 = world.create_site("S2")
    s3 = world.create_site("S3")
    collectors = {site.name: site.enable_tracing() for site in (s1, s2, s3)}
    s1.export(make_linked_list(ListSpec(length, object_size)), name="list")

    mode = Incremental(chunk, prefetch=prefetch)
    sums: dict[str, int] = {}
    with TraceRecorder(world.network) as recorder:
        with s2.tracer.span(
            "workload", name=f"cascade length={length} chunk={chunk} prefetch={prefetch}"
        ) as root:
            head2 = s2.replicate("list", mode=mode)
            sums["S2"] = _walk(s2, head2)
            s2.export(head2, name="relay")
            head3 = s3.replicate("relay", mode=mode)
            sums["S3"] = _walk(s3, head3)
            root.set(sum_s2=sums["S2"], sum_s3=sums["S3"])
        request_frames = len(
            [e for e in recorder.events if e.kind is MessageKind.REQUEST]
        )
    world.close()

    expected = list_values_sum(length)
    for site_name, total in sums.items():
        if total != expected:
            raise AssertionError(
                f"walk checksum at {site_name} is {total}, expected {expected}"
            )

    spans = gather_spans(*collectors.values())
    traces = assemble_traces(spans)
    workload = next(t for t in traces if t.roots and t.root.kind == "workload")
    return CascadeRecording(
        trace=workload,
        traces=traces,
        spans=spans,
        collectors=collectors,
        request_frames=request_frames,
        request_spans=sum(1 for s in spans if s.kind in REQUEST_SPAN_KINDS),
        sums=sums,
    )


def render_analysis(trace: Trace, *, slow_ms: float | None = None) -> str:
    """Timeline + critical path + per-kind attribution for one trace."""
    sections = [trace.render(), "", critical_path(trace).render()]
    attribution = time_by_kind(trace.spans)
    if attribution:
        sections.append("")
        sections.append("self time by kind:")
        for kind, seconds in attribution.items():
            sections.append(f"  {kind:<18s} {seconds * 1e3:9.3f}ms")
    counts = trace.count_by_kind()
    sections.append("")
    sections.append(
        "span counts: "
        + ", ".join(f"{kind}={n}" for kind, n in sorted(counts.items()))
    )
    if slow_ms is not None:
        flagged = slow_spans(trace.spans, slow_ms / 1e3)
        sections.append("")
        sections.append(f"spans ≥ {slow_ms:g}ms: {len(flagged)}")
        for span in flagged[:20]:
            sections.append(
                f"  {span.site:>12s} {span.kind} {span.name} "
                f"+{span.duration * 1e3:.3f}ms"
            )
    return "\n".join(sections)


def _cmd_record(args: argparse.Namespace) -> int:
    recording = record_cascade(
        length=args.length,
        object_size=args.object_size,
        chunk=args.chunk,
        prefetch=args.prefetch,
    )
    if args.format == "chrome":
        text = to_chrome_json(recording.spans)
    elif args.format == "jsonl":
        text = to_jsonl(recording.spans)
    else:
        text = render_analysis(recording.trace, slow_ms=args.slow_ms)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} trace to {args.out}")
    else:
        print(text)
    stats = {name: c.stats() for name, c in sorted(recording.collectors.items())}
    print(
        "collectors: "
        + ", ".join(
            f"{name} {s['recorded']} recorded/{s['dropped']} dropped"
            for name, s in stats.items()
        )
    )
    print(
        f"reconciliation: {recording.request_frames} request frames vs "
        f"{recording.request_spans} invoke spans -> "
        + ("OK" if recording.reconciled else "MISMATCH")
    )
    return 0 if recording.reconciled else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    with open(args.file, "r", encoding="utf-8") as fh:
        spans = from_jsonl(fh.read())
    traces = assemble_traces(spans)
    if not traces:
        print("no spans in export")
        return 1
    for trace in traces:
        print(render_analysis(trace, slow_ms=args.slow_ms))
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="obitrace",
        description="Causal tracing for the OBIWAN replication fault path.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="trace the 3-site fault-cascade workload"
    )
    record.add_argument("--length", type=int, default=32, help="list length")
    record.add_argument(
        "--object-size", type=int, default=64, help="bytes per list object"
    )
    record.add_argument("--chunk", type=int, default=1, help="incremental chunk size")
    record.add_argument(
        "--prefetch", type=int, default=0, help="read-ahead objects per demand"
    )
    record.add_argument(
        "--format",
        choices=("timeline", "chrome", "jsonl"),
        default="timeline",
        help="output format (chrome loads in Perfetto / chrome://tracing)",
    )
    record.add_argument("--out", metavar="FILE", help="write output to FILE")
    record.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="flag spans at or above this duration (timeline format)",
    )
    record.set_defaults(func=_cmd_record)

    analyze = sub.add_parser("analyze", help="re-render a jsonl export")
    analyze.add_argument("file", help="a --format jsonl export")
    analyze.add_argument("--slow-ms", type=float, default=None)
    analyze.set_defaults(func=_cmd_analyze)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
