"""``python -m repro.obs`` — the obitrace command line."""

import sys

from repro.obs.cli import main

if __name__ == "__main__":
    sys.exit(main())
