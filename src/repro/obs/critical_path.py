"""Critical-path extraction and time attribution over assembled traces.

The critical path of a cascade is the chain of spans that bounds its
end-to-end latency: from the root, repeatedly descend into the child
whose *end* time is latest (ties broken by sequence), because the parent
cannot finish before that child does.  Everything off the path was
overlapped or cheap — speeding it up cannot shorten the cascade.

``time_by_kind`` attributes *self time* — a span's duration minus the
time covered by its children — so the table answers "where did the time
go" without double counting nested spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs.assemble import Trace
from repro.obs.spans import Span


@dataclass(slots=True)
class CriticalPath:
    """The latency-bounding chain of one trace, root first."""

    trace_id: str
    spans: list[Span]

    @property
    def duration(self) -> float:
        return self.spans[0].duration if self.spans else 0.0

    def render(self) -> str:
        lines = [
            f"critical path of {self.trace_id}: "
            f"{len(self.spans)} spans, {self.duration * 1e3:.3f}ms"
        ]
        for hop, span in enumerate(self.spans):
            label = f" {span.name}" if span.name != span.kind else ""
            lines.append(
                f"  {hop}: {span.site:>12s} {span.kind}{label} "
                f"+{span.duration * 1e3:.3f}ms"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)


def critical_path(trace: Trace) -> CriticalPath:
    """The chain of spans bounding the trace's end-to-end latency.

    Backward walk from each span's completion: the latest-ending child
    is on the path (its parent could not finish earlier), and so is the
    latest-ending sibling that completed before it started, recursively.
    Overlapped or early-finishing work never appears.
    """
    if not trace.roots:
        return CriticalPath(trace.trace_id, [])
    return CriticalPath(trace.trace_id, _chain(trace, trace.root))


def _chain(trace: Trace, span: Span) -> list[Span]:
    result = [span]
    children = sorted(trace.children(span), key=lambda s: (s.end, s.seq))
    if not children:
        return result
    on_path = [children.pop()]
    while True:
        predecessor = None
        for candidate in reversed(children):
            if candidate.end <= on_path[-1].start:
                predecessor = candidate
                break
        if predecessor is None:
            break
        on_path.append(predecessor)
        children.remove(predecessor)
    for child in reversed(on_path):
        result.extend(_chain(trace, child))
    return result


def time_by_kind(spans: Iterable[Span]) -> dict[str, float]:
    """Self time per span kind, descending.

    Self time is ``duration − Σ child durations`` clipped at zero (a
    child can outlive its parent only through clock skew between sites;
    clipping keeps the attribution non-negative rather than letting skew
    produce nonsense negatives).
    """
    spans = list(spans)
    child_time: dict[str, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_time[span.parent_id] = child_time.get(span.parent_id, 0.0) + span.duration
    totals: dict[str, float] = {}
    for span in spans:
        self_time = max(0.0, span.duration - child_time.get(span.span_id, 0.0))
        totals[span.kind] = totals.get(span.kind, 0.0) + self_time
    return dict(sorted(totals.items(), key=lambda item: -item[1]))


def slow_spans(spans: Iterable[Span], threshold: float) -> list[Span]:
    """Spans whose duration meets or exceeds ``threshold`` seconds,
    slowest first."""
    flagged = [span for span in spans if span.duration >= threshold]
    flagged.sort(key=lambda span: -span.duration)
    return flagged
