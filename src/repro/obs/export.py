"""Span exporters: JSON lines and Chrome ``trace_event`` format.

The JSONL form is one ``Span.jsonable()`` dict per line — trivially
greppable and re-importable.  The Chrome form follows the Trace Event
Format's JSON-object flavour (``{"traceEvents": [...]}``) using complete
("X") events with microsecond timestamps, one *process* lane per site;
the file loads directly in Perfetto (ui.perfetto.dev) or
``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.spans import Span


def to_jsonl(spans: Iterable[Span]) -> str:
    """One compact JSON object per span, newline separated."""
    return "\n".join(
        json.dumps(span.jsonable(), sort_keys=True, default=str) for span in spans
    )


def from_jsonl(text: str) -> list[Span]:
    """Rebuild spans from :func:`to_jsonl` output (the CLI's ``--format
    jsonl`` files can be re-assembled and re-analyzed offline)."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        spans.append(
            Span(
                trace_id=data["trace_id"],
                span_id=data["span_id"],
                parent_id=data["parent_id"],
                kind=data["kind"],
                name=data["name"],
                site=data["site"],
                start=data["start"],
                duration=data["duration"],
                attributes=data.get("attributes", {}),
                status=data.get("status", "ok"),
            )
        )
    return spans


def chrome_trace(spans: Iterable[Span]) -> dict:
    """Spans as a Chrome ``trace_event`` JSON object (dict form).

    Sites map to processes (stable pids in first-appearance order) so
    Perfetto shows one named lane per site; span ids ride along in
    ``args`` so the tree can be reconstructed from the export.
    """
    spans = list(spans)
    pids: dict[str, int] = {}
    events: list[dict] = []
    for span in spans:
        if span.site not in pids:
            pids[span.site] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[span.site],
                    "tid": 0,
                    "args": {"name": f"site {span.site}"},
                }
            )
    for span in spans:
        args: dict[str, object] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "status": span.status,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update({key: str(value) for key, value in span.attributes.items()})
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.kind,
                "pid": pids[span.site],
                "tid": 0,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_chrome_json(spans: Iterable[Span]) -> str:
    """:func:`chrome_trace` serialized — write this straight to a
    ``.json`` file and open it in Perfetto."""
    return json.dumps(chrome_trace(spans), sort_keys=True)
