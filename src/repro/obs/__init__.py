"""obitrace: causal tracing for the replication fault path.

The paper trades one big transfer for a *cascade* of small demand-driven
ones (get → fault → demand → splice → forward).  This package makes that
cascade observable as spans — timed, attributed, causally linked records
of each protocol step — where the aggregate counters
(``FaultPathStats``, ``SyncPathStats``) only say *how many* and the
frame log (:mod:`repro.simnet.trace`) only says *what moved*.

Layers:

* :mod:`repro.obs.spans` — the span model and the lock-safe per-site
  :class:`~repro.obs.spans.SpanCollector`;
* :mod:`repro.obs.context` — thread-local trace context, the
  :class:`~repro.obs.context.Tracer` sites hold, and the zero-overhead
  :data:`~repro.obs.context.NULL_TRACER` installed while tracing is off;
* :mod:`repro.obs.assemble` — stitch per-site spans into cross-site
  :class:`~repro.obs.assemble.Trace` trees;
* :mod:`repro.obs.critical_path` — longest causal chain and per-kind
  time attribution;
* :mod:`repro.obs.export` — JSON-lines and Chrome ``trace_event``
  exporters (the latter loads in Perfetto / ``chrome://tracing``);
* :mod:`repro.obs.cli` — the ``obitrace`` console script.

Tracing is opt-in per :class:`~repro.core.runtime.Site` via
``site.enable_tracing()``; the instrumented fault path costs only no-op
context managers while it is off (benchmarked in
``repro.bench.tracing_overhead``).
"""

from repro.obs.assemble import Trace, assemble_traces, gather_spans
from repro.obs.context import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    activate,
    annotate,
    current,
    deactivate,
)
from repro.obs.critical_path import CriticalPath, critical_path, slow_spans, time_by_kind
from repro.obs.export import chrome_trace, to_chrome_json, to_jsonl
from repro.obs.spans import Span, SpanCollector

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanCollector",
    "Trace",
    "Tracer",
    "CriticalPath",
    "activate",
    "annotate",
    "assemble_traces",
    "chrome_trace",
    "critical_path",
    "current",
    "deactivate",
    "gather_spans",
    "slow_spans",
    "time_by_kind",
    "to_chrome_json",
    "to_jsonl",
]
