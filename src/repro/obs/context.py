"""Thread-local trace context and the per-site :class:`Tracer`.

Each thread carries a stack of *(trace_id, span_id, span)* entries.  The
top of the stack is the causal parent of whatever happens next on that
thread: ``Tracer.span`` pushes on entry and pops on exit, and the RMI
layer stamps the top into outgoing requests (:func:`current`) and
installs incoming context around dispatch (:func:`activate` /
:func:`deactivate`).  Foreign entries — contexts received over the wire
— have ``span=None``: they parent locally-created spans but are never
mutated or recorded here.

While tracing is off a site holds :data:`NULL_TRACER`, whose ``span()``
returns one shared no-op context manager — no allocation, no clock read,
no lock.  That is the entire disabled-path cost, benchmarked in
``repro.bench.tracing_overhead``.

This module is the sanctioned home of the tracer's *default* ambient
clock (``time.perf_counter``, used only when a tracer is built without a
site clock, e.g. in unit tests); everywhere else timing flows through
``Clock`` objects per the OBI108 contract, and ``Site.enable_tracing``
always passes ``site.clock.now``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs.spans import Span, SpanCollector, next_seq
from repro.util.ids import new_span_id, new_trace_id

_local = threading.local()


def _stack() -> list[tuple[str, str, Span | None]]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current() -> tuple[str, str] | None:
    """The active ``(trace_id, span_id)``, or ``None`` outside any span.

    This is exactly what the RMI layer stamps into outgoing requests, so
    context propagates across sites even when an intermediate hop has
    tracing disabled (the foreign entry installed by :func:`activate`
    still sits on the stack).
    """
    stack = getattr(_local, "stack", None)
    if not stack:
        return None
    trace_id, span_id, _ = stack[-1]
    return (trace_id, span_id)


def activate(trace_id: str, span_id: str) -> object:
    """Install a foreign (wire-received) context on this thread.

    Returns an opaque token that must be handed back to
    :func:`deactivate` — in a ``finally`` — to restore the previous
    context.
    """
    stack = _stack()
    stack.append((trace_id, span_id, None))
    return len(stack)


def deactivate(token: object) -> None:
    """Pop the foreign context installed by the matching :func:`activate`."""
    stack = _stack()
    if not isinstance(token, int) or token < 1 or len(stack) < token:
        raise RuntimeError("trace context stack out of balance on deactivate")
    del stack[token - 1 :]


def annotate(**attributes: object) -> None:
    """Attach attributes to the innermost *local* active span, if any.

    A no-op outside any span or under a purely foreign context — safe to
    call unconditionally from low layers (the TCP pool uses this to tag
    the enclosing ``rmi.invoke`` span with connect/reuse attribution).
    """
    stack = getattr(_local, "stack", None)
    if not stack:
        return
    for _, _, span in reversed(stack):
        if span is not None:
            span.attributes.update(attributes)
            return


class _NullSpan:
    """The shared do-nothing span handle handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attributes: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every ``span()`` is the same shared no-op."""

    __slots__ = ()
    enabled = False

    def span(self, kind: str, name: str | None = None, **attributes: object) -> _NullSpan:
        return _NULL_SPAN


NULL_TRACER = NullTracer()


class _ActiveSpan:
    """Context manager for one live span: push on enter, record on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", kind: str, name: str | None, attributes: dict):
        self._tracer = tracer
        self._span = Span(
            trace_id="",
            span_id="",
            parent_id=None,
            kind=kind,
            name=name if name is not None else kind,
            site=tracer.site,
            start=0.0,
            attributes=attributes,
        )

    def __enter__(self) -> "_ActiveSpan":
        span = self._span
        stack = _stack()
        if stack:
            span.trace_id, span.parent_id, _ = stack[-1]
        else:
            span.trace_id = new_trace_id()
        span.span_id = new_span_id()
        span.seq = next_seq()
        span.start = self._tracer.clock()
        stack.append((span.trace_id, span.span_id, span))
        return self

    def set(self, **attributes: object) -> None:
        self._span.attributes.update(attributes)

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        span = self._span
        span.duration = self._tracer.clock() - span.start
        if exc_type is not None:
            span.status = "error"
            span.attributes.setdefault(
                "error", getattr(exc_type, "__name__", str(exc_type))
            )
        stack = _stack()
        if stack and stack[-1][2] is span:
            stack.pop()
        else:  # unbalanced exit (exotic generator teardown): scrub, don't crash
            for i in range(len(stack) - 1, -1, -1):
                if stack[i][2] is span:
                    del stack[i]
                    break
        self._tracer.collector.record(span)
        return None


class Tracer:
    """The live tracer a :class:`~repro.core.runtime.Site` holds while
    tracing is enabled.

    ``clock`` is a zero-argument callable returning seconds —
    ``site.clock.now`` in production so span timestamps share the site's
    time base (simulated or wall).
    """

    __slots__ = ("site", "collector", "clock")
    enabled = True

    def __init__(
        self,
        site: str,
        collector: SpanCollector | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.site = site
        self.collector = collector if collector is not None else SpanCollector()
        self.clock = clock if clock is not None else time.perf_counter

    def span(self, kind: str, name: str | None = None, **attributes: object) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("fault", name=oid) as sp:``."""
        return _ActiveSpan(self, kind, name, attributes)

    def __repr__(self) -> str:
        return f"Tracer(site={self.site!r}, collector={self.collector!r})"
