"""Stitch per-site spans into cross-site trace trees.

Every site records only its own spans; the causal links (``trace_id``,
``parent_id``) crossed the wire in RMI metadata.  :func:`gather_spans`
pools collectors, :func:`assemble_traces` groups the pool by trace and
rebuilds each tree.  Spans whose parent never arrived (dropped on
overflow, or recorded by a site that was not gathered) are kept as extra
roots rather than discarded — a partial trace is still a trace.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.obs.spans import Span, SpanCollector


def gather_spans(*sources: "SpanCollector | Iterable[Span]") -> list[Span]:
    """Pool spans from collectors (or plain span iterables) into one list."""
    pool: list[Span] = []
    for source in sources:
        if isinstance(source, SpanCollector):
            pool.extend(source.spans())
        else:
            pool.extend(source)
    return pool


def _order(span: Span) -> tuple[float, int]:
    return (span.start, span.seq)


class Trace:
    """One assembled causal cascade: the spans of a single ``trace_id``."""

    def __init__(self, trace_id: str, spans: list[Span]):
        self.trace_id = trace_id
        self.spans = sorted(spans, key=_order)
        by_id = {span.span_id: span for span in self.spans}
        self._children: dict[str | None, list[Span]] = {}
        self.roots: list[Span] = []
        for span in self.spans:
            if span.parent_id is not None and span.parent_id in by_id:
                self._children.setdefault(span.parent_id, []).append(span)
            else:
                self.roots.append(span)

    @property
    def root(self) -> Span:
        """The earliest root (the usual single entry point of the cascade)."""
        if not self.roots:
            raise ValueError(f"trace {self.trace_id} has no spans")
        return self.roots[0]

    def children(self, span: Span) -> list[Span]:
        return self._children.get(span.span_id, [])

    def walk(self) -> Iterable[tuple[int, Span]]:
        """Yield ``(depth, span)`` depth-first from each root."""
        stack = [(0, root) for root in reversed(self.roots)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(self.children(span)):
                stack.append((depth + 1, child))

    def sites(self) -> list[str]:
        """Sites that contributed spans, in first-appearance order."""
        seen: list[str] = []
        for span in self.spans:
            if span.site not in seen:
                seen.append(span.site)
        return seen

    def count_by_kind(self) -> dict[str, int]:
        return dict(Counter(span.kind for span in self.spans))

    def find(self, kind: str | None = None, site: str | None = None) -> list[Span]:
        """Spans matching the given kind and/or site, in tree time order."""
        return [
            span
            for span in self.spans
            if (kind is None or span.kind == kind)
            and (site is None or span.site == site)
        ]

    @property
    def duration(self) -> float:
        if not self.spans:
            return 0.0
        return max(span.end for span in self.spans) - self.root.start

    def render(self) -> str:
        """An indented cross-site timeline, one line per span."""
        origin = self.root.start if self.roots else 0.0
        lines = [f"trace {self.trace_id}  sites={','.join(self.sites())}"]
        for depth, span in self.walk():
            label = span.name if span.name != span.kind else ""
            extras = " ".join(
                f"{key}={value}" for key, value in sorted(span.attributes.items())
            )
            flag = "" if span.status == "ok" else f" !{span.status}"
            lines.append(
                f"  [{(span.start - origin) * 1e3:9.3f}ms "
                f"+{span.duration * 1e3:9.3f}ms] "
                f"{span.site:>12s} {'  ' * depth}{span.kind}"
                + (f" {label}" if label else "")
                + (f"  ({extras})" if extras else "")
                + flag
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"Trace({self.trace_id!r}, spans={len(self.spans)}, "
            f"sites={self.sites()!r})"
        )


def assemble_traces(spans: Iterable[Span]) -> list[Trace]:
    """Group a span pool by ``trace_id`` into :class:`Trace` trees,
    ordered by each trace's earliest start."""
    groups: dict[str, list[Span]] = {}
    for span in spans:
        groups.setdefault(span.trace_id, []).append(span)
    traces = [Trace(trace_id, group) for trace_id, group in groups.items()]
    traces.sort(key=lambda trace: _order(trace.root) if trace.roots else (0.0, 0))
    return traces
