"""Version vectors with conflict detection.

The strongest protocol in the library: every object carries a version
vector (site → counter).  A consumer's write-back is accepted only if its
base vector *includes* the master's current vector — otherwise the two
writes are concurrent and the coordinator reports a conflict, which the
consumer resolves with a pluggable resolver before retrying.

This is the machinery behind optimistic mobile replication (Coda/Bayou
lineage), and what the OBIWAN follow-up work on loosely-coupled mobile
transactions builds on.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.consistency.base import ConsistencyProtocol
from repro.core.meta import obi_id_of
from repro.core.replication import apply_put, apply_put_delta, build_put, build_put_delta
from repro.rmi.protocol import NeedFull
from repro.rmi.refs import RemoteRef
from repro.serial.registry import global_registry
from repro.util.errors import ConsistencyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.packages import PutDeltaPackage, PutPackage
    from repro.core.runtime import Site

VECTOR_COORDINATOR_METHODS = ("vector_put", "vector_put_delta", "vector_of", "fresh_state")


@dataclass(slots=True)
class VersionVector:
    """A classic version vector: per-site update counters."""

    counters: dict[str, int] = field(default_factory=dict)

    def __getstate__(self) -> object:
        return dict(self.counters)

    def __setstate__(self, state: object) -> None:
        self.counters = dict(state)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def bump(self, site_id: str) -> "VersionVector":
        self.counters[site_id] = self.counters.get(site_id, 0) + 1
        return self

    def copy(self) -> "VersionVector":
        return VersionVector(dict(self.counters))

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Pointwise maximum (least upper bound)."""
        merged = dict(self.counters)
        for site_id, count in other.counters.items():
            merged[site_id] = max(merged.get(site_id, 0), count)
        return VersionVector(merged)

    def includes(self, other: "VersionVector") -> bool:
        """True iff ``self`` ≥ ``other`` pointwise (other happened-before
        or equals self)."""
        return all(
            self.counters.get(site_id, 0) >= count
            for site_id, count in other.counters.items()
        )

    def concurrent_with(self, other: "VersionVector") -> bool:
        return not self.includes(other) and not other.includes(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        mine = {k: v for k, v in self.counters.items() if v}
        theirs = {k: v for k, v in other.counters.items() if v}
        return mine == theirs

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self.counters.items()))
        return f"<{inner}>"


global_registry.register(VersionVector, name="consistency.VersionVector")


#: ``resolver(local_replica, fresh_master_state) -> None`` mutates the
#: local replica into the merged state before a retry.
Resolver = Callable[[object, dict], None]


class VectorCoordinator:
    """Master-side vector bookkeeping and conflict detection."""

    def __init__(self, site: "Site"):
        self._site = site
        self._vectors: dict[str, VersionVector] = {}

    def vector_of(self, oid: str) -> VersionVector:
        return self._vectors.setdefault(oid, VersionVector()).copy()

    def vector_put(
        self, package: "PutPackage", base: VersionVector, writer_site: str
    ) -> dict[str, object]:
        """Apply a put whose writer observed ``base``.

        Accepted iff ``base`` includes the master vector of every object
        in the package (no concurrent write happened since the writer's
        last read).  Raises :class:`ConsistencyError` on conflict.
        """
        conflicts = [
            entry.obi_id
            for entry in package.entries
            if not base.includes(self._vectors.setdefault(entry.obi_id, VersionVector()))
        ]
        if conflicts:
            raise ConsistencyError(
                f"concurrent update detected for {sorted(conflicts)}; "
                "pull fresh state, resolve, and retry"
            )
        versions = apply_put(self._site, package)
        merged: dict[str, VersionVector] = {}
        for entry in package.entries:
            vector = self._vectors[entry.obi_id].merge(base).bump(writer_site)
            self._vectors[entry.obi_id] = vector
            merged[entry.obi_id] = vector.copy()
        return {"versions": versions, "vectors": merged}

    def vector_put_delta(
        self, package: "PutDeltaPackage", base: VersionVector, writer_site: str
    ) -> "dict[str, object] | NeedFull":
        """Delta-encoded :meth:`vector_put`: same concurrency check,
        vectors stamped only when the merge applies.

        ``NeedFull`` leaves the vectors untouched — the consumer retries
        with a full-state ``vector_put`` under the same base vector.
        """
        conflicts = [
            entry.obi_id
            for entry in package.entries
            if not base.includes(self._vectors.setdefault(entry.obi_id, VersionVector()))
        ]
        if conflicts:
            raise ConsistencyError(
                f"concurrent update detected for {sorted(conflicts)}; "
                "pull fresh state, resolve, and retry"
            )
        versions = apply_put_delta(self._site, package)
        if isinstance(versions, NeedFull):
            return versions
        merged: dict[str, VersionVector] = {}
        for entry in package.entries:
            vector = self._vectors[entry.obi_id].merge(base).bump(writer_site)
            self._vectors[entry.obi_id] = vector
            merged[entry.obi_id] = vector.copy()
        return {"versions": versions, "vectors": merged}

    def fresh_state(self, oid: str) -> dict[str, object]:
        """The master's current state dict and vector, for conflict
        resolution on the consumer side."""
        master = self._site.master_object_for(oid)
        if master is None:
            raise ConsistencyError(f"no master {oid!r} at site {self._site.name!r}")
        state = {
            key: value
            for key, value in vars(master).items()
            if not _holds_obiwan(value)
        }
        return {"state": state, "vector": self.vector_of(oid)}

    @classmethod
    def export_on(cls, site: "Site", *, name: str = "vector-coordinator") -> "VectorCoordinator":
        coordinator = cls(site)
        ref = site.endpoint.export(coordinator, interface="IVectorCoordinator")
        site.naming.rebind(name, ref)
        return coordinator


def _holds_obiwan(value: object) -> bool:
    """True if a state value contains OBIWAN references (which cannot be
    shipped through ``fresh_state``'s plain-dict channel)."""
    from repro.core.graphwalk import _scan  # local import avoids a cycle

    return next(_scan(value), None) is not None


class VectorReplica(ConsistencyProtocol):
    """Consumer-side vector protocol with resolver-driven retries."""

    def __init__(
        self,
        site: "Site",
        coordinator_ref: RemoteRef | str = "vector-coordinator",
        *,
        resolver: Resolver | None = None,
    ):
        super().__init__(site)
        if isinstance(coordinator_ref, str):
            coordinator_ref = site.naming.lookup(coordinator_ref)
        self._coordinator = site.endpoint.stub(coordinator_ref, VECTOR_COORDINATOR_METHODS)
        self._resolver = resolver
        self._base: dict[str, VersionVector] = {}

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    def track(self, replica: object) -> object:
        """Start tracking a replica: record the master vector as base."""
        oid = obi_id_of(replica)
        self._base[oid] = self._coordinator.vector_of(oid)
        return replica

    def read(self, replica: object) -> object:
        return replica

    def write_back(self, replica: object) -> object:
        """Vector-validated put; on conflict, resolve and retry once."""
        oid = obi_id_of(replica)
        base = self._base.get(oid)
        if base is None:
            raise ConsistencyError(
                f"replica {oid!r} is not tracked; call track() after replicating"
            )
        try:
            result = self._push(replica, base)
        except ConsistencyError:
            if self._resolver is None:
                raise
            fresh = self._coordinator.fresh_state(oid)
            self._resolver(replica, fresh["state"])
            merged_base = base.merge(fresh["vector"])
            result = self._push(replica, merged_base)
        self._base[oid] = result["vectors"][oid]
        info = self.site.replica_info(oid)
        if info is not None:
            info.version = result["versions"][oid]
        return replica

    def base_vector(self, replica: object) -> VersionVector | None:
        return self._base.get(obi_id_of(replica))

    def _push(self, replica: object, base: VersionVector) -> dict:
        site = self.site
        if site.delta_sync:
            snap = site.dirty_tracker.capture(replica)
            if snap is not None and not snap.whole and not snap.clean:
                package = build_put_delta(site, [(replica, snap.fields)])
                result = self._coordinator.vector_put_delta(package, base, site.name)
                if not isinstance(result, NeedFull):
                    site.dirty_tracker.commit(replica, snap)
                    site.sync_stats.add(puts_delta=1)
                    return result
                site.sync_stats.add(need_full_downgrades=1)
        package = build_put(site, [replica])
        result = self._coordinator.vector_put(package, base, site.name)
        if site.delta_sync:
            site.dirty_tracker.enroll(replica)
            site.sync_stats.add(puts_full=1)
        return result
