"""Epidemic update dissemination.

The push counterpart of invalidation: when a put is applied, the master
builds a fresh one-object replica package and *casts* it to every
subscribed holder, which integrates it immediately.  Holders therefore
converge without polling — the paper's "updates dissemination" hook.

Compared to invalidation this trades bandwidth (full state pushed) for
read latency (holders are always fresh); the ablation benchmark
``ablate-consistency`` quantifies the trade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.consistency.base import ConsistencyProtocol
from repro.core.interfaces import Incremental
from repro.core.meta import obi_id_of
from repro.core.replication import build_package, integrate_package
from repro.rmi.refs import RemoteRef
from repro.util.errors import TransportError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.packages import ReplicaPackage
    from repro.core.runtime import Site

DISSEMINATOR_METHODS = ("subscribe", "unsubscribe", "subscriber_count")
SUBSCRIBER_METHODS = ("apply_update",)


class UpdateDisseminator:
    """Master-side: push fresh state to subscribers after every put."""

    def __init__(self, site: "Site"):
        self._site = site
        #: oid → {site_id → subscriber listener ref}
        self._subscribers: dict[str, dict[str, RemoteRef]] = {}
        site.events.subscribe("put_applied", self._on_put_applied)

    # ------------------------------------------------------------------
    # remote surface
    # ------------------------------------------------------------------
    def subscribe(self, oid: str, listener: RemoteRef) -> None:
        self._subscribers.setdefault(oid, {})[listener.site_id] = listener

    def unsubscribe(self, oid: str, site_id: str) -> None:
        self._subscribers.get(oid, {}).pop(site_id, None)

    def subscriber_count(self, oid: str) -> int:
        return len(self._subscribers.get(oid, {}))

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------
    def _on_put_applied(self, *, site: "Site", oid: str, version: int) -> None:
        listeners = list(self._subscribers.get(oid, {}).values())
        if not listeners:
            return
        master = self._site.master_object_for(oid)
        if master is None:
            return
        package = build_package(self._site, master, Incremental(1))
        for listener in listeners:
            try:
                self._site.endpoint.invoke_oneway(listener, "apply_update", (package,))
            except TransportError:
                continue  # offline subscriber converges on reconnect

    @classmethod
    def export_on(cls, site: "Site", *, name: str = "update-disseminator") -> "UpdateDisseminator":
        disseminator = cls(site)
        ref = site.endpoint.export(disseminator, interface="IUpdateDisseminator")
        site.naming.rebind(name, ref)
        return disseminator


class UpdateSubscriber(ConsistencyProtocol):
    """Consumer side: integrates pushed updates as they arrive."""

    def __init__(self, site: "Site", disseminator_ref: RemoteRef | str = "update-disseminator"):
        super().__init__(site)
        if isinstance(disseminator_ref, str):
            disseminator_ref = site.naming.lookup(disseminator_ref)
        self._disseminator = site.endpoint.stub(disseminator_ref, DISSEMINATOR_METHODS)
        self._listener_ref = site.endpoint.export(self, interface="IUpdateSubscriber")
        self.updates_received = 0

    # ------------------------------------------------------------------
    # remote surface (called by the disseminator, one-way)
    # ------------------------------------------------------------------
    def apply_update(self, package: "ReplicaPackage") -> None:
        integrate_package(self.site, package)
        self.updates_received += 1

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    def track(self, replica: object) -> object:
        self._disseminator.subscribe(obi_id_of(replica), self._listener_ref)
        return replica

    def read(self, replica: object) -> object:
        return replica  # pushed updates keep it fresh

    def write_back(self, replica: object) -> object:
        version = self.site.put_back(replica)
        info = self.site.replica_info(obi_id_of(replica))
        if info is not None:
            info.version = version
        return replica
