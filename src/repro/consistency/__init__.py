"""The consistency-protocol library.

The paper deliberately leaves replica consistency to the programmer:
"he may simply use a library of specific consistency protocols written by
any other programmer.  We plan to develop such libraries for well known
consistency policies."  This package is that library.

Each protocol builds on the core ``get``/``put``/version machinery and
never changes it — exactly the hook-based design the paper describes:

=====================  ====================================================
:mod:`~repro.consistency.manual`        the paper's default: explicit pull/push
:mod:`~repro.consistency.lww`           last-writer-wins timestamped puts
:mod:`~repro.consistency.vector`        version vectors with conflict detection
:mod:`~repro.consistency.invalidation`  master-pushed invalidation callbacks
:mod:`~repro.consistency.lease`         time-bounded staleness (leases)
:mod:`~repro.consistency.epidemic`      update dissemination to subscribers
=====================  ====================================================
"""

from repro.consistency.base import ConsistencyProtocol, ReadPolicy
from repro.consistency.epidemic import UpdateDisseminator, UpdateSubscriber
from repro.consistency.invalidation import InvalidationConsumer, InvalidationMaster
from repro.consistency.lease import LeaseConsistency
from repro.consistency.lww import LwwCoordinator, LwwReplica
from repro.consistency.manual import ManualConsistency
from repro.consistency.vector import VersionVector, VectorCoordinator, VectorReplica

__all__ = [
    "ConsistencyProtocol",
    "ReadPolicy",
    "ManualConsistency",
    "LwwCoordinator",
    "LwwReplica",
    "VersionVector",
    "VectorCoordinator",
    "VectorReplica",
    "InvalidationMaster",
    "InvalidationConsumer",
    "LeaseConsistency",
    "UpdateDisseminator",
    "UpdateSubscriber",
]
