"""Last-writer-wins consistency.

Every write-back carries a timestamp; the master applies a put only if it
is newer than the last applied write for that object.  Losing writes are
rejected, not merged — the classic LWW register, adequate for the paper's
"relaxed" collaborative scenarios (agendas, catalogues) where the newest
version is the right answer.

Deployment: the master site exports one :class:`LwwCoordinator`;
consumers wrap their replicas with :class:`LwwReplica`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.consistency.base import ConsistencyProtocol
from repro.core.meta import obi_id_of
from repro.core.replication import apply_put, apply_put_delta, build_put, build_put_delta
from repro.rmi.protocol import NeedFull
from repro.rmi.refs import RemoteRef
from repro.util.errors import ConsistencyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.packages import PutDeltaPackage, PutPackage
    from repro.core.runtime import Site

#: Methods exposed by a coordinator stub.
LWW_COORDINATOR_METHODS = ("try_put", "try_put_delta", "last_write_at")


class LwwCoordinator:
    """Master-side arbiter: applies only the newest write per object."""

    def __init__(self, site: "Site"):
        self._site = site
        self._last_write: dict[str, float] = {}

    def try_put(self, package: "PutPackage", timestamp: float) -> dict[str, int]:
        """Apply ``package`` if it is the newest write for all its objects.

        Returns the new versions; raises :class:`ConsistencyError` when an
        equal-or-newer write was already applied (ties reject — with one
        shared simulated clock a tie is a genuine concurrent write).
        """
        stale = [
            entry.obi_id
            for entry in package.entries
            if timestamp <= self._last_write.get(entry.obi_id, float("-inf"))
        ]
        if stale:
            raise ConsistencyError(
                f"last-writer-wins rejected write at t={timestamp}: objects "
                f"{sorted(stale)} already have newer state"
            )
        versions = apply_put(self._site, package)
        for entry in package.entries:
            self._last_write[entry.obi_id] = timestamp
        return versions

    def try_put_delta(
        self, package: "PutDeltaPackage", timestamp: float
    ) -> "dict[str, int] | NeedFull":
        """Delta-encoded :meth:`try_put`: same LWW arbitration, stamped
        only when the merge actually applies.

        A ``NeedFull`` answer (version or fingerprint mismatch at the
        master) leaves the LWW register untouched — the consumer's
        full-state retry through :meth:`try_put` gets the timestamp.
        """
        stale = [
            entry.obi_id
            for entry in package.entries
            if timestamp <= self._last_write.get(entry.obi_id, float("-inf"))
        ]
        if stale:
            raise ConsistencyError(
                f"last-writer-wins rejected write at t={timestamp}: objects "
                f"{sorted(stale)} already have newer state"
            )
        result = apply_put_delta(self._site, package)
        if isinstance(result, NeedFull):
            return result
        for entry in package.entries:
            self._last_write[entry.obi_id] = timestamp
        return result

    def last_write_at(self, oid: str) -> float | None:
        return self._last_write.get(oid)

    @classmethod
    def export_on(cls, site: "Site", *, name: str = "lww-coordinator") -> "LwwCoordinator":
        """Create, export and name-bind a coordinator on ``site``."""
        coordinator = cls(site)
        ref = site.endpoint.export(coordinator, interface="ILwwCoordinator")
        site.naming.rebind(name, ref)
        return coordinator


class LwwReplica(ConsistencyProtocol):
    """Consumer-side LWW: write-backs go through the coordinator."""

    def __init__(self, site: "Site", coordinator_ref: RemoteRef | str = "lww-coordinator"):
        super().__init__(site)
        if isinstance(coordinator_ref, str):
            coordinator_ref = site.naming.lookup(coordinator_ref)
        self._coordinator = site.endpoint.stub(coordinator_ref, LWW_COORDINATOR_METHODS)

    def read(self, replica: object) -> object:
        return replica

    def write_back(self, replica: object) -> object:
        """Timestamped put; rejected writes surface as ConsistencyError.

        With the site's delta knob on, dirty fields travel through
        ``try_put_delta``; ``NEED_FULL`` (and whole-object fallbacks)
        downgrade to the full-state ``try_put``.
        """
        site = self.site
        oid = obi_id_of(replica)
        if site.delta_sync:
            snap = site.dirty_tracker.capture(replica)
            if snap is not None and not snap.whole and not snap.clean:
                package = build_put_delta(site, [(replica, snap.fields)])
                result = self._coordinator.try_put_delta(package, site.clock.now())
                if not isinstance(result, NeedFull):
                    info = site.replica_info(oid)
                    if info is not None:
                        info.version = result[oid]
                    site.dirty_tracker.commit(replica, snap)
                    site.sync_stats.add(puts_delta=1)
                    return replica
                site.sync_stats.add(need_full_downgrades=1)
        package = build_put(site, [replica])
        versions = self._coordinator.try_put(package, site.clock.now())
        info = site.replica_info(oid)
        if info is not None:
            info.version = versions[oid]
        if site.delta_sync:
            site.dirty_tracker.enroll(replica)
            site.sync_stats.add(puts_full=1)
        return replica
