"""Last-writer-wins consistency.

Every write-back carries a timestamp; the master applies a put only if it
is newer than the last applied write for that object.  Losing writes are
rejected, not merged — the classic LWW register, adequate for the paper's
"relaxed" collaborative scenarios (agendas, catalogues) where the newest
version is the right answer.

Deployment: the master site exports one :class:`LwwCoordinator`;
consumers wrap their replicas with :class:`LwwReplica`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.consistency.base import ConsistencyProtocol
from repro.core.meta import obi_id_of
from repro.core.replication import apply_put, build_put
from repro.rmi.refs import RemoteRef
from repro.util.errors import ConsistencyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.packages import PutPackage
    from repro.core.runtime import Site

#: Methods exposed by a coordinator stub.
LWW_COORDINATOR_METHODS = ("try_put", "last_write_at")


class LwwCoordinator:
    """Master-side arbiter: applies only the newest write per object."""

    def __init__(self, site: "Site"):
        self._site = site
        self._last_write: dict[str, float] = {}

    def try_put(self, package: "PutPackage", timestamp: float) -> dict[str, int]:
        """Apply ``package`` if it is the newest write for all its objects.

        Returns the new versions; raises :class:`ConsistencyError` when an
        equal-or-newer write was already applied (ties reject — with one
        shared simulated clock a tie is a genuine concurrent write).
        """
        stale = [
            entry.obi_id
            for entry in package.entries
            if timestamp <= self._last_write.get(entry.obi_id, float("-inf"))
        ]
        if stale:
            raise ConsistencyError(
                f"last-writer-wins rejected write at t={timestamp}: objects "
                f"{sorted(stale)} already have newer state"
            )
        versions = apply_put(self._site, package)
        for entry in package.entries:
            self._last_write[entry.obi_id] = timestamp
        return versions

    def last_write_at(self, oid: str) -> float | None:
        return self._last_write.get(oid)

    @classmethod
    def export_on(cls, site: "Site", *, name: str = "lww-coordinator") -> "LwwCoordinator":
        """Create, export and name-bind a coordinator on ``site``."""
        coordinator = cls(site)
        ref = site.endpoint.export(coordinator, interface="ILwwCoordinator")
        site.naming.rebind(name, ref)
        return coordinator


class LwwReplica(ConsistencyProtocol):
    """Consumer-side LWW: write-backs go through the coordinator."""

    def __init__(self, site: "Site", coordinator_ref: RemoteRef | str = "lww-coordinator"):
        super().__init__(site)
        if isinstance(coordinator_ref, str):
            coordinator_ref = site.naming.lookup(coordinator_ref)
        self._coordinator = site.endpoint.stub(coordinator_ref, LWW_COORDINATOR_METHODS)

    def read(self, replica: object) -> object:
        return replica

    def write_back(self, replica: object) -> object:
        """Timestamped put; rejected writes surface as ConsistencyError."""
        package = build_put(self.site, [replica])
        versions = self._coordinator.try_put(package, self.site.clock.now())
        info = self.site.replica_info(obi_id_of(replica))
        if info is not None:
            info.version = versions[obi_id_of(replica)]
        return replica
