"""Manual consistency — the paper's default regime.

"We leave the responsibility of maintaining (or not) the consistency of
replicas to the programmer": a replica is refreshed when the application
calls :meth:`pull` and the master is updated when it calls :meth:`push`.
This thin protocol exists so applications written against the
:class:`~repro.consistency.base.ConsistencyProtocol` surface can start
with the paper's semantics and swap in a stronger policy later.
"""

from __future__ import annotations

from repro.consistency.base import ConsistencyProtocol


class ManualConsistency(ConsistencyProtocol):
    """Explicit ``get``/``put``, nothing implicit."""

    def read(self, replica: object) -> object:
        """Reads always serve the local replica, however stale."""
        return replica

    def write_back(self, replica: object) -> object:
        """Writes reach the master only on explicit push."""
        return replica

    # ------------------------------------------------------------------
    # the explicit verbs
    # ------------------------------------------------------------------
    def pull(self, replica: object) -> object:
        """Refresh the replica from its master (the paper's ``get``)."""
        return self.site.refresh(replica)

    def push(self, replica: object) -> int:
        """Update the master from the replica (the paper's ``put``)."""
        return self.site.put_back(replica)
