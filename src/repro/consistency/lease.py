"""Lease-based consistency: time-bounded staleness.

Each protocol-mediated fetch grants the replica a lease of ``duration``
seconds on the site clock.  Reads within the lease are served locally at
LMI speed; a read after expiry renews (refreshes) or raises, per policy.
Leases need no master cooperation at all — the cheapest freshness bound
available to a mobile consumer, and the natural fit for the paper's
variable-quality-of-service scenario: lengthen the lease when the link
gets expensive, shorten it when it is cheap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.consistency.base import ConsistencyProtocol, ReadPolicy
from repro.core.meta import obi_id_of
from repro.util.errors import StaleReplicaError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site


class LeaseConsistency(ConsistencyProtocol):
    """Consumer-side leases on replicas."""

    def __init__(
        self,
        site: "Site",
        *,
        duration: float,
        policy: ReadPolicy = ReadPolicy.REFRESH,
    ):
        super().__init__(site)
        if duration <= 0:
            raise ValueError("lease duration must be positive")
        self.duration = duration
        self.policy = policy

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    def track(self, replica: object) -> object:
        """Grant the initial lease (call right after replicating)."""
        self._grant(replica)
        return replica

    def read(self, replica: object) -> object:
        record = self.site.replica_info(obi_id_of(replica))
        if record is None:
            return replica
        expires = record.lease_expires_at
        if expires is None:
            # Never leased: treat as expired so the first protocol read
            # establishes a lease.
            expires = float("-inf")
        if self.site.clock.now() <= expires:
            return replica
        if self.policy is ReadPolicy.SERVE_STALE:
            return replica
        if self.policy is ReadPolicy.RAISE:
            raise StaleReplicaError(
                f"lease on replica {obi_id_of(replica)!r} expired at t={expires:.6f}"
            )
        refreshed = self.site.refresh(replica)
        self._grant(refreshed)
        return refreshed

    def write_back(self, replica: object) -> object:
        self.site.put_back(replica)
        self._grant(replica)  # our write is trivially fresh
        return replica

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def remaining(self, replica: object) -> float:
        """Seconds of lease left (negative when expired, -inf if never
        leased)."""
        record = self.site.replica_info(obi_id_of(replica))
        if record is None or record.lease_expires_at is None:
            return float("-inf")
        return record.lease_expires_at - self.site.clock.now()

    def _grant(self, replica: object) -> None:
        record = self.site.replica_info(obi_id_of(replica))
        if record is not None:
            record.lease_expires_at = self.site.clock.now() + self.duration
