"""Invalidation-based consistency.

The master keeps a registry of which sites hold replicas of each object.
When a put is applied, the master pushes one-way *invalidate* messages to
every other holder; their replicas are marked stale, and the next
protocol-mediated read either refreshes transparently, raises, or serves
stale — per the consumer's :class:`~repro.consistency.base.ReadPolicy`.

This is the callback scheme of client-server object caches (Thor's
lineage, which the paper discusses as related work) expressed over
OBIWAN's proxy-in/put machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.consistency.base import ConsistencyProtocol, ReadPolicy
from repro.core.meta import obi_id_of
from repro.rmi.refs import RemoteRef
from repro.util.errors import ConsistencyError, StaleReplicaError, TransportError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site

INVALIDATION_MASTER_METHODS = ("subscribe", "unsubscribe", "holders_of")
INVALIDATION_CONSUMER_METHODS = ("invalidate",)


class InvalidationMaster:
    """Master-side holder registry and invalidation fan-out."""

    def __init__(self, site: "Site"):
        self._site = site
        #: oid → {site_id → consumer listener ref}
        self._holders: dict[str, dict[str, RemoteRef]] = {}
        site.events.subscribe("put_applied", self._on_put_applied)

    # ------------------------------------------------------------------
    # remote surface (called by consumers)
    # ------------------------------------------------------------------
    def subscribe(self, oid: str, listener: RemoteRef) -> None:
        """Register a consumer's listener for invalidations of ``oid``."""
        self._holders.setdefault(oid, {})[listener.site_id] = listener

    def unsubscribe(self, oid: str, site_id: str) -> None:
        self._holders.get(oid, {}).pop(site_id, None)

    def holders_of(self, oid: str) -> list[str]:
        return sorted(self._holders.get(oid, {}))

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------
    def _on_put_applied(self, *, site: "Site", oid: str, version: int) -> None:
        for listener in list(self._holders.get(oid, {}).values()):
            try:
                self._site.endpoint.invoke_oneway(listener, "invalidate", (oid, version))
            except TransportError:
                # A disconnected holder keeps its stale replica; it will
                # discover the staleness when it reconnects and reads.
                continue

    @classmethod
    def export_on(cls, site: "Site", *, name: str = "invalidation-master") -> "InvalidationMaster":
        master = cls(site)
        ref = site.endpoint.export(master, interface="IInvalidationMaster")
        site.naming.rebind(name, ref)
        return master


class InvalidationConsumer(ConsistencyProtocol):
    """Consumer side: receives invalidations, polices reads."""

    def __init__(
        self,
        site: "Site",
        master_ref: RemoteRef | str = "invalidation-master",
        *,
        policy: ReadPolicy = ReadPolicy.REFRESH,
    ):
        super().__init__(site)
        self.policy = policy
        if isinstance(master_ref, str):
            master_ref = site.naming.lookup(master_ref)
        self._master = site.endpoint.stub(master_ref, INVALIDATION_MASTER_METHODS)
        self._listener_ref = site.endpoint.export(self, interface="IInvalidationListener")
        self._invalidated_versions: dict[str, int] = {}

    # ------------------------------------------------------------------
    # remote surface (called by the master, one-way)
    # ------------------------------------------------------------------
    def invalidate(self, oid: str, version: int) -> None:
        record = self.site.replica_info(oid)
        if record is not None:
            record.invalidated = True
        self._invalidated_versions[oid] = version

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    def track(self, replica: object) -> object:
        """Subscribe this site to invalidations for ``replica``."""
        self._master.subscribe(obi_id_of(replica), self._listener_ref)
        return replica

    def read(self, replica: object) -> object:
        oid = obi_id_of(replica)
        record = self.site.replica_info(oid)
        if record is None or not record.invalidated:
            return replica
        if self.policy is ReadPolicy.SERVE_STALE:
            return replica
        if self.policy is ReadPolicy.RAISE:
            raise StaleReplicaError(
                f"replica {oid!r} was invalidated at master version "
                f"{self._invalidated_versions.get(oid)}"
            )
        refreshed = self.site.refresh(replica)
        record.invalidated = False
        return refreshed

    def write_back(self, replica: object) -> object:
        version = self.site.put_back(replica)
        record = self.site.replica_info(obi_id_of(replica))
        if record is not None:
            # Our own write produced this master version; the echo of our
            # own invalidation (if any raced in) is obsolete.
            record.invalidated = False
            record.version = version
        return replica

    def is_stale(self, replica: object) -> bool:
        record = self.site.replica_info(obi_id_of(replica))
        return bool(record and record.invalidated)


def require_fresh(consumer: InvalidationConsumer, replica: object) -> object:
    """Read with a one-off RAISE policy regardless of the configured one."""
    if consumer.is_stale(replica):
        raise ConsistencyError(
            f"replica {obi_id_of(replica)!r} is stale and freshness was required"
        )
    return replica
