"""Common vocabulary for consistency protocols."""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site


class ReadPolicy(enum.Enum):
    """What a consumer-side protocol does when a replica is unusable
    (invalidated, lease expired, known stale)."""

    #: Transparently refresh from the master, then serve the read.
    REFRESH = "refresh"
    #: Raise :class:`~repro.util.errors.StaleReplicaError` and let the
    #: application decide (the mobile fallback path often *wants* stale).
    RAISE = "raise"
    #: Serve the stale value silently (availability over freshness).
    SERVE_STALE = "serve-stale"


class ConsistencyProtocol(ABC):
    """A consumer-side protocol attached to one site.

    Concrete protocols expose richer APIs; this base class fixes the two
    verbs every one of them shares so applications can swap protocols
    without changing call sites.
    """

    def __init__(self, site: "Site"):
        self.site = site

    @abstractmethod
    def read(self, replica: object) -> object:
        """Return a replica that is fit to read under this protocol."""

    @abstractmethod
    def write_back(self, replica: object) -> object:
        """Propagate a replica's local modifications under this protocol."""

    @property
    def name(self) -> str:
        return type(self).__name__
