"""The public OBIWAN API — everything an application needs in one import.

::

    from repro import obiwan

    @obiwan.compile
    class Agenda:
        def __init__(self):
            self.entries = []
        def add(self, text):
            self.entries.append(text)
        def all(self):
            return list(self.entries)

    world = obiwan.World.loopback()
    office = world.create_site("office-pc")
    pda = world.create_site("pda")

    office.export(Agenda(), name="agenda")

    stub = pda.remote_stub("agenda")            # RMI: every call remote
    replica = pda.replicate("agenda")           # LMI: calls run locally
    replica.add("buy milk")
    pda.put_back(replica)                       # push state to the master

The run-time RMI/LMI choice, the replication ``mode`` argument
(:func:`Incremental`, :func:`Transitive`, :func:`Cluster`) and the
``put_back``/``refresh`` pair are the paper's programming model.
"""

from repro.core.costs import CostModel
from repro.core.interfaces import (
    Cluster,
    Incremental,
    Interface,
    ReplicationMode,
    Transitive,
)
from repro.core.meta import interface_of, is_obiwan, obi_id_of
from repro.core.obicomp import (
    compile_class,
    derive_interface,
    emit_module,
    emit_proxy_source,
    port_legacy_class,
    port_rmi_class,
)
from repro.core.dgc import DgcClient, DgcServer
from repro.core.gc_global import MasterCollector
from repro.core.proxy_out import ProxyOutBase
from repro.core.runtime import Site, World
from repro.rmi.acl import AccessGuard, AccessPolicy
from repro.core.telemetry import TelemetrySnapshot, snapshot
from repro.simnet.link import LAN_10MBPS, LOCAL, WAN, WIRELESS_GPRS, WIRELESS_WLAN, Link
from repro.util.log import SiteLogger
from repro.util.errors import (
    ClusterError,
    DisconnectedError,
    EncapsulationError,
    ObiwanError,
    ObjectFaultError,
    ReplicationError,
    SecurityError,
    StaleReplicaError,
    TransactionAborted,
)

#: The decorator applications put on their classes (the obicomp run).
compile = compile_class

__all__ = [
    "World",
    "Site",
    "compile",
    "compile_class",
    "Incremental",
    "Transitive",
    "Cluster",
    "ReplicationMode",
    "Interface",
    "CostModel",
    "ProxyOutBase",
    "DgcServer",
    "DgcClient",
    "MasterCollector",
    "snapshot",
    "TelemetrySnapshot",
    "SiteLogger",
    "is_obiwan",
    "obi_id_of",
    "interface_of",
    "derive_interface",
    "port_legacy_class",
    "port_rmi_class",
    "emit_module",
    "emit_proxy_source",
    "Link",
    "LOCAL",
    "LAN_10MBPS",
    "WAN",
    "WIRELESS_WLAN",
    "WIRELESS_GPRS",
    "AccessPolicy",
    "AccessGuard",
    "ObiwanError",
    "ReplicationError",
    "ObjectFaultError",
    "EncapsulationError",
    "ClusterError",
    "DisconnectedError",
    "SecurityError",
    "StaleReplicaError",
    "TransactionAborted",
]
