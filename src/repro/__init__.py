"""OBIWAN reproduction: incremental replication for mobility support.

This package reimplements, in Python, the OBIWAN middleware described in
Veiga & Ferreira, *Incremental Replication for Mobility Support in OBIWAN*
(ICDCS 2002 Workshops).  OBIWAN lets a distributed application decide at run
time whether an object is invoked remotely (RMI) or locally on a replica
(LMI), and replicates object graphs incrementally through proxy-out /
proxy-in pairs with automatic object-fault detection and resolution.

The package layers are, bottom-up:

``repro.util``
    Clocks (wall and simulated), identifier generation, the exception
    hierarchy and byte-size accounting shared by every layer.
``repro.simnet``
    A message-level network substrate with pluggable transports: a
    deterministic simulated-time loopback, a threaded in-process transport
    and a localhost TCP transport, all with latency/bandwidth link models
    and partition injection.
``repro.serial``
    A cycle-safe object-graph serializer with swizzle hooks, used to move
    replica state between sites (replicas are always true copies).
``repro.rmi``
    The remote-method-invocation substrate: name server, remote references,
    skeletons and dynamic stubs.
``repro.core``
    The paper's contribution: proxy-in/proxy-out machinery, the incremental
    replication protocol, dynamic clusters and the ``obicomp`` class
    compiler.
``repro.consistency``
    The consistency-protocol library the paper leaves to the programmer:
    manual get/put, last-writer-wins, version vectors, invalidation, leases
    and epidemic dissemination.
``repro.mobility``
    Mobility support: connectivity management, hoarding, disconnected
    operation and relaxed (optimistic) transactions with reconciliation.
``repro.bench``
    The calibrated benchmark harness that regenerates every figure of the
    paper's evaluation.

Quickstart::

    from repro import obiwan

    world = obiwan.World.loopback()
    provider = world.create_site("S2")
    consumer = world.create_site("S1")

    @obiwan.compile
    class Counter:
        def __init__(self) -> None:
            self.value = 0
        def increment(self) -> int:
            self.value += 1
            return self.value

    master = provider.export(Counter(), name="counter")
    replica = consumer.replicate("counter")       # LMI from here on
    replica.increment()
    consumer.put_back(replica)                    # push state to master
"""

from repro import obiwan
from repro.version import __version__

__all__ = ["obiwan", "__version__"]
