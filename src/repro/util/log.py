"""Structured event logging for OBIWAN sites.

A :class:`SiteLogger` subscribes to a site's event bus and renders each
middleware event as one structured line, timestamped with the site's
clock (simulated time in simulations — so logs line up with benchmark
numbers).  Lines go to any writable stream and are kept in a bounded
in-memory ring for tests and postmortems.

Events covered: ``provider_exported``, ``replica_registered``,
``replica_refreshed``, ``fault_resolved``, ``put_applied``,
``connectivity_changed``.

When the emitting thread is inside a causal trace context (obitrace,
:mod:`repro.obs.context`), the line carries the active
``trace_id/span_id`` as a suffix, so logs grep-join against exported
traces.
"""

from __future__ import annotations

from collections import deque
from typing import IO, TYPE_CHECKING

from repro.obs.context import current as _current_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site


class SiteLogger:
    """Renders a site's middleware events as log lines."""

    #: topic → terse renderer(kwargs) -> str
    _RENDERERS = {
        "provider_exported": lambda kw: f"export {kw['oid']} as {kw['ref'].object_id}",
        "replica_registered": lambda kw: (
            f"replicate root={_safe_oid(kw.get('root'))} "
            f"objects={kw['package'].object_count} "
            f"pairs={kw['package'].pairs_created}"
        ),
        "replica_refreshed": lambda kw: f"refresh {_safe_oid(kw.get('replica'))}",
        "fault_resolved": lambda kw: (
            f"fault {kw['proxy']._obi_target_id} resolved"
        ),
        "put_applied": lambda kw: f"put {kw['oid']} -> v{kw['version']}",
        "connectivity_changed": lambda kw: (
            "online" if kw["online"] else
            f"offline ({'voluntary' if kw['voluntary'] else 'involuntary'})"
        ),
    }

    def __init__(self, site: "Site", *, stream: IO[str] | None = None, capacity: int = 1000):
        self.site = site
        self.stream = stream
        self.lines: deque[str] = deque(maxlen=capacity)
        self._unsubscribers = [
            site.events.subscribe(topic, self._handler(topic))
            for topic in self._RENDERERS
        ]

    def _handler(self, topic: str):
        renderer = self._RENDERERS[topic]

        def handle(**kwargs: object) -> None:
            line = (
                f"[{self.site.clock.now() * 1e3:10.3f}ms] "
                f"{self.site.name:>12s} {topic:<21s} {renderer(kwargs)}"
            )
            context = _current_trace()
            if context is not None:
                line += f"  [{context[0]}/{context[1]}]"
            self.lines.append(line)
            if self.stream is not None:
                self.stream.write(line + "\n")

        return handle

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def matching(self, text: str) -> list[str]:
        return [line for line in self.lines if text in line]

    def close(self) -> None:
        """Stop logging (unsubscribe from every topic)."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()

    def __len__(self) -> int:
        return len(self.lines)

    def __enter__(self) -> "SiteLogger":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _safe_oid(obj: object) -> str:
    from repro.core.meta import is_obiwan, peek_obi_id

    if obj is not None and is_obiwan(obj):
        return peek_obi_id(obj) or "?"
    return "?"
