"""A small synchronous event bus.

Used by the consistency layer (invalidation callbacks, update
dissemination) and the mobility layer (connectivity changes) to decouple
publishers from subscribers without threading the dependencies through
every constructor.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable

Handler = Callable[..., None]


class EventBus:
    """Synchronous publish/subscribe keyed by topic string.

    Handlers run in subscription order, in the caller's thread.  A handler
    exception propagates to the publisher — events here are control flow,
    not fire-and-forget logging, so silently swallowing failures would hide
    protocol bugs.
    """

    def __init__(self) -> None:
        self._handlers: dict[str, list[Handler]] = defaultdict(list)

    def subscribe(self, topic: str, handler: Handler) -> Callable[[], None]:
        """Register ``handler`` for ``topic``; returns an unsubscribe thunk."""
        self._handlers[topic].append(handler)

        def unsubscribe() -> None:
            try:
                self._handlers[topic].remove(handler)
            except ValueError:
                pass  # already unsubscribed

        return unsubscribe

    def publish(self, topic: str, *args: object, **kwargs: object) -> int:
        """Invoke every handler for ``topic``; returns how many ran."""
        handlers = list(self._handlers.get(topic, ()))
        for handler in handlers:
            handler(*args, **kwargs)
        return len(handlers)

    def subscriber_count(self, topic: str) -> int:
        return len(self._handlers.get(topic, ()))
