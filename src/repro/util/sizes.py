"""Byte-size estimation and formatting.

The cost model charges network time proportional to payload size, so the
substrate needs a cheap, deterministic estimate of how many bytes a value
occupies on the wire.  The authoritative number is the length of the
serialized frame (``repro.serial``), but several call sites need a quick
estimate before serialization — e.g. deciding whether a cluster fits a
memory budget on an info-appliance.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence, Set

#: Fixed per-value envelope overhead, approximating type tags and length
#: prefixes of the wire format.
_ENVELOPE = 8


def estimate_payload_size(value: object) -> int:
    """Estimate the wire size of ``value`` in bytes.

    Handles the primitive and container types the serializer supports.
    Objects with a ``__dict__`` are costed as a mapping of their attributes.
    Shared references are *not* deduplicated — this is an upper bound, which
    is the safe direction for memory budgeting.
    """
    return _estimate(value, seen=set())


def _estimate(value: object, seen: set[int]) -> int:
    if value is None or isinstance(value, bool):
        return _ENVELOPE
    if isinstance(value, int):
        return _ENVELOPE + max(1, (value.bit_length() + 7) // 8)
    if isinstance(value, float):
        return _ENVELOPE + 8
    if isinstance(value, bytes | bytearray):
        return _ENVELOPE + len(value)
    if isinstance(value, str):
        return _ENVELOPE + len(value.encode("utf-8"))
    if id(value) in seen:
        return _ENVELOPE  # back-reference
    seen.add(id(value))
    try:
        if isinstance(value, Mapping):
            return _ENVELOPE + sum(
                _estimate(k, seen) + _estimate(v, seen) for k, v in value.items()
            )
        if isinstance(value, Sequence | Set):
            return _ENVELOPE + sum(_estimate(item, seen) for item in value)
        attrs = getattr(value, "__dict__", None)
        if attrs is not None:
            return _ENVELOPE + _estimate(dict(attrs), seen)
        return _ENVELOPE + len(repr(value).encode("utf-8"))
    finally:
        seen.discard(id(value))


def format_bytes(count: int | float) -> str:
    """Render a byte count the way the paper labels its series.

    >>> format_bytes(64)
    '64 B'
    >>> format_bytes(1024)
    '1 KB'
    >>> format_bytes(65536)
    '64 KB'
    """
    count = float(count)
    for unit in ("B", "KB", "MB", "GB"):
        if count < 1024 or unit == "GB":
            if count == int(count):
                return f"{int(count)} {unit}"
            return f"{count:.1f} {unit}"
        count /= 1024
    raise AssertionError("unreachable")
