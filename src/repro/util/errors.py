"""Exception hierarchy for the OBIWAN reproduction.

All library exceptions derive from :class:`ObiwanError` so applications can
catch middleware failures with a single ``except`` clause, mirroring how the
Java prototype funnels failures through ``RemoteException`` subtypes.

The hierarchy distinguishes the layers:

* transport-level problems (:class:`TransportError`, :class:`DisconnectedError`)
* invocation-level problems (:class:`RemoteError`, :class:`NameNotFoundError`)
* replication-level problems (:class:`ReplicationError` and friends)
* consistency/transaction problems (:class:`ConsistencyError`,
  :class:`TransactionAborted`)
"""

from __future__ import annotations


class ObiwanError(Exception):
    """Base class for every error raised by the OBIWAN reproduction."""


class TransportError(ObiwanError):
    """A message could not be delivered by the network substrate."""


class DisconnectedError(TransportError):
    """The destination site is unreachable (partition or disconnection).

    The paper's motivating scenario: in mobile wide-area networks this is a
    frequent, expected condition rather than a fatal failure.  The mobility
    layer catches this error to fall back on local replicas.
    """

    def __init__(self, message: str = "site is disconnected", *, voluntary: bool | None = None):
        super().__init__(message)
        #: ``True`` if the disconnection was requested by the user (e.g. to
        #: save connection cost), ``False`` if caused by the environment,
        #: ``None`` if unknown at the failure point.
        self.voluntary = voluntary


class ProtocolError(ObiwanError):
    """A malformed or unexpected message reached an endpoint."""


class SerializationError(ObiwanError):
    """An object graph could not be encoded or decoded."""


class RemoteError(ObiwanError):
    """A remote invocation failed at the remote site.

    Wraps the remote exception's type name and message, like Java RMI wraps
    server-side throwables.  The original traceback text is preserved in
    :attr:`remote_traceback` for diagnosis.
    """

    def __init__(self, message: str, *, remote_type: str = "", remote_traceback: str = ""):
        super().__init__(message)
        self.remote_type = remote_type
        self.remote_traceback = remote_traceback


class NameNotFoundError(ObiwanError):
    """A name-server lookup failed."""


class ReplicationError(ObiwanError):
    """The replication engine could not create or refresh a replica."""


class TruncatedFrameError(SerializationError, ReplicationError):
    """A wire frame ended before its own structure said it would.

    Raised by the decoder (reflective and compiled paths alike) whenever a
    read runs past the end of the buffer — a short TCP read, a sliced
    payload, or a sender that crashed mid-encode.  Derives from both
    :class:`SerializationError` (existing decode-failure handlers keep
    working) and :class:`ReplicationError` (the replication engine treats
    a truncated replica frame as a failed refresh, not a codec bug).

    :attr:`offset` is where the read started, :attr:`wanted` how many
    bytes the frame structure asked for, :attr:`available` how many were
    left.
    """

    def __init__(self, message: str, *, offset: int = 0, wanted: int = 0, available: int = 0):
        super().__init__(message)
        self.offset = offset
        self.wanted = wanted
        self.available = available


class UnknownWireTagError(SerializationError):
    """The decoder met a tag byte outside the tag table.

    Raised instead of silently misparsing: either the peer speaks a newer
    protocol (a tag this build does not know), or the stream is corrupt.
    :attr:`tag` carries the offending byte so negotiation layers can log
    and downgrade precisely.
    """

    def __init__(self, message: str, *, tag: int = -1):
        super().__init__(message)
        self.tag = tag


class UnknownReplicaError(ReplicationError):
    """A protocol message referenced an object id unknown at this site.

    Raised when a ``put`` (full or delta) targets an object that is not
    mastered at the receiving site, or when a version map returned by a
    master omits an object the consumer wrote back.  Subclasses
    :class:`ReplicationError` so existing handlers keep working; exists as
    its own type because the condition is usually a deployment bug (stale
    reference, dropped master) rather than a transient failure.
    """


class RetentionGapError(ReplicationError):
    """A serial range fell out of the change log's retention window.

    Raised by :meth:`repro.core.versions.ChangeLog.events_since` (and the
    strict :meth:`changed_fields`) when the journal can no longer prove it
    covers every event after the requested serial — the caller must fall
    back to a full-snapshot bootstrap instead of an incremental catch-up.
    :attr:`requested` is the serial the caller had, :attr:`earliest` /
    :attr:`latest` bound what the log still retains.
    """

    def __init__(self, message: str, *, requested: int = 0, earliest: int = 0, latest: int = 0):
        super().__init__(message)
        self.requested = requested
        self.earliest = earliest
        self.latest = latest


class FeedError(ReplicationError):
    """A change-feed operation failed (see :mod:`repro.feed`).

    Covers role mismatches (events sent to a site with no follower role),
    subscriptions against peers that do not speak the feed protocol, and
    write-throughs that could not be confirmed.
    """


class StaleEpochError(FeedError):
    """A feed frame carried an epoch older than the receiver's.

    After a failover promotion the group's epoch advances; a deposed
    primary that keeps pushing is rejected with this error so split-brain
    writes cannot land.  :attr:`frame_epoch` is what the frame carried,
    :attr:`current_epoch` what the receiver is on.
    """

    def __init__(self, message: str, *, frame_epoch: int = 0, current_epoch: int = 0):
        super().__init__(message)
        self.frame_epoch = frame_epoch
        self.current_epoch = current_epoch


class ObjectFaultError(ReplicationError):
    """An object fault could not be resolved.

    Raised when a proxy-out's ``demand`` cannot reach its provider, e.g.
    while disconnected with no hoarded replica available.
    """


class EncapsulationError(ObiwanError):
    """Direct state access attempted on a proxy-out.

    The paper (Section 2.1) requires objects behind proxies to be
    manipulated only through interface methods — the same restriction as
    ActiveX components and Java Beans.  Attribute access on a proxy-out has
    no meaning before the target is replicated, so we fail loudly.
    """


class ClusterError(ReplicationError):
    """A cluster replication request was invalid (bad depth, empty set, ...)."""


class ConsistencyError(ObiwanError):
    """A consistency protocol detected a violation it cannot resolve."""


class StaleReplicaError(ConsistencyError):
    """An operation required a fresh replica but the replica is stale.

    Raised by lease- and invalidation-based protocols when an invalidated or
    expired replica is used in a context that demands freshness.
    """


class SecurityError(ObiwanError):
    """A remote caller was denied access to an exported object.

    Raised by access guards (``repro.rmi.acl``) when the calling site is
    not allowed to invoke a method; crosses the wire losslessly so the
    caller sees the denial as a denial, not a generic remote failure.
    """


class TransactionAborted(ObiwanError):
    """A relaxed mobile transaction failed validation at commit time."""

    def __init__(self, message: str, *, conflicts: tuple = ()):  # type: ignore[type-arg]
        super().__init__(message)
        #: The conflicting (object id, expected version, actual version)
        #: triples discovered during validation.
        self.conflicts = tuple(conflicts)
