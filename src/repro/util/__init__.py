"""Utility kernel shared by every layer of the OBIWAN reproduction.

Exposes the pieces other packages need most often so call sites can write
``from repro.util import SimClock, new_object_id`` instead of reaching into
submodules.
"""

from repro.util.clock import Clock, SimClock, WallClock
from repro.util.errors import (
    ClusterError,
    ConsistencyError,
    DisconnectedError,
    EncapsulationError,
    NameNotFoundError,
    ObiwanError,
    ObjectFaultError,
    ProtocolError,
    RemoteError,
    ReplicationError,
    SerializationError,
    StaleReplicaError,
    TransactionAborted,
    TransportError,
)
from repro.util.events import EventBus
from repro.util.ids import IdGenerator, new_object_id, new_request_id, new_site_id
from repro.util.sizes import estimate_payload_size, format_bytes

__all__ = [
    "Clock",
    "SimClock",
    "WallClock",
    "ObiwanError",
    "TransportError",
    "RemoteError",
    "DisconnectedError",
    "SerializationError",
    "NameNotFoundError",
    "ReplicationError",
    "ObjectFaultError",
    "EncapsulationError",
    "ClusterError",
    "ConsistencyError",
    "StaleReplicaError",
    "TransactionAborted",
    "ProtocolError",
    "EventBus",
    "IdGenerator",
    "new_object_id",
    "new_site_id",
    "new_request_id",
    "estimate_payload_size",
    "format_bytes",
]
