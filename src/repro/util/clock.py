"""Clocks: wall-clock time and deterministic simulated time.

The paper's evaluation ran on a 2002 testbed (Pentium II/III, 10 Mb/s LAN,
JDK 1.x).  To reproduce the *shape* of its figures deterministically on any
machine, the benchmark harness charges modelled costs against a
:class:`SimClock` instead of measuring wall time.  The rest of the library is
clock-agnostic: every component takes a :class:`Clock` and only calls
:meth:`Clock.now` / :meth:`Clock.advance`.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod


def perf_ns() -> int:
    """Monotonic nanosecond counter for serializer micro-profiling.

    Telemetry wants real elapsed nanoseconds even inside simulated-time
    benchmark runs (a :class:`SimClock` measures modelled cost, not CPU
    cost), so this deliberately bypasses the Clock abstraction.  It is the
    only sanctioned ambient-time entry point besides the clocks below.
    """
    return time.perf_counter_ns()


class Clock(ABC):
    """Abstract time source measured in seconds."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""

    @abstractmethod
    def advance(self, seconds: float) -> None:
        """Charge ``seconds`` of elapsed time to the clock.

        For a wall clock this sleeps; for a simulated clock it simply moves
        the clock hand forward.  ``seconds`` must be non-negative.
        """

    def elapsed_since(self, start: float) -> float:
        """Convenience: seconds elapsed since a previous :meth:`now` value."""
        return self.now() - start


class WallClock(Clock):
    """Real time, backed by :func:`time.perf_counter`.

    ``advance`` sleeps, which makes code written against the cost model
    behave like a (slow) real system when wired to real transports.  Pass
    ``sleep=False`` to make ``advance`` a no-op — useful when real work
    already consumes the time being modelled.
    """

    def __init__(self, *, sleep: bool = False):
        self._origin = time.perf_counter()
        self._sleep = sleep

    def now(self) -> float:
        return time.perf_counter() - self._origin

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds!r} seconds")
        if self._sleep and seconds > 0:
            time.sleep(seconds)


class SimClock(Clock):
    """Deterministic simulated time.

    Thread-safe so that the threaded transport can share one simulated
    clock across sites; the loopback transport uses it single-threaded.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds!r} seconds")
        with self._lock:
            self._now += seconds

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock — handy between benchmark repetitions."""
        with self._lock:
            self._now = float(start)
