"""Identifier generation for sites, objects and requests.

Identifiers are short, human-readable strings with a type prefix
(``site:…``, ``obj:…``, ``req:…``).  They are generated from per-process
monotonic counters rather than UUIDs so that logs, test failures and
benchmark traces are stable and easy to read; uniqueness within one world
(one test, one benchmark run, one example) is all the middleware needs.
"""

from __future__ import annotations

import itertools
import threading


class IdGenerator:
    """Thread-safe monotonic id generator with a fixed prefix.

    >>> gen = IdGenerator("obj")
    >>> gen()
    'obj:1'
    >>> gen()
    'obj:2'
    """

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def __call__(self) -> str:
        with self._lock:
            return f"{self.prefix}:{next(self._counter)}"

    def reset(self) -> None:
        """Restart numbering — only for deterministic test setups."""
        with self._lock:
            self._counter = itertools.count(1)


_site_ids = IdGenerator("site")
_object_ids = IdGenerator("obj")
_request_ids = IdGenerator("req")
_trace_ids = IdGenerator("trace")
_span_ids = IdGenerator("span")


def new_site_id() -> str:
    """Return a fresh site identifier."""
    return _site_ids()


def new_object_id() -> str:
    """Return a fresh object identifier (used for masters and proxy-ins)."""
    return _object_ids()


def new_request_id() -> str:
    """Return a fresh request identifier for request/response matching."""
    return _request_ids()


def new_trace_id() -> str:
    """Return a fresh trace identifier (one causal cascade)."""
    return _trace_ids()


def new_span_id() -> str:
    """Return a fresh span identifier (one step within a trace)."""
    return _span_ids()
