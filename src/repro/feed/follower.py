"""The follower role: subscribe, tail, write through, promote.

A :class:`FeedFollower` registers with a primary's feed service and
mirrors every change into its own tables — as proxy-in-less master
records, so on promotion the mirrors *are* the new masters.  The
follower's cursor is its last applied journal serial:

* **Reconnect** re-subscribes from the cursor; the primary replays the
  journal tail (one frame per object, collapsed), or answers
  ``snapshot_needed`` when its retention window has gapped.
* **Bootstrap** asks for a snapshot-at-serial and applies it under the
  same version-monotonic guard live pushes use, so a brand-new follower
  joins a group under write load without anyone quiescing.
* **Write-through**: applications write at the follower by proxying the
  put to the primary's per-object proxy-in, then waiting until the
  write's own feed echo lands locally — a confirmed ``put_through`` is
  therefore durable at this follower, which is what makes
  highest-serial-wins failover lose zero acknowledged writes.
* **Promotion** bumps the epoch, re-attaches the site as a
  :class:`~repro.feed.primary.FeedPrimary`, exports proxy-ins for every
  mirror and rebinds the primary's names to them.

Every batch is epoch-guarded before any frame is applied (obiflow
OBI210): frames from a deposed primary are rejected with an ack carrying
the newer epoch, which tells the old primary to demote itself.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.core.meta import obi_id_of
from repro.core.negotiation import FEED, UNSUPPORTED, probe
from repro.core.packages import (
    FeedAck,
    FeedBatch,
    FeedSnapshotReply,
    FeedSnapshotRequest,
    FeedSubscribeRequest,
    PromoteReply,
    PromoteRequest,
)
from repro.core.replication import build_put
from repro.feed.apply import apply_feed_frame
from repro.feed.service import ensure_feed_service, feed_ref
from repro.util.errors import FeedError, StaleEpochError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packages import FeedFrame, FeedSubscribeReply
    from repro.core.runtime import Site
    from repro.rmi.refs import RemoteRef

#: How long a write-through waits for its own feed echo.
WRITE_CONFIRM_TIMEOUT_S = 30.0


class FeedFollower:
    """Attach to ``site`` as a follower; call :meth:`start` to subscribe."""

    def __init__(self, site: "Site"):
        self.site = site
        #: One guard for the cursor, maps and epoch; doubles as the
        #: condition write-through waiters sleep on.
        self._applied = threading.Condition()
        self._epoch = site.change_log.epoch
        self._last_applied = site.change_log.latest_serial
        self._primary_id: str | None = None
        #: oid → the primary's proxy-in for it (write-through targets).
        self._providers: "dict[str, RemoteRef]" = {}
        #: name-server binding → oid (rebound on promotion).
        self._names: dict[str, str] = {}
        ensure_feed_service(site)
        site.feed_role = self
        site.feed_stats.set_gauges(role="follower", epoch=self._epoch)

    # ------------------------------------------------------------------
    # subscription lifecycle
    # ------------------------------------------------------------------
    def start(self, primary_site_id: str) -> None:
        """Subscribe (or re-subscribe) to ``primary_site_id``'s feed.

        Catch-up frames replay incrementally from our cursor; a journal
        retention gap downgrades to the full-snapshot bootstrap.  Safe to
        call again after a partition heals — that *is* the reconnect
        path.
        """
        site = self.site
        self._primary_id = primary_site_id
        primary = feed_ref(primary_site_id)
        request = FeedSubscribeRequest(site_id=site.name, last_serial=self.last_applied_serial)
        with site.tracer.span(
            "feed.subscribe", primary=primary_site_id, since=request.last_serial
        ):
            reply = probe(
                site.peer_caps,
                primary_site_id,
                FEED,
                lambda: site.endpoint.invoke(primary, "feed_subscribe", (request,)),
            )
        if reply is UNSUPPORTED:
            raise FeedError(
                f"site {primary_site_id!r} does not speak the change-feed "
                "protocol; upgrade it before following it"
            )
        self._adopt_maps(reply)
        if reply.snapshot_needed:
            self._bootstrap(primary)
        elif reply.frames:
            batch = FeedBatch(
                epoch=reply.epoch,
                primary_id=primary_site_id,
                latest_serial=reply.latest_serial,
                frames=reply.frames,
            )
            ack = self.handle_events(batch)
            if not ack.accepted:
                raise StaleEpochError(
                    f"catch-up from {primary_site_id!r} carried epoch "
                    f"{reply.epoch}, behind local epoch {ack.epoch}",
                    frame_epoch=reply.epoch,
                    current_epoch=ack.epoch,
                )
            self.site.feed_stats.add(catch_up_events=len(reply.frames))
        else:
            self._adopt_epoch(reply.epoch)
        lag = max(0, reply.latest_serial - self.last_applied_serial)
        site.feed_stats.set_gauges(role="follower", lag_serials=lag)

    def _bootstrap(self, primary: "RemoteRef") -> None:
        site = self.site
        request = FeedSnapshotRequest(site_id=site.name)
        with site.tracer.span("feed.bootstrap", primary=primary.site_id):
            snapshot = probe(
                site.peer_caps,
                primary.site_id,
                FEED,
                lambda: site.endpoint.invoke(primary, "feed_snapshot", (request,)),
            )
            if snapshot is UNSUPPORTED:
                raise FeedError(
                    f"site {primary.site_id!r} does not serve feed snapshots"
                )
            self._apply_snapshot(snapshot)
        site.feed_stats.add(snapshot_bootstraps=1)

    def _apply_snapshot(self, snapshot: FeedSnapshotReply) -> None:
        # The epoch guard (OBI210): a snapshot from a deposed primary
        # must not overwrite state the new epoch already rewrote.
        with self._applied:
            current_epoch = self._epoch
        if snapshot.epoch < current_epoch:
            self.site.feed_stats.add(stale_epoch_rejects=len(snapshot.frames))
            raise StaleEpochError(
                f"snapshot carries epoch {snapshot.epoch}, behind local "
                f"epoch {current_epoch}",
                frame_epoch=snapshot.epoch,
                current_epoch=current_epoch,
            )
        self._adopt_epoch(snapshot.epoch)
        applied = 0
        for frame in snapshot.frames:
            if apply_feed_frame(self.site, frame):
                applied += 1
            self._note_applied(frame, serial=snapshot.serial)
        with self._applied:
            if snapshot.serial > self._last_applied:
                self._last_applied = snapshot.serial
            self._applied.notify_all()
        self.site.feed_stats.add(frames_applied=applied)
        self._adopt_maps(snapshot)

    def _adopt_maps(self, reply: "FeedSubscribeReply | FeedSnapshotReply") -> None:
        with self._applied:
            self._providers.update(reply.providers)
            self._names.update(reply.names)

    def _adopt_epoch(self, epoch: int) -> None:
        with self._applied:
            if epoch > self._epoch:
                self._epoch = epoch
        self.site.change_log.adopt_epoch(epoch)
        self.site.feed_stats.set_gauges(epoch=self.site.change_log.epoch)

    # ------------------------------------------------------------------
    # verb handlers (dispatched by FeedService)
    # ------------------------------------------------------------------
    def handle_events(self, batch: FeedBatch) -> FeedAck:
        site = self.site
        with self._applied:
            current_epoch = self._epoch
            applied_serial = self._last_applied
        if batch.epoch < current_epoch:
            # The epoch guard (OBI210): a deposed primary's frames are
            # rejected wholesale; the ack's newer epoch tells it why.
            site.feed_stats.add(stale_epoch_rejects=len(batch.frames))
            return FeedAck(
                epoch=current_epoch, applied_serial=applied_serial, accepted=False
            )
        if batch.epoch > current_epoch:
            self._adopt_epoch(batch.epoch)
        applied = 0
        with site.tracer.span("feed.apply", frames=len(batch.frames)):
            for frame in batch.frames:
                if apply_feed_frame(site, frame):
                    applied += 1
                self._note_applied(frame, serial=frame.serial)
        site.feed_stats.add(frames_applied=applied)
        with self._applied:
            applied_serial = self._last_applied
            epoch = self._epoch
        site.feed_stats.set_gauges(
            lag_serials=max(0, batch.latest_serial - applied_serial)
        )
        return FeedAck(epoch=epoch, applied_serial=applied_serial, accepted=True)

    def _note_applied(self, frame: "FeedFrame", *, serial: int) -> None:
        # Mirror the event into our own journal (whole-state entry) so a
        # promotion continues the group's serial numbering, then advance
        # the cursor and wake write-through waiters.
        self.site.change_log.record_mirror(serial, frame.oid, frame.version, None)
        with self._applied:
            if frame.provider is not None:
                self._providers[frame.oid] = frame.provider
            if serial > self._last_applied:
                self._last_applied = serial
            self._applied.notify_all()

    def handle_subscribe(self, request: FeedSubscribeRequest) -> "FeedSubscribeReply":
        raise FeedError(
            f"site {self.site.name!r} is a follower of {self._primary_id!r}; "
            "subscribe to the primary"
        )

    def handle_snapshot(self, request: FeedSnapshotRequest) -> FeedSnapshotReply:
        raise FeedError(
            f"site {self.site.name!r} is a follower of {self._primary_id!r}; "
            "snapshots come from the primary"
        )

    def handle_promote(self, request: PromoteRequest) -> PromoteReply:
        with self._applied:
            current_epoch = self._epoch
        if request.epoch <= current_epoch:
            raise StaleEpochError(
                f"promotion to epoch {request.epoch} is not ahead of "
                f"local epoch {current_epoch}",
                frame_epoch=request.epoch,
                current_epoch=current_epoch,
            )
        return self.promote(epoch=request.epoch)

    # ------------------------------------------------------------------
    # write-through
    # ------------------------------------------------------------------
    def put_through(self, obj: object, *, timeout: float = WRITE_CONFIRM_TIMEOUT_S) -> dict[str, int]:
        """Write a local mirror's state back through the primary.

        Ships the state to the primary's proxy-in for the object, then
        blocks until the write's feed echo has been applied locally — an
        acknowledged write is durable at this follower, so a failover
        election (highest serial wins) can never lose it.  Raises
        :class:`FeedError` if the echo does not land within ``timeout``.
        """
        site = self.site
        oid = obi_id_of(obj)
        with self._applied:
            provider = self._providers.get(oid)
        if provider is None:
            raise FeedError(
                f"no write-through target for {oid!r}; the feed has not "
                "delivered its provider yet"
            )
        with site.tracer.span("feed.write_through", oid=oid):
            package = build_put(site, [obj])
            versions = site.endpoint.invoke(provider, "put", (package,))
            if not isinstance(versions, dict):
                raise FeedError(
                    f"write-through for {oid!r} returned {type(versions).__name__}"
                )
            self._await_version(obj, oid, versions.get(oid, 0), timeout)
        site.feed_stats.add(write_throughs=1)
        return versions

    def _await_version(self, obj: object, oid: str, version: int, timeout: float) -> None:
        """Block until the local mirror reaches ``version``."""

        def caught_up() -> bool:
            local = self.site.master_object_for(oid)
            return local is not None and self.site.master_version(local) >= version

        if caught_up():
            return
        with self._applied:
            while not caught_up():
                if not self._applied.wait(timeout):
                    raise FeedError(
                        f"write-through for {oid!r} was not confirmed within "
                        f"{timeout}s (mirror still behind version {version})"
                    )

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------
    def promote(self, *, epoch: int | None = None) -> PromoteReply:
        """Take over as primary; returns the new epoch and journal head.

        Exports a proxy-in for every mirrored master (they become real
        masters of the new epoch), rebinds the primary's name-server
        entries to the local exports, and swaps the site's role for a
        :class:`~repro.feed.primary.FeedPrimary` at the bumped epoch.
        """
        from repro.feed.primary import FeedPrimary

        site = self.site
        with self._applied:
            new_epoch = epoch if epoch is not None else self._epoch + 1
            names = dict(self._names)
        with site.tracer.span("feed.promote", epoch=new_epoch):
            site.change_log.adopt_epoch(new_epoch)
            for _oid, record in site.iter_masters():
                site.ensure_provider_for(record.obj)
            for name, oid in names.items():
                master = site.master_object_for(oid)
                if master is None:
                    continue
                ref, _created = site.ensure_provider_for(master)
                site.naming.rebind(name, ref)
            primary = FeedPrimary(site, epoch=new_epoch)
        site.feed_stats.add(promotions=1)
        reply = PromoteReply(
            epoch=primary.epoch,
            serial=site.change_log.latest_serial,
            site_id=site.name,
        )
        return reply

    # ------------------------------------------------------------------
    # operator surface
    # ------------------------------------------------------------------
    @property
    def last_applied_serial(self) -> int:
        with self._applied:
            return self._last_applied

    @property
    def epoch(self) -> int:
        with self._applied:
            return self._epoch

    @property
    def primary_id(self) -> str | None:
        return self._primary_id

    def repoint(self, new_primary_id: str) -> None:
        """Follow a different (newly promoted) primary from our cursor."""
        self.start(new_primary_id)

    def __repr__(self) -> str:
        return (
            f"FeedFollower({self.site.name!r}, primary={self._primary_id!r}, "
            f"epoch={self.epoch}, serial={self.last_applied_serial})"
        )
