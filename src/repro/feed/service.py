"""The exported feed service: one well-known object per site.

Like the name server, the feed service lives under a well-known object
id so peers can construct a :class:`~repro.rmi.refs.RemoteRef` to it
from a site id alone — no directory round trip.  The service itself is
a thin dispatcher: every verb routes to whatever role
(:class:`~repro.feed.primary.FeedPrimary` /
:class:`~repro.feed.follower.FeedFollower`) is currently attached to the
site, so a failover promotion swaps behaviour without re-exporting
anything or invalidating subscriber-held refs.

A peer that predates obifeed never exported this object, so its skeleton
answers ``no exported object 'obj:feed'`` — the classifiable failure
shape :data:`repro.core.negotiation.FEED` keys on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.rmi.refs import RemoteRef
from repro.util.errors import FeedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packages import (
        FeedAck,
        FeedBatch,
        FeedSnapshotReply,
        FeedSnapshotRequest,
        FeedSubscribeReply,
        FeedSubscribeRequest,
        PromoteReply,
        PromoteRequest,
    )
    from repro.core.runtime import Site

#: Well-known export id of every site's feed service.
FEED_OBJECT_ID = "obj:feed"

#: Interface name the service is exported under.
FEED_INTERFACE = "IFeed"

#: The feed control surface, for stub construction.
FEED_METHODS = ("feed_subscribe", "feed_events", "feed_snapshot", "promote")


def feed_ref(site_id: str) -> RemoteRef:
    """A ref to ``site_id``'s feed service (exported or not)."""
    return RemoteRef(site_id=site_id, object_id=FEED_OBJECT_ID, interface=FEED_INTERFACE)


class FeedService:
    """Verb dispatcher exported under :data:`FEED_OBJECT_ID`."""

    def __init__(self, site: "Site"):
        self._site = site

    def _role(self):
        role = self._site.feed_role
        if role is None:
            raise FeedError(
                f"site {self._site.name!r} has no feed role attached; "
                "create one with feed_primary() or feed_follow()"
            )
        return role

    # The four wire verbs ------------------------------------------------
    def feed_subscribe(self, request: "FeedSubscribeRequest") -> "FeedSubscribeReply":
        return self._role().handle_subscribe(request)

    def feed_events(self, batch: "FeedBatch") -> "FeedAck":
        return self._role().handle_events(batch)

    def feed_snapshot(self, request: "FeedSnapshotRequest") -> "FeedSnapshotReply":
        return self._role().handle_snapshot(request)

    def promote(self, request: "PromoteRequest") -> "PromoteReply":
        return self._role().handle_promote(request)


def ensure_feed_service(site: "Site") -> RemoteRef:
    """Export the site's feed service if it is not exported yet."""
    if FEED_OBJECT_ID not in site.endpoint.objects:
        site.endpoint.export(
            FeedService(site), object_id=FEED_OBJECT_ID, interface=FEED_INTERFACE
        )
    return feed_ref(site.name)
