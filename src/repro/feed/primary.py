"""The primary role: journal observer, subscriber table, push fan-out.

A :class:`FeedPrimary` attaches to a site's
:class:`~repro.core.versions.ChangeLog` as an observer: every local
change (full put, delta put, ``touch``) is already journaled with a
dense serial, and the observer turns each event into a
:class:`~repro.core.packages.FeedFrame` pushed to every live subscriber.

Delivery discipline:

* The **first** push to each subscriber is a ``probe()``-wrapped
  synchronous invoke, so an un-upgraded peer is classified cleanly
  (:data:`repro.core.negotiation.FEED`) and marked stalled instead of
  poisoning the group.
* Confirmed subscribers are fanned out with ``invoke_async`` — on the
  obireactor transport the frames pipeline over one multiplexed
  connection per follower, so a slow follower does not serialize the
  push path.
* The subscriber list is copied under the role's lock and every invoke
  happens outside it (obiflow OBI202 checks this).

A push failure marks the subscriber stalled; a reconnecting follower
heals itself by re-subscribing.  An ack carrying a *newer* epoch means
the group failed over while we were partitioned away — the deposed
primary demotes itself on the spot rather than keep writing history
nobody will accept.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.core.meta import interface_of, obi_id_of
from repro.core.negotiation import FEED, UNSUPPORTED, probe
from repro.core.packages import (
    FeedAck,
    FeedBatch,
    FeedFrame,
    FeedSnapshotReply,
    FeedSnapshotRequest,
    FeedSubscribeReply,
    FeedSubscribeRequest,
    PromoteReply,
    PromoteRequest,
)
from repro.core.replication import PackagingSwizzler
from repro.feed.service import ensure_feed_service, feed_ref
from repro.serial.encoder import Encoder
from repro.util.errors import (
    FeedError,
    RemoteError,
    RetentionGapError,
    StaleEpochError,
    TransportError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import Site
    from repro.core.versions import FeedEvent
    from repro.rmi.refs import RemoteRef

#: How long a push waits for one follower's ack before stalling it.
PUSH_TIMEOUT_S = 30.0


class _Subscriber:
    """One follower's delivery state (guarded by the primary's lock)."""

    __slots__ = ("site_id", "ref", "confirmed", "stalled", "acked_serial")

    def __init__(self, site_id: str, ref: "RemoteRef"):
        self.site_id = site_id
        self.ref = ref
        #: First probe-wrapped push succeeded: safe to go async.
        self.confirmed = False
        self.stalled = False
        self.acked_serial = 0


class FeedPrimary:
    """Attach to ``site`` as the group's write master."""

    def __init__(self, site: "Site", *, epoch: int | None = None):
        self.site = site
        target = epoch if epoch is not None else max(1, site.change_log.epoch)
        self.epoch = site.change_log.adopt_epoch(target)
        self._lock = threading.Lock()
        self._subscribers: dict[str, _Subscriber] = {}
        self._active = True
        ensure_feed_service(site)
        site.feed_role = self
        self._seed_journal()
        site.change_log.subscribe(self._on_event)
        site.feed_stats.set_gauges(role="primary", epoch=self.epoch, lag_serials=0)

    def _seed_journal(self) -> None:
        """Journal every master the journal does not cover yet.

        Exported-but-never-written masters have state but no journal
        entry, so a follower's catch-up would silently miss them.  Runs
        at role creation and again before serving each subscription
        (an export can land between the two); while the observer is
        attached, each seeded record also pushes, healing existing
        followers.  Promoted followers' mirrors already carry mirrored
        history, so promotion does not re-journal the world.
        """
        site = self.site
        for oid, record in site.iter_masters():
            if not site.change_log.has_history(oid):
                site.change_log.record(oid, site.master_version(record.obj), None)

    # ------------------------------------------------------------------
    # journal observer → push
    # ------------------------------------------------------------------
    def _on_event(self, event: "FeedEvent") -> None:
        if not self._active:
            return
        master = self.site.master_object_for(event.oid)
        if master is None:
            return  # dropped between record and push
        with self.site.tracer.span("feed.push", oid=event.oid, serial=event.serial):
            frame = self._frame_for(master, serial=event.serial)
            batch = FeedBatch(
                epoch=self.epoch,
                primary_id=self.site.name,
                latest_serial=self.site.change_log.latest_serial,
                frames=[frame],
            )
            self._deliver(batch)

    def _frame_for(self, master: object, *, serial: int) -> FeedFrame:
        site = self.site
        oid = obi_id_of(master)
        provider, _created = site.ensure_provider_for(master)
        encoder = Encoder(
            site.registry, PackagingSwizzler(site, member_ids=set()), stats=site.serial_stats
        )
        payload = encoder.encode(dict(vars(master)))
        site.charge_serialization(len(payload))
        return FeedFrame(
            serial=serial,
            epoch=self.epoch,
            oid=oid,
            interface=interface_of(master).name,
            version=site.master_version(master),
            payload=payload,
            provider=provider,
        )

    def _deliver(self, batch: FeedBatch) -> None:
        site = self.site
        with self._lock:
            subscribers = [s for s in self._subscribers.values() if not s.stalled]
        # First delivery per follower probes synchronously (classifiable
        # un-upgraded-peer failure); confirmed followers pipeline.
        in_flight = []
        for sub in subscribers:
            if sub.confirmed:
                future = site.endpoint.invoke_async(sub.ref, "feed_events", (batch,))
                in_flight.append((sub, future))
                continue
            try:
                ack = probe(
                    site.peer_caps,
                    sub.site_id,
                    FEED,
                    lambda ref=sub.ref: site.endpoint.invoke(ref, "feed_events", (batch,)),
                )
            except (TransportError, RemoteError, FeedError) as exc:
                self._stall(sub, reason=str(exc))
                continue
            if ack is UNSUPPORTED:
                self._stall(sub, reason="peer does not speak the feed protocol")
                continue
            sub.confirmed = True
            self._note_ack(sub, ack)
        for sub, future in in_flight:
            try:
                ack = future.result(PUSH_TIMEOUT_S)
            except (TransportError, RemoteError, FeedError) as exc:
                self._stall(sub, reason=str(exc))
                continue
            self._note_ack(sub, ack)
        site.feed_stats.add(frames_pushed=len(batch.frames) * len(subscribers))

    def _stall(self, sub: _Subscriber, *, reason: str) -> None:
        # A stalled follower is skipped until it re-subscribes; the
        # failure reason is deliberately not retained beyond stats —
        # reconnect catch-up is the recovery path, not retry-from-here.
        with self._lock:
            sub.stalled = True
        self.site.feed_stats.add(push_failures=1)

    def _note_ack(self, sub: _Subscriber, ack: FeedAck) -> None:
        if not ack.accepted and ack.epoch > self.epoch:
            self._demote(ack.epoch)
            return
        if ack.applied_serial > sub.acked_serial:
            sub.acked_serial = ack.applied_serial

    def _demote(self, new_epoch: int) -> None:
        """The group moved on without us: stop pushing, stop accepting."""
        self._active = False
        self.site.change_log.unsubscribe(self._on_event)
        self.site.change_log.adopt_epoch(new_epoch)
        self.site.feed_stats.set_gauges(role="demoted", epoch=new_epoch)

    # ------------------------------------------------------------------
    # verb handlers (dispatched by FeedService)
    # ------------------------------------------------------------------
    def handle_subscribe(self, request: FeedSubscribeRequest) -> FeedSubscribeReply:
        site = self.site
        if not self._active:
            raise StaleEpochError(
                f"site {site.name!r} was deposed as primary",
                current_epoch=site.change_log.epoch,
            )
        with site.tracer.span(
            "feed.subscribe", follower=request.site_id, since=request.last_serial
        ):
            # Register before reading the journal: an event recorded
            # while we build the catch-up is pushed AND replayed, and the
            # follower's version-monotonic apply dedups the overlap.
            sub = _Subscriber(request.site_id, feed_ref(request.site_id))
            with self._lock:
                self._subscribers[request.site_id] = sub
            self._seed_journal()
            log = site.change_log
            try:
                events = log.events_since(request.last_serial)
            except RetentionGapError:
                return FeedSubscribeReply(
                    epoch=self.epoch,
                    latest_serial=log.latest_serial,
                    snapshot_needed=True,
                    providers=self._provider_map(),
                    names=self._name_map(),
                )
            frames = self._catch_up_frames(events)
            site.feed_stats.add(catch_up_events=len(events))
            return FeedSubscribeReply(
                epoch=self.epoch,
                latest_serial=log.latest_serial,
                snapshot_needed=False,
                frames=frames,
                providers=self._provider_map(),
                names=self._name_map(),
            )

    def _catch_up_frames(self, events: "list[FeedEvent]") -> list[FeedFrame]:
        """One frame per distinct oid, at its highest event serial.

        Catch-up re-encodes *current* state (the journal stores field
        names, not payloads), so replaying collapsed history is safe:
        the frame's version is the current version and the follower's
        monotonic guard handles any overlap with live pushes.
        """
        newest: dict[str, int] = {}
        for event in events:
            newest[event.oid] = max(event.serial, newest.get(event.oid, 0))
        frames = []
        for oid, serial in sorted(newest.items(), key=lambda pair: pair[1]):
            master = self.site.master_object_for(oid)
            if master is None:
                continue  # dropped since; nothing to converge to
            frames.append(self._frame_for(master, serial=serial))
        return frames

    def handle_events(self, batch: FeedBatch) -> FeedAck:
        site = self.site
        log = site.change_log
        if batch.epoch < max(self.epoch, log.epoch):
            # A deposed primary kept pushing across the partition.
            site.feed_stats.add(stale_epoch_rejects=len(batch.frames))
            return FeedAck(
                epoch=max(self.epoch, log.epoch),
                applied_serial=log.latest_serial,
                accepted=False,
            )
        raise FeedError(
            f"site {site.name!r} is primary at epoch {self.epoch}; "
            f"it cannot apply feed events from {batch.primary_id!r} "
            f"at epoch {batch.epoch} (split-brain configuration?)"
        )

    def handle_snapshot(self, request: FeedSnapshotRequest) -> FeedSnapshotReply:
        """Full-state bootstrap, concurrent with ongoing puts.

        The serial is captured **first**: every event recorded after it
        reaches the follower through the feed (it subscribed before
        asking for the snapshot), and any newer state encoded below is
        deduped by the follower's version-monotonic apply.  Nothing
        pauses the write path.
        """
        site = self.site
        if not self._active:
            raise StaleEpochError(
                f"site {site.name!r} was deposed as primary",
                current_epoch=site.change_log.epoch,
            )
        with site.tracer.span("feed.snapshot", follower=request.site_id):
            serial = site.change_log.latest_serial
            frames = []
            for _oid, record in site.iter_masters():
                frames.append(self._frame_for(record.obj, serial=serial))
            site.feed_stats.add(snapshots_served=1)
            return FeedSnapshotReply(
                epoch=self.epoch,
                serial=serial,
                frames=frames,
                providers=self._provider_map(),
                names=self._name_map(),
            )

    def handle_promote(self, request: PromoteRequest) -> PromoteReply:
        raise FeedError(
            f"site {self.site.name!r} is already primary at epoch {self.epoch}"
        )

    # ------------------------------------------------------------------
    # maps shipped to followers
    # ------------------------------------------------------------------
    def _provider_map(self) -> "dict[str, RemoteRef]":
        providers = {}
        for oid, record in self.site.iter_masters():
            ref, _created = self.site.ensure_provider_for(record.obj)
            providers[oid] = ref
        return providers

    def _name_map(self) -> dict[str, str]:
        """Name-server bindings that resolve to this site's exports."""
        site = self.site
        names = {}
        for name in site.naming.list_names():
            ref = site.naming.lookup(name)
            if ref.site_id != site.name:
                continue
            oid = site.oid_for_export(ref.object_id)
            if oid is not None:
                names[name] = oid
        return names

    # ------------------------------------------------------------------
    # operator surface
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    def subscriber_serials(self) -> dict[str, int]:
        """Last acked serial per live subscriber (telemetry/tests)."""
        with self._lock:
            return {
                s.site_id: s.acked_serial
                for s in self._subscribers.values()
                if not s.stalled
            }

    def detach(self) -> None:
        """Stop observing the journal (simulates primary death in tests)."""
        self._active = False
        self.site.change_log.unsubscribe(self._on_event)
        self.site.feed_stats.set_gauges(role="none")

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._subscribers)
        return f"FeedPrimary({self.site.name!r}, epoch={self.epoch}, subscribers={count})"
