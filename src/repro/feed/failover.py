"""Failover orchestration: elect, promote, re-point.

The election rule is the one event-serial replication admits: the
follower with the **highest applied serial** has every acknowledged
write (a write is only acknowledged once its feed echo landed at the
acking follower, and serials apply in order), so promoting it loses
nothing.  Ties break on site name for determinism.

Promotion is requested over the wire (`promote` verb, probe-wrapped so
an un-upgraded winner is refused cleanly) or in-process via
:meth:`~repro.feed.follower.FeedFollower.promote`; either way the new
primary's epoch is the old epoch + 1, and every frame the deposed
primary might still push carries the old epoch and is rejected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.negotiation import FEED, UNSUPPORTED, probe
from repro.core.packages import PromoteReply, PromoteRequest
from repro.feed.service import feed_ref
from repro.util.errors import FeedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import Site
    from repro.feed.follower import FeedFollower


def elect_new_primary(followers: "list[FeedFollower]") -> "FeedFollower":
    """The failover winner: highest applied serial, ties by site name.

    The name tie-break takes the *smallest* name so every site that runs
    the election independently picks the same winner.
    """
    if not followers:
        raise FeedError("cannot elect a primary from zero followers")
    ranked = sorted(followers, key=lambda f: (-f.last_applied_serial, f.site.name))
    return ranked[0]


def request_promotion(
    site: "Site", follower_site_id: str, *, epoch: int, reason: str = ""
) -> PromoteReply:
    """Ask ``follower_site_id`` (over RMI) to take over at ``epoch``."""
    target = feed_ref(follower_site_id)
    request = PromoteRequest(epoch=epoch, reason=reason)
    with site.tracer.span("feed.promote_request", winner=follower_site_id, epoch=epoch):
        reply = probe(
            site.peer_caps,
            follower_site_id,
            FEED,
            lambda: site.endpoint.invoke(target, "promote", (request,)),
        )
    if reply is UNSUPPORTED:
        raise FeedError(
            f"site {follower_site_id!r} does not speak the change-feed "
            "protocol; it cannot be promoted"
        )
    return reply


def fail_over(followers: "list[FeedFollower]", *, reason: str = "") -> PromoteReply:
    """The runbook in one call: elect, promote in-process, re-point the rest.

    Returns the :class:`~repro.core.packages.PromoteReply`; the winner's
    site now carries a :class:`~repro.feed.primary.FeedPrimary` role and
    every other follower tails it from its own cursor (catch-up, not
    bootstrap — their journals mirror the same serial history).
    """
    winner = elect_new_primary(followers)
    reply = winner.promote()
    for follower in followers:
        if follower is winner:
            continue
        follower.repoint(reply.site_id)
    return reply
