"""Applying one feed frame to a follower's local tables.

A frame carries the primary's full state for one object, encoded with
the packaging swizzler (references travel as proxy-out descriptors, so
they re-link to local mirrors when present and fault lazily otherwise).
Application is **version-monotonic**: a frame older than the local
mirror is dropped.  That guard is what lets a snapshot bootstrap run
concurrently with live pushes — whichever lands second per object is a
no-op or a strict improvement — so adding a follower never quiesces the
group.

Callers must check the frame's epoch against their own *before* calling
:func:`apply_feed_frame`; obiflow rule OBI210 machine-checks that
discipline (a stale-primary frame applied without the check is a
split-brain write).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.interfaces import ReplicationMode
from repro.core.meta import compiled_registry, is_obiwan, obi_id_of
from repro.core.replication import SiteUnswizzler
from repro.serial.decoder import Decoder
from repro.util.errors import FeedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packages import FeedFrame
    from repro.core.runtime import Site


def apply_feed_frame(site: "Site", frame: "FeedFrame") -> bool:
    """Apply one frame to ``site``'s tables; True when state changed.

    Creates the local mirror (a proxy-in-less master record, like a
    cluster member's) on first sight of an oid; otherwise replaces the
    mirror's state in place so existing references stay valid.  The
    mirrored version is adopted from the frame — followers never mint
    version numbers of their own.
    """
    local = site.master_object_for(frame.oid)
    if local is not None and site.master_version(local) >= frame.version:
        return False

    decoder = Decoder(
        site.registry, SiteUnswizzler(site, ReplicationMode()), stats=site.serial_stats
    )
    site.charge_serialization(len(frame.payload))
    state = decoder.decode(frame.payload)
    if is_obiwan(state):
        state = dict(vars(state))
    if not isinstance(state, dict):
        raise FeedError(
            f"feed frame for {frame.oid!r} must decode to a state dict, "
            f"got {type(state).__name__}"
        )

    if local is None:
        entry = compiled_registry.by_interface(frame.interface)
        local = entry.cls.__new__(entry.cls)
        vars(local).update(state)
        vars(local)["_obi_id"] = frame.oid
        if obi_id_of(local) != frame.oid:
            raise FeedError(
                f"mirror for {frame.oid!r} materialized with id {obi_id_of(local)!r}"
            )
        site.note_master(local)
    else:
        preserved_id = vars(local).get("_obi_id")
        vars(local).clear()
        vars(local).update(state)
        if preserved_id is not None:
            vars(local)["_obi_id"] = preserved_id
    site.adopt_master_version(frame.oid, frame.version)
    return True
