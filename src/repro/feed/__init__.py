"""obifeed: primary/follower change-feed replication (PR 10).

The paper's incremental replication machinery (per-master
:class:`~repro.core.versions.ChangeLog` + the delta codec) is an event
log; this package streams it.  A :class:`~repro.feed.primary.FeedPrimary`
turns a site into the group's write master: every local change is
journaled with a dense serial number and pushed to subscribed followers
as a :class:`~repro.core.packages.FeedFrame`.  A
:class:`~repro.feed.follower.FeedFollower` registers over RMI, tails the
feed continuously, catches up from its last applied serial after a
disconnection (bootstrapping from a full snapshot when the journal's
retention window has gapped), proxies writes through to the primary, and
can be promoted to primary when the primary dies — the group re-points
via an epoch number stamped on every frame so a deposed primary's
frames are recognizably stale.

Modelled on the devpi-server replication protocol (event serials,
primary-URL followers, write-through, failover) and Oracle's
add-a-site-without-quiescing multimaster scheme: a new follower joins a
live group by subscribing first, snapshotting at a captured serial
concurrently with ongoing puts, then letting the feed tail replay over
the snapshot under a version-monotonic apply guard.

See ``docs/HA.md`` for the role model and the failover runbook.
"""

from repro.feed.apply import apply_feed_frame
from repro.feed.failover import elect_new_primary, fail_over, request_promotion
from repro.feed.follower import FeedFollower
from repro.feed.primary import FeedPrimary
from repro.feed.service import (
    FEED_INTERFACE,
    FEED_METHODS,
    FEED_OBJECT_ID,
    FeedService,
    ensure_feed_service,
    feed_ref,
)

__all__ = [
    "FEED_INTERFACE",
    "FEED_METHODS",
    "FEED_OBJECT_ID",
    "FeedFollower",
    "FeedPrimary",
    "FeedService",
    "apply_feed_frame",
    "elect_new_primary",
    "ensure_feed_service",
    "fail_over",
    "feed_ref",
    "request_promotion",
]
