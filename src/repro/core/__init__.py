"""The core OBIWAN platform — the paper's primary contribution.

This package implements Section 2 of the paper:

* **proxy-out / proxy-in pairs** (:mod:`repro.core.proxy_out`,
  :mod:`repro.core.proxy_in`) — the stand-ins that make an absent object
  invocable and a present master remotely reachable;
* **object-fault detection and resolution** (:mod:`repro.core.faults`) —
  any interface method called on a proxy-out demands the target replica,
  splices it into the demander (``updateMember``) and forwards the call;
* **incremental / transitive / cluster replication**
  (:mod:`repro.core.replication`, :mod:`repro.core.cluster`) — ``get(mode)``
  with run-time-chosen granularity;
* **the obicomp compiler** (:mod:`repro.core.obicomp`) — derives interfaces
  from user classes and synthesizes their proxy classes;
* **the site runtime** (:mod:`repro.core.runtime`) — the per-process
  replica/master tables and the public :class:`Site` / :class:`World` API.
"""

from repro.core.costs import CostModel
from repro.core.gc_stats import GcStats
from repro.core.interfaces import (
    Cluster,
    Incremental,
    Interface,
    ReplicationMode,
    Transitive,
)
from repro.core.meta import compiled_registry, interface_of, is_obiwan, obi_id_of
from repro.core.obicomp import compile_class
from repro.core.proxy_in import ProxyIn
from repro.core.proxy_out import ProxyOutBase
from repro.core.runtime import Site, World

__all__ = [
    "World",
    "Site",
    "compile_class",
    "Interface",
    "ReplicationMode",
    "Incremental",
    "Transitive",
    "Cluster",
    "ProxyIn",
    "ProxyOutBase",
    "CostModel",
    "GcStats",
    "is_obiwan",
    "obi_id_of",
    "interface_of",
    "compiled_registry",
]
