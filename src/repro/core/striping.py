"""Stripe primitives for the partitioned :class:`~repro.core.runtime.Site`.

PR 3's obiflow audit left every object-table access serialized under one
global reentrant ``Site._lock`` — the single hot lock the ROADMAP names
as the scalability ceiling.  This module holds the pieces the striped
runtime is built from, kept separate so the analyzer, the runtime, and
the benchmarks share one vocabulary:

* :func:`stripe_of` — the deterministic oid → stripe routing function;
* :class:`StripeLock` — a reentrant per-stripe lock that counts
  contention (acquire waits, reentrancy depth) for telemetry;
* :func:`snapshot_read` — the declaration marker for lock-free read
  paths.  obiflow keys on it: a declared snapshot read may read striped
  tables and guarded fields without their locks (OBI203/OBI207 exempt
  the reads) but must not mutate guarded state, transitively (OBI209);
* :class:`StripedStats` — per-stripe shards of a counter dataclass
  (``FaultPathStats``, ``SyncPathStats``) merged on read, so hot-path
  threads on different stripes never touch the same counter lock.

Striping is node-local: nothing here crosses the wire, so a striped
site interoperates with un-upgraded peers unchanged.
"""

from __future__ import annotations

import contextlib
import threading
import zlib
from typing import Callable, TypeVar

#: Default stripe count for new sites.  Power of two near the thread
#: counts the contention benchmark sweeps; override per site or per
#: world (``World(..., stripes=N)``).
DEFAULT_STRIPES = 16

#: Shared no-op context for snapshot reads; ``nullcontext`` keeps no
#: per-use state, so one instance serves every thread.
NULL_GUARD = contextlib.nullcontext()

_F = TypeVar("_F", bound=Callable)


def stripe_of(oid: str, stripes: int) -> int:
    """Deterministic stripe index for an obi id.

    ``zlib.crc32`` rather than ``hash()``: the builtin string hash is
    salted per process, and stripe routing must agree across threads,
    runs, and recorded telemetry (the property tests pin exact routes).
    """
    return zlib.crc32(oid.encode("utf-8")) % stripes


def snapshot_read(func: _F) -> _F:
    """Declare a method a lock-free snapshot read.

    A snapshot read may look at stripe-partitioned tables and guarded
    fields without taking their locks — safe for single-key ``get``-style
    probes, where the interpreter's atomic dict operations give a
    point-in-time answer and the caller tolerates racing with writers
    (a fault that misses re-checks under the lock it takes next).

    The declaration is load-bearing for obiflow: OBI203/OBI207 stop
    flagging the unlocked *reads*, and OBI209 enforces the other half of
    the contract — no path out of a declared snapshot read may mutate
    guarded state.
    """
    func.__obiwan_snapshot_read__ = True
    return func


class StripeLock:
    """One stripe's reentrant lock, with contention accounting.

    ``acquire`` first tries the non-blocking fast path; only a refused
    attempt counts as a *wait* before falling back to a blocking
    acquire.  ``max_depth`` records the deepest reentrancy seen.  Both
    counters are monitoring-grade: ``waits`` increments outside the lock
    (there is nothing else to hold), so a burst of simultaneous blockers
    may undercount by a few — telemetry, not bookkeeping.
    """

    __slots__ = ("_inner", "waits", "depth", "max_depth")

    def __init__(self) -> None:
        self._inner = threading.RLock()
        #: Acquires that found the lock held by another thread.
        self.waits = 0
        #: Current reentrancy depth of the owning thread.
        self.depth = 0
        #: Deepest reentrancy observed.
        self.max_depth = 0

    def acquire(self) -> None:
        if not self._inner.acquire(blocking=False):
            self.waits += 1
            self._inner.acquire()
        self.depth += 1
        if self.depth > self.max_depth:
            self.max_depth = self.depth

    def release(self) -> None:
        self.depth -= 1
        self._inner.release()

    def __enter__(self) -> "StripeLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StripeLock(waits={self.waits}, max_depth={self.max_depth})"


class StripedStats:
    """Per-stripe shards of a counter object, merged on read.

    Wraps ``stripes`` instances built by ``factory`` (any class with the
    ``add(**counters)`` / ``snapshot()`` / ``reset()`` protocol of
    ``FaultPathStats`` and ``SyncPathStats``).  Keyed adds route by
    :func:`stripe_of` so threads working different stripes bump disjoint
    shards; unkeyed adds route by thread identity, which spreads
    uncorrelated callers without any shared state.

    Reading a counter attribute sums it across shards, so existing
    consumers (telemetry, the consistency layer, tests asserting
    ``site.sync_stats.puts_delta``) see the same totals they always did.
    """

    def __init__(self, factory: Callable[[], object], stripes: int):
        if stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {stripes}")
        self._shards = [factory() for _ in range(stripes)]
        self._fields = tuple(self._shards[0].snapshot())

    def shard_for(self, oid: str | None = None):
        """The shard a keyed (or thread-routed) add lands in."""
        if oid is None:
            index = threading.get_ident() % len(self._shards)
        else:
            index = stripe_of(oid, len(self._shards))
        return self._shards[index]

    def add(self, *, oid: str | None = None, **counters: int) -> None:
        """Atomically bump counters on the owning shard."""
        self.shard_for(oid).add(**counters)

    def snapshot(self) -> dict[str, int]:
        """Counter totals summed across every shard."""
        merged = dict.fromkeys(self._fields, 0)
        for shard in self._shards:
            for name, value in shard.snapshot().items():
                merged[name] += value
        return merged

    def reset(self) -> dict[str, int]:
        """Zero every shard; returns the pre-reset totals."""
        merged = dict.fromkeys(self._fields, 0)
        for shard in self._shards:
            for name, value in shard.reset().items():
                merged[name] += value
        return merged

    def per_stripe(self) -> list[dict[str, int]]:
        """One snapshot per shard, in stripe order."""
        return [shard.snapshot() for shard in self._shards]

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        if name in self._fields:
            return sum(getattr(shard, name) for shard in self._shards)
        raise AttributeError(
            f"{type(self).__name__} has no counter {name!r} "
            f"(shards expose {', '.join(self._fields)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        totals = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"StripedStats({len(self._shards)} stripes, {totals})"
