"""Porting existing applications onto OBIWAN (paper Section 3.2).

Two entry points:

* :func:`port_legacy_class` — for applications "written with no
  distribution in mind": derive the interface and compile, leaving the
  class's business logic untouched.  A strictness check flags patterns
  that would break behind proxies (``__slots__``, properties).
* :func:`port_rmi_class` — for applications already structured the
  typical RMI way (an implementation class whose public surface mixes
  business methods with RMI plumbing): obicomp "strips the application
  classes of explicit RMI references and then deals with them as if they
  were developed without remoteness in mind".  We build a clean local
  class whose interface excludes the plumbing methods, then compile it.
"""

from __future__ import annotations

from repro.core.obicomp.compiler import compile_class
from repro.util.errors import ReplicationError

#: Method names that are RMI plumbing rather than business logic in a
#: typical stub-era implementation class (the analogue of stripping
#: ``java.rmi`` remote-awareness).
DEFAULT_RMI_PLUMBING = frozenset(
    {
        "get",
        "put",
        "demand",
        "get_version",
        "remote_ref",
        "export",
        "unexport",
        "bind",
        "rebind",
        "unbind",
        "lookup",
    }
)


def port_legacy_class(cls: type, *, interface_name: str | None = None) -> type:
    """Port a non-distributed class: compile it as-is.

    The paper's step "references to instances of other classes must be
    changed to reference the corresponding interfaces" is a no-op in
    Python — attribute references are late-bound, so a proxy-out can
    stand in for an instance by duck typing.
    """
    return compile_class(cls, interface_name=interface_name)


def port_module(module, *, skip: frozenset[str] = frozenset()) -> list[type]:
    """Port every eligible class defined in ``module``.

    The batch equivalent of running obicomp over a whole code base
    (the paper's planned byte-code pass over application jars): each
    class defined in the module (not merely imported into it) that has
    at least one public method and no ``__slots__`` is compiled.
    Classes named in ``skip``, already-compiled classes, and classes
    with no public methods are left alone.  Returns the classes ported.
    """
    import inspect

    from repro.core.meta import is_compiled_class

    ported: list[type] = []
    for name, cls in vars(module).items():
        if not inspect.isclass(cls) or cls.__module__ != module.__name__:
            continue
        if name in skip or is_compiled_class(cls):
            continue
        if any("__slots__" in vars(klass) for klass in cls.__mro__ if klass is not object):
            continue
        has_public_method = any(
            not attr_name.startswith("_") and callable(attr)
            and not isinstance(attr, (staticmethod, classmethod))
            for klass in cls.__mro__
            if klass is not object
            for attr_name, attr in vars(klass).items()
        )
        if not has_public_method:
            continue
        ported.append(compile_class(cls))
    return ported


def port_rmi_class(
    impl_cls: type,
    *,
    strip_suffix: str = "RemoteImpl",
    plumbing: frozenset[str] = DEFAULT_RMI_PLUMBING,
    interface_name: str | None = None,
) -> type:
    """Port an RMI-style implementation class onto OBIWAN.

    Builds a local class named without ``strip_suffix`` (``FooRemoteImpl``
    → ``Foo``) whose public interface excludes RMI ``plumbing`` method
    names, then compiles it.  The returned class subclasses ``impl_cls``
    so the business logic is inherited unchanged.
    """
    base_name = impl_cls.__name__
    local_name = (
        base_name[: -len(strip_suffix)] if base_name.endswith(strip_suffix) else base_name
    )
    if not local_name:
        raise ReplicationError(
            f"cannot derive a local class name from {base_name!r} with "
            f"suffix {strip_suffix!r}"
        )

    business_methods = [
        name
        for klass in reversed(impl_cls.__mro__)
        if klass is not object
        for name, attr in vars(klass).items()
        if not name.startswith("_") and callable(attr) and name not in plumbing
    ]
    if not business_methods:
        raise ReplicationError(
            f"{base_name} has no business methods left after stripping RMI plumbing"
        )

    # Shadow the plumbing names so the derived interface omits them: the
    # local class exposes business logic only.
    namespace: dict[str, object] = {
        "__doc__": f"OBIWAN port of RMI class {base_name} (plumbing stripped).",
        "__module__": impl_cls.__module__,
    }
    local_cls = type(local_name, (impl_cls,), namespace)
    iface_name = interface_name if interface_name is not None else f"I{local_name}"
    methods = tuple(dict.fromkeys(business_methods))

    from repro.core.interfaces import Interface
    from repro.core.meta import OBI_INTERFACE_ATTR, CompiledEntry, compiled_registry
    from repro.core.proxy_out import make_proxy_out_class
    from repro.serial.registry import global_registry

    interface = Interface(name=iface_name, methods=methods)
    proxy_out_cls = make_proxy_out_class(interface)
    setattr(local_cls, OBI_INTERFACE_ATTR, interface)
    global_registry.register(local_cls)
    compiled_registry.add(CompiledEntry(local_cls, interface, proxy_out_cls))
    return local_cls
