"""obicomp — the OBIWAN class compiler (paper Section 3).

From a user class ``A`` the Java obicomp derives interface ``IA``,
generates ``AProxyOut`` / ``AProxyIn`` and augments ``A`` with the
replication interfaces, "so the programmer only has to worry about the
business logic".  Here the same pipeline runs reflectively at import
time::

    @obiwan.compile
    class Agenda:
        def add_entry(self, entry): ...

:func:`compile_class` performs the augmentation in memory;
:mod:`repro.core.obicomp.emit` additionally writes the generated classes
out as Python source, mirroring the paper's source-augmentation tooling;
:mod:`repro.core.obicomp.porting` ports legacy (non-distributed) classes
and RMI-style classes onto OBIWAN, as described in paper Section 3.2.
"""

from repro.core.obicomp.compiler import compile_class
from repro.core.obicomp.emit import emit_module, emit_package, emit_proxy_source
from repro.core.obicomp.interface import derive_interface
from repro.core.obicomp.porting import port_legacy_class, port_module, port_rmi_class

__all__ = [
    "compile_class",
    "derive_interface",
    "port_legacy_class",
    "port_rmi_class",
    "port_module",
    "emit_module",
    "emit_proxy_source",
    "emit_package",
]
