"""The compile step: augment a user class for OBIWAN.

Equivalent to running the paper's ``obicomp`` tool on class ``A``:

1. derive interface ``IA`` from the public methods;
2. synthesize the ``AProxyOut`` class (every method faults);
3. register ``A`` with the wire-type registry so replicas can travel;
4. attempt an obicodec schema compile for ``A`` (a scalar field schema
   derived from ``__init__`` yields a specialized wire codec; anything
   the schema cannot prove silently stays on the reflective codec);
5. record everything in the compiled-class registry that all sites share
   (the deployment analogue of shipping obicomp output everywhere).

The proxy-in side needs no per-class generation at run time — the generic
:class:`repro.core.proxy_in.ProxyIn` dispatches reflectively — but
:mod:`repro.core.obicomp.emit` can still write per-class sources.
"""

from __future__ import annotations

from repro.core.meta import (
    OBI_INTERFACE_ATTR,
    CompiledEntry,
    compiled_registry,
    is_compiled_class,
)
from repro.core.obicomp.interface import derive_interface
from repro.core.proxy_out import make_proxy_out_class
from repro.core.versions import note_write
from repro.serial.compiled import maybe_compile_codec
from repro.serial.registry import global_registry
from repro.util.errors import ReplicationError

#: Class attribute marking that the dirty-tracking write hook is installed.
OBI_WRITE_HOOK_ATTR = "_obi_write_hooked"


def _install_write_hook(target: type) -> None:
    """Wrap ``target.__setattr__`` to notify the dirty tracker.

    The wrapper delegates to whatever ``__setattr__`` the class had
    (custom or ``object``'s) and only notes the write after it succeeds,
    so failing setters never mark fields dirty.  Idempotent per class;
    a compiled subclass of a compiled base gets its own wrapper, and the
    resulting double note is harmless (the dirty set is a set).
    """
    if vars(target).get(OBI_WRITE_HOOK_ATTR):
        return
    inherited = target.__setattr__

    def __setattr__(self, name, value, _inherited=inherited):
        _inherited(self, name, value)
        note_write(self, name)

    __setattr__.__qualname__ = f"{target.__qualname__}.__setattr__"
    __setattr__.__module__ = target.__module__
    target.__setattr__ = __setattr__
    setattr(target, OBI_WRITE_HOOK_ATTR, True)


def compile_class(cls: type | None = None, *, interface_name: str | None = None):
    """Compile ``cls`` for OBIWAN; usable as ``@compile_class`` directly
    or as ``@compile_class(interface_name="IThing")``.

    Compilation is idempotent.  Classes using ``__slots__`` are rejected:
    replica state management relies on instance ``__dict__``, as the Java
    prototype relies on field reflection.
    """

    def apply(target: type) -> type:
        if not isinstance(target, type):
            raise ReplicationError(f"obicomp can only compile classes, got {target!r}")
        if is_compiled_class(target):
            return target
        if any("__slots__" in vars(klass) for klass in target.__mro__ if klass is not object):
            raise ReplicationError(
                f"class {target.__name__} uses __slots__; OBIWAN-managed state "
                "must live in the instance __dict__"
            )
        interface = derive_interface(target, interface_name)
        proxy_out_cls = make_proxy_out_class(interface)
        setattr(target, OBI_INTERFACE_ATTR, interface)
        _install_write_hook(target)
        entry = global_registry.register(target)
        # Schema-compile the wire codec as part of the obicomp pass (the
        # registry already tried on first registration; this is idempotent
        # and keeps the derivation an explicit compile step).
        maybe_compile_codec(entry)
        compiled_registry.add(CompiledEntry(target, interface, proxy_out_cls))
        return target

    if cls is not None:
        return apply(cls)
    return apply
