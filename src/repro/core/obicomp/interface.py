"""Interface derivation.

The paper: "from every existing class A, an interface representing its
public methods can be automatically derived".  We collect the public
plain methods along the MRO in definition order.

Properties are rejected with a clear error: a property on a replicated
class would invite direct state access through a proxy-out, which OBIWAN
forbids (Section 2.1's method-only restriction).
"""

from __future__ import annotations

import inspect

from repro.core.interfaces import Interface
from repro.util.errors import ReplicationError


def derive_interface(cls: type, name: str | None = None) -> Interface:
    """Build the :class:`Interface` of ``cls`` from its public methods."""
    if not inspect.isclass(cls):
        raise ReplicationError(f"obicomp can only compile classes, got {cls!r}")

    methods: list[str] = []
    seen: set[str] = set()
    for klass in reversed(cls.__mro__):
        if klass is object:
            continue
        for attr_name, attr in vars(klass).items():
            if attr_name.startswith("_") or attr_name in seen:
                continue
            if isinstance(attr, property):
                raise ReplicationError(
                    f"class {cls.__name__} exposes property {attr_name!r}; OBIWAN "
                    "objects are manipulated only through methods — wrap it in "
                    "explicit getter/setter methods"
                )
            if isinstance(attr, staticmethod | classmethod):
                # Not part of the instance interface; they need no proxying.
                continue
            if callable(attr):
                methods.append(attr_name)
                seen.add(attr_name)
    if not methods:
        raise ReplicationError(
            f"class {cls.__name__} has no public methods; an OBIWAN interface "
            "cannot be empty"
        )
    interface_name = name if name is not None else f"I{cls.__name__}"
    return Interface(name=interface_name, methods=tuple(methods))
