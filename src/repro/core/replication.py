"""The incremental replication engine (paper Section 2.2).

Provider side — :func:`build_package` is the generalized ``A.get``:

1. collect the replication set by bounded BFS from the fetch root
   (``mode.chunk`` objects / ``mode.depth`` levels; unbounded = the
   paper's transitive closure);
2. for every member (per-object-pair mode) ensure a proxy-in exists so
   the consumer can individually ``put``/refresh it — in clustered mode
   only the root has one;
3. serialize the members by value; every reference leaving the set is
   swizzled into a proxy-out descriptor carrying the frontier object's
   proxy-in reference (steps 2–6 of the paper's ``get``);
4. return a :class:`~repro.core.packages.ReplicaPackage` with per-object
   metadata (version, provider, cluster membership).

Consumer side — :func:`integrate_package`:

1. decode the payload; proxy-out descriptors materialize as generated
   proxy-out instances — or short-circuit to already-local replicas;
2. objects that already have a local replica are updated *in place* so
   every existing alias observes the refresh;
3. every unresolved proxy-out records the objects holding it as
   demanders (the paper's ``setDemander``), enabling ``updateMember``
   splicing when the fault fires.

Write-back — :func:`build_put` / :func:`apply_put` implement ``put``:
replica state travels with OBIWAN references flattened to logical ids;
the master site re-links them to its own objects and adopts any
consumer-created objects that arrive by value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import graphwalk
from repro.core.interfaces import ReplicationMode
from repro.core.meta import interface_of, is_obiwan, obi_id_of
from repro.core.packages import ObjectMeta, PutEntry, PutPackage, ReplicaPackage
from repro.core.proxy_out import ProxyOutBase
from repro.rmi.refs import RemoteRef
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.serial.swizzle import SwizzleDescriptor
from repro.util.errors import ReplicationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import Site

#: Swizzle kind for references leaving the replication set.
PROXY_OUT_KIND = "obiwan.proxy-out"


# ----------------------------------------------------------------------
# provider side
# ----------------------------------------------------------------------
class PackagingSwizzler:
    """Encoder hook used while building a replica package."""

    def __init__(self, site: "Site", member_ids: set[int]):
        self._site = site
        self._member_ids = member_ids
        self.pairs_created = 0

    def swizzle(self, value: object) -> SwizzleDescriptor | None:
        if isinstance(value, ProxyOutBase):
            # A frontier reference that is itself still a fault at the
            # provider (chained replication): forward its provider.
            return SwizzleDescriptor(
                PROXY_OUT_KIND,
                (value._obi_target_id, value._obi_interface.name, value._obi_provider),
            )
        if is_obiwan(value) and id(value) not in self._member_ids:
            ref, created = self._site.ensure_provider_for(value)
            if created:
                self.pairs_created += 1
            return SwizzleDescriptor(
                PROXY_OUT_KIND, (obi_id_of(value), interface_of(value).name, ref)
            )
        return None

    def unswizzle(self, descriptor: SwizzleDescriptor) -> object:  # pragma: no cover
        raise ReplicationError("packaging swizzler cannot decode")


def build_package(site: "Site", root: object, mode: ReplicationMode) -> ReplicaPackage:
    """Provider-side ``get(mode)``: package ``root``'s partial graph."""
    members = graphwalk.breadth_first(
        root, max_objects=mode.chunk, max_depth=mode.depth
    )
    if not members:
        raise ReplicationError("replication root resolves to no object")
    root = members[0]
    _normalize_resolved_proxies(members)

    root_id = obi_id_of(root)
    member_ids = {id(m) for m in members}
    pairs_created = 0
    meta: dict[str, ObjectMeta] = {}
    for member in members:
        oid = obi_id_of(member)
        provider_ref: RemoteRef | None = None
        cluster_root: str | None = None
        if mode.clustered and member is not root:
            cluster_root = root_id
            site.note_master(member)
        else:
            provider_ref, created = site.ensure_provider_for(member)
            if created:
                pairs_created += 1
        meta[oid] = ObjectMeta(
            obi_id=oid,
            interface=interface_of(member).name,
            version=site.version_of(member),
            provider=provider_ref,
            cluster_root=cluster_root,
        )

    swizzler = PackagingSwizzler(site, member_ids)
    payload = Encoder(site.registry, swizzler).encode(root)
    pairs_created += swizzler.pairs_created

    site.charge_serialization(len(payload))
    site.charge_pairs(pairs_created)
    site.charge_pair_batch(pairs_created)
    return ReplicaPackage(
        root_id=root_id,
        payload=payload,
        meta=meta,
        mode=mode,
        pairs_created=pairs_created,
    )


def _normalize_resolved_proxies(members: list[object]) -> None:
    """Replace already-resolved proxy-outs in member state by their targets.

    Keeps the encoder from ever meeting a resolved proxy: after this pass
    every proxy-out in member state is a genuine frontier fault.
    """
    replacements: dict[int, object] = {}
    for member in members:
        for ref in graphwalk.direct_references(member):
            if isinstance(ref, ProxyOutBase) and ref._obi_resolved is not None:
                replacements[id(ref)] = ref._obi_resolved
    if replacements:
        for member in members:
            graphwalk.replace_references(member, replacements)


# ----------------------------------------------------------------------
# consumer side
# ----------------------------------------------------------------------
class SiteUnswizzler:
    """Decoder hook: materialize proxy-outs, re-link by-id references."""

    def __init__(self, site: "Site", mode: ReplicationMode):
        self._site = site
        self._mode = mode

    def unswizzle(self, descriptor: SwizzleDescriptor) -> object:
        if descriptor.kind == PROXY_OUT_KIND:
            target_id, interface_name, provider = descriptor.data  # type: ignore[misc]
            local = self._site.local_node_for(target_id)
            if local is not None:
                return local
            return self._site.make_proxy_out(target_id, interface_name, provider, self._mode)
        raise ReplicationError(f"unknown swizzle kind {descriptor.kind!r}")

    def swizzle(self, value: object) -> SwizzleDescriptor | None:  # pragma: no cover
        raise ReplicationError("site unswizzler cannot encode")


def integrate_package(site: "Site", package: ReplicaPackage) -> object:
    """Consumer-side materialization of a replica package.

    Returns the canonical local object for the package root — a fresh
    replica, or the pre-existing one updated in place.
    """
    site.charge_serialization(len(package.payload))
    site.charge_replicas(package.object_count)

    decoder = Decoder(site.registry, SiteUnswizzler(site, package.mode))
    decoded_root = decoder.decode(package.payload)

    arrivals = _collect_arrivals(decoded_root, package)

    # Map freshly decoded copies onto pre-existing local objects.
    replacements: dict[int, object] = {}
    canonical: dict[str, object] = {}
    for oid, fresh in arrivals.items():
        existing = site.local_object_for(oid)
        if existing is None or existing is fresh:
            canonical[oid] = fresh
            continue
        canonical[oid] = existing
        replacements[id(fresh)] = existing
        if not site.is_master(oid):
            # Refresh in place so every alias of the old replica sees the
            # new state; masters keep their own (authoritative) state.
            vars(existing).clear()
            vars(existing).update(vars(fresh))

    if replacements:
        for obj in canonical.values():
            graphwalk.replace_references(obj, replacements)

    for oid, obj in canonical.items():
        entry = package.meta[oid]
        if not site.is_master(oid):
            site.register_replica(obj, entry, package.mode)
        for ref in graphwalk.direct_references(obj):
            if isinstance(ref, ProxyOutBase) and ref._obi_resolved is None:
                ref._obi_add_demander(obj)

    root = canonical.get(package.root_id)
    if root is None:
        raise ReplicationError(
            f"package root {package.root_id!r} missing from decoded graph"
        )
    return root


def _collect_arrivals(decoded_root: object, package: ReplicaPackage) -> dict[str, object]:
    """Walk the decoded graph and index package objects by logical id."""
    arrivals: dict[str, object] = {}
    stack = [decoded_root]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen or isinstance(node, ProxyOutBase) or not is_obiwan(node):
            continue
        seen.add(id(node))
        oid = obi_id_of(node)
        if oid not in package.meta:
            continue  # an already-local object spliced in by the unswizzler
        if oid not in arrivals:
            arrivals[oid] = node
        stack.extend(graphwalk.direct_references(node))
    missing = set(package.meta) - set(arrivals)
    if missing:
        raise ReplicationError(
            f"package advertised objects that never arrived: {sorted(missing)}"
        )
    return arrivals


# ----------------------------------------------------------------------
# write-back (put)
# ----------------------------------------------------------------------
def build_put(site: "Site", replicas: list[object]) -> PutPackage:
    """Build the ``put`` package for one or more local replicas.

    Each entry carries one object's own state.  Every OBIWAN reference in
    that state — to another replica, to a proxy-out, even to an object the
    consumer created locally — travels as a proxy-out descriptor naming a
    provider: the destination re-links references it can resolve locally
    and keeps proxy-outs for the rest.  A consumer-created object thus
    stays mastered at the consumer ("objects can be replicated freely
    among sites").
    """
    entries: list[PutEntry] = []
    total_bytes = 0
    # One swizzler/encoder pair serves every entry: each encode() call is
    # an independent frame, and the swizzler accumulates pairs_created
    # across entries so the cost model is charged once for the batch.
    swizzler = PackagingSwizzler(site, member_ids=set())
    encoder = Encoder(site.registry, swizzler)
    for replica in replicas:
        oid = obi_id_of(replica)
        info = site.replica_info(oid)
        state = dict(vars(replica))
        payload = encoder.encode(state)
        total_bytes += len(payload)
        entries.append(
            PutEntry(obi_id=oid, payload=payload, version_seen=info.version if info else 0)
        )
    site.charge_pairs(swizzler.pairs_created)
    site.charge_serialization(total_bytes)
    return PutPackage(entries=entries)


def apply_put(site: "Site", package: PutPackage) -> dict[str, int]:
    """Master-side ``put``: apply replica states; returns new versions."""
    versions: dict[str, int] = {}
    # Every entry decodes under the same unswizzling policy, so one
    # decoder serves the whole package (each decode() is its own frame).
    decoder = Decoder(site.registry, SiteUnswizzler(site, ReplicationMode()))
    for entry in package.entries:
        site.charge_serialization(len(entry.payload))
        master = site.master_object_for(entry.obi_id)
        if master is None:
            raise ReplicationError(
                f"put targets object {entry.obi_id!r} which is not mastered at "
                f"site {site.name!r}"
            )
        state = decoder.decode(entry.payload)
        if not isinstance(state, dict):
            raise ReplicationError("put payload must decode to a state dict")
        preserved_id = vars(master).get("_obi_id")
        vars(master).clear()
        vars(master).update(state)
        if preserved_id is not None:
            vars(master)["_obi_id"] = preserved_id
        versions[entry.obi_id] = site.bump_master_version(entry.obi_id)
    return versions
