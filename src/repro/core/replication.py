"""The incremental replication engine (paper Section 2.2).

Provider side — :func:`build_package` is the generalized ``A.get``:

1. collect the replication set by bounded BFS from the fetch root
   (``mode.chunk`` objects / ``mode.depth`` levels; unbounded = the
   paper's transitive closure);
2. for every member (per-object-pair mode) ensure a proxy-in exists so
   the consumer can individually ``put``/refresh it — in clustered mode
   only the root has one;
3. serialize the members by value; every reference leaving the set is
   swizzled into a proxy-out descriptor carrying the frontier object's
   proxy-in reference (steps 2–6 of the paper's ``get``);
4. return a :class:`~repro.core.packages.ReplicaPackage` with per-object
   metadata (version, provider, cluster membership).

Consumer side — :func:`integrate_package`:

1. decode the payload; proxy-out descriptors materialize as generated
   proxy-out instances — or short-circuit to already-local replicas;
2. objects that already have a local replica are updated *in place* so
   every existing alias observes the refresh;
3. every unresolved proxy-out records the objects holding it as
   demanders (the paper's ``setDemander``), enabling ``updateMember``
   splicing when the fault fires.

Write-back — :func:`build_put` / :func:`apply_put` implement ``put``:
replica state travels with OBIWAN references flattened to logical ids;
the master site re-links them to its own objects and adopts any
consumer-created objects that arrive by value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import graphwalk
from repro.core.interfaces import ReplicationMode
from repro.core.meta import interface_of, is_obiwan, obi_id_of
from repro.core.packages import (
    ObjectMeta,
    PutDeltaEntry,
    PutDeltaPackage,
    PutEntry,
    PutPackage,
    RefreshDeltaReply,
    ReplicaPackage,
)
from repro.core.proxy_out import ProxyOutBase
from repro.rmi.protocol import NeedFull
from repro.rmi.refs import RemoteRef
from repro.serial.decoder import Decoder
from repro.serial.delta import FieldDelta, decode_field_delta, encode_field_delta
from repro.serial.encoder import Encoder
from repro.serial.swizzle import SwizzleDescriptor
from repro.util.errors import ReplicationError, UnknownReplicaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import Site

#: Swizzle kind for references leaving the replication set.
PROXY_OUT_KIND = "obiwan.proxy-out"


# ----------------------------------------------------------------------
# provider side
# ----------------------------------------------------------------------
class PackagingSwizzler:
    """Encoder hook used while building a replica package."""

    def __init__(self, site: "Site", member_ids: set[int]):
        self._site = site
        self._member_ids = member_ids
        self.pairs_created = 0

    def swizzle(self, value: object) -> SwizzleDescriptor | None:
        if isinstance(value, ProxyOutBase):
            # A frontier reference that is itself still a fault at the
            # provider (chained replication): forward its provider.
            return SwizzleDescriptor(
                PROXY_OUT_KIND,
                (value._obi_target_id, value._obi_interface.name, value._obi_provider),
            )
        if is_obiwan(value) and id(value) not in self._member_ids:
            ref, created = self._site.ensure_provider_for(value)
            if created:
                self.pairs_created += 1
            return SwizzleDescriptor(
                PROXY_OUT_KIND, (obi_id_of(value), interface_of(value).name, ref)
            )
        return None

    def unswizzle(self, descriptor: SwizzleDescriptor) -> object:  # pragma: no cover
        raise ReplicationError("packaging swizzler cannot decode")


def build_package(site: "Site", root: object, mode: ReplicationMode) -> ReplicaPackage:
    """Provider-side ``get(mode)``: package ``root``'s partial graph."""
    with site.tracer.span("build_package") as span:
        package = _build_package(site, root, mode)
        span.set(
            root=package.root_id,
            objects=package.object_count,
            bytes=len(package.payload),
            pairs=package.pairs_created,
        )
        return package


def _build_package(site: "Site", root: object, mode: ReplicationMode) -> ReplicaPackage:
    members = graphwalk.breadth_first(
        root, max_objects=mode.chunk, max_depth=mode.depth
    )
    if not members:
        raise ReplicationError("replication root resolves to no object")
    root = members[0]
    _normalize_resolved_proxies(members)

    root_id = obi_id_of(root)
    member_ids = {id(m) for m in members}
    pairs_created = 0
    meta: dict[str, ObjectMeta] = {}
    for member in members:
        oid = obi_id_of(member)
        provider_ref: RemoteRef | None = None
        cluster_root: str | None = None
        if mode.clustered and member is not root:
            cluster_root = root_id
            site.note_master(member)
        else:
            provider_ref, created = site.ensure_provider_for(member)
            if created:
                pairs_created += 1
        meta[oid] = ObjectMeta(
            obi_id=oid,
            interface=interface_of(member).name,
            version=site.version_of(member),
            provider=provider_ref,
            cluster_root=cluster_root,
        )

    swizzler = PackagingSwizzler(site, member_ids)
    # The obicodec fast path runs only when this provider has it enabled
    # AND the consumer's mode announced it can decode OBJECT_SCHEMA
    # frames — the same probe-free negotiation prefetch uses.
    encoder = Encoder(
        site.registry,
        swizzler,
        compiled=bool(mode.codec) and site.compiled_codec,
        stats=site.serial_stats,
    )
    payload = encoder.encode(root)
    pairs_created += swizzler.pairs_created

    site.charge_serialization(len(payload))
    site.charge_pairs(pairs_created)
    site.charge_pair_batch(pairs_created)
    return ReplicaPackage(
        root_id=root_id,
        payload=payload,
        meta=meta,
        mode=mode,
        pairs_created=pairs_created,
    )


def _normalize_resolved_proxies(members: list[object]) -> None:
    """Replace already-resolved proxy-outs in member state by their targets.

    Keeps the encoder from ever meeting a resolved proxy: after this pass
    every proxy-out in member state is a genuine frontier fault.
    """
    replacements: dict[int, object] = {}
    for member in members:
        for ref in graphwalk.direct_references(member):
            if isinstance(ref, ProxyOutBase) and ref._obi_resolved is not None:
                replacements[id(ref)] = ref._obi_resolved
    if replacements:
        for member in members:
            graphwalk.replace_references(member, replacements)


# ----------------------------------------------------------------------
# consumer side
# ----------------------------------------------------------------------
class SiteUnswizzler:
    """Decoder hook: materialize proxy-outs, re-link by-id references."""

    def __init__(self, site: "Site", mode: ReplicationMode):
        self._site = site
        self._mode = mode

    def unswizzle(self, descriptor: SwizzleDescriptor) -> object:
        if descriptor.kind == PROXY_OUT_KIND:
            target_id, interface_name, provider = descriptor.data  # type: ignore[misc]
            local = self._site.local_node_for(target_id)
            if local is not None:
                return local
            return self._site.make_proxy_out(target_id, interface_name, provider, self._mode)
        raise ReplicationError(f"unknown swizzle kind {descriptor.kind!r}")

    def swizzle(self, value: object) -> SwizzleDescriptor | None:  # pragma: no cover
        raise ReplicationError("site unswizzler cannot encode")


def integrate_package(site: "Site", package: ReplicaPackage) -> object:
    """Consumer-side materialization of a replica package.

    Returns the canonical local object for the package root — a fresh
    replica, or the pre-existing one updated in place.
    """
    with site.tracer.span(
        "integrate",
        name=package.root_id,
        objects=package.object_count,
        bytes=len(package.payload),
    ):
        return _integrate_package(site, package)


def _integrate_package(site: "Site", package: ReplicaPackage) -> object:
    site.charge_serialization(len(package.payload))
    site.charge_replicas(package.object_count)

    decoder = Decoder(site.registry, SiteUnswizzler(site, package.mode), stats=site.serial_stats)
    decoded_root = decoder.decode(package.payload)

    arrivals = _collect_arrivals(decoded_root, package)

    # Map freshly decoded copies onto pre-existing local objects.
    replacements: dict[int, object] = {}
    canonical: dict[str, object] = {}
    for oid, fresh in arrivals.items():
        existing = site.local_object_for(oid)
        if existing is None or existing is fresh:
            canonical[oid] = fresh
            continue
        canonical[oid] = existing
        replacements[id(fresh)] = existing
        if not site.is_master(oid):
            # Refresh in place so every alias of the old replica sees the
            # new state; masters keep their own (authoritative) state.
            vars(existing).clear()
            vars(existing).update(vars(fresh))

    if replacements:
        for obj in canonical.values():
            graphwalk.replace_references(obj, replacements)

    for oid, obj in canonical.items():
        entry = package.meta[oid]
        if not site.is_master(oid):
            site.register_replica(obj, entry, package.mode)
        for ref in graphwalk.direct_references(obj):
            if isinstance(ref, ProxyOutBase) and ref._obi_resolved is None:
                ref._obi_add_demander(obj)

    root = canonical.get(package.root_id)
    if root is None:
        raise ReplicationError(
            f"package root {package.root_id!r} missing from decoded graph"
        )
    return root


def _collect_arrivals(decoded_root: object, package: ReplicaPackage) -> dict[str, object]:
    """Walk the decoded graph and index package objects by logical id."""
    arrivals: dict[str, object] = {}
    stack = [decoded_root]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen or isinstance(node, ProxyOutBase) or not is_obiwan(node):
            continue
        seen.add(id(node))
        oid = obi_id_of(node)
        if oid not in package.meta:
            continue  # an already-local object spliced in by the unswizzler
        if oid not in arrivals:
            arrivals[oid] = node
        stack.extend(graphwalk.direct_references(node))
    missing = set(package.meta) - set(arrivals)
    if missing:
        raise ReplicationError(
            f"package advertised objects that never arrived: {sorted(missing)}"
        )
    return arrivals


# ----------------------------------------------------------------------
# write-back (put)
# ----------------------------------------------------------------------
def build_put(site: "Site", replicas: list[object], *, compiled: bool = False) -> PutPackage:
    """Build the ``put`` package for one or more local replicas.

    Each entry carries one object's own state.  Every OBIWAN reference in
    that state — to another replica, to a proxy-out, even to an object the
    consumer created locally — travels as a proxy-out descriptor naming a
    provider: the destination re-links references it can resolve locally
    and keeps proxy-outs for the rest.  A consumer-created object thus
    stays mastered at the consumer ("objects can be replicated freely
    among sites").

    With ``compiled=True`` (negotiated per provider by the site) an
    all-scalar replica travels as one self-contained ``OBJECT_SCHEMA``
    frame instead of the reflective state dict; anything the schema
    cannot express keeps the dict frame, entry by entry.
    """
    entries: list[PutEntry] = []
    total_bytes = 0
    # One swizzler/encoder pair serves every entry: each encode() call is
    # an independent frame, and the swizzler accumulates pairs_created
    # across entries so the cost model is charged once for the batch.
    swizzler = PackagingSwizzler(site, member_ids=set())
    encoder = Encoder(site.registry, swizzler, stats=site.serial_stats)
    for replica in replicas:
        oid = obi_id_of(replica)
        info = site.replica_info(oid)
        payload = encoder.encode_compiled(replica) if compiled else None
        if payload is None:
            payload = encoder.encode(dict(vars(replica)))
        total_bytes += len(payload)
        entries.append(
            PutEntry(obi_id=oid, payload=payload, version_seen=info.version if info else 0)
        )
    site.charge_pairs(swizzler.pairs_created)
    site.charge_serialization(total_bytes)
    return PutPackage(entries=entries)


def apply_put(site: "Site", package: PutPackage) -> dict[str, int]:
    """Master-side ``put``: apply replica states; returns new versions."""
    with site.tracer.span("apply_put", entries=len(package.entries)):
        return _apply_put(site, package)


def _apply_put(site: "Site", package: PutPackage) -> dict[str, int]:
    versions: dict[str, int] = {}
    # Every entry decodes under the same unswizzling policy, so one
    # decoder serves the whole package (each decode() is its own frame).
    decoder = Decoder(
        site.registry, SiteUnswizzler(site, ReplicationMode()), stats=site.serial_stats
    )
    for entry in package.entries:
        site.charge_serialization(len(entry.payload))
        master = site.master_object_for(entry.obi_id)
        if master is None:
            raise UnknownReplicaError(
                f"put targets object {entry.obi_id!r} which is not mastered at "
                f"site {site.name!r}"
            )
        state = decoder.decode(entry.payload)
        if is_obiwan(state) and type(state) is type(master):
            # A compiled put entry decodes straight to an instance; its
            # schema admits only scalar fields, so lifting the dict links
            # the master to fresh values, never to the decoded copy.
            state = dict(vars(state))
        if not isinstance(state, dict):
            raise ReplicationError("put payload must decode to a state dict")
        preserved_id = vars(master).get("_obi_id")
        vars(master).clear()
        vars(master).update(state)
        if preserved_id is not None:
            vars(master)["_obi_id"] = preserved_id
        versions[entry.obi_id] = site.bump_master_version(entry.obi_id)
        # A full put replaces the whole state: poison the delta history so
        # refreshes spanning this version go through the full-state path.
        site.change_log.record(entry.obi_id, versions[entry.obi_id], None)
    return versions


# ----------------------------------------------------------------------
# delta write-back (versioned put)
# ----------------------------------------------------------------------
def build_put_delta(
    site: "Site", items: "list[tuple[object, frozenset[str]]]"
) -> PutDeltaPackage:
    """Build a delta ``put``: only each replica's changed fields travel.

    ``items`` pairs a replica with the field names its dirty tracker
    reported.  References swizzle exactly as on the full-state path, so
    the master re-links what it can resolve and keeps proxy-outs for the
    rest.  Each entry also carries a fingerprint of the replica's *full*
    state: the master refuses the merge unless its predicted post-merge
    state digests identically, so tracker bugs and aliasing divergence
    downgrade to the full path instead of corrupting the master.
    """
    entries: list[PutDeltaEntry] = []
    total_bytes = 0
    swizzler = PackagingSwizzler(site, member_ids=set())
    encoder = Encoder(site.registry, swizzler)
    for replica, fields in items:
        oid = obi_id_of(replica)
        info = site.replica_info(oid)
        state = vars(replica)
        delta_fields = {name: state[name] for name in sorted(fields) if name in state}
        payload = encode_field_delta(
            encoder,
            FieldDelta(obi_id=oid, base_version=info.version if info else 0, fields=delta_fields),
        )
        total_bytes += len(payload)
        entries.append(
            PutDeltaEntry(
                obi_id=oid,
                base_version=info.version if info else 0,
                payload=payload,
                fingerprint=site.fingerprinter.of_object(replica),
            )
        )
    site.charge_pairs(swizzler.pairs_created)
    site.charge_serialization(total_bytes)
    return PutDeltaPackage(entries=entries)


def apply_put_delta(site: "Site", package: PutDeltaPackage) -> "dict[str, int] | NeedFull":
    """Master-side delta ``put``: validate everything, then merge.

    All-or-nothing: every entry must find its master (else a typed
    :class:`UnknownReplicaError`), match the master's current version
    exactly, and — after decoding — predict a post-merge state whose
    fingerprint equals the consumer's.  Any version or fingerprint
    mismatch answers :class:`NeedFull` with *nothing* applied, so the
    consumer's full-state retry sees an unchanged master.
    """
    with site.tracer.span("apply_put_delta", entries=len(package.entries)) as span:
        result = _apply_put_delta(site, package)
        if isinstance(result, NeedFull):
            span.set(outcome="need_full")
        return result


def _apply_put_delta(site: "Site", package: PutDeltaPackage) -> "dict[str, int] | NeedFull":
    decoder = Decoder(site.registry, SiteUnswizzler(site, ReplicationMode()))
    staged: list[tuple[str, object, dict[str, object]]] = []
    for entry in package.entries:
        site.charge_serialization(len(entry.payload))
        master = site.master_object_for(entry.obi_id)
        if master is None:
            raise UnknownReplicaError(
                f"delta put targets object {entry.obi_id!r} which is not mastered "
                f"at site {site.name!r}"
            )
        current = site.master_version(master)
        if current != entry.base_version:
            return NeedFull(
                f"object {entry.obi_id!r} is at version {current}, delta is based "
                f"on version {entry.base_version}"
            )
        fields = decode_field_delta(decoder, entry.payload)
        fields.pop("_obi_id", None)
        predicted = dict(vars(master))
        predicted.update(fields)
        if site.fingerprinter.of_state(predicted) != entry.fingerprint:
            return NeedFull(
                f"post-merge state of {entry.obi_id!r} would diverge from the "
                "consumer's replica"
            )
        staged.append((entry.obi_id, master, fields))
    versions: dict[str, int] = {}
    for oid, master, fields in staged:
        vars(master).update(fields)
        versions[oid] = site.bump_master_version(oid)
        site.change_log.record(oid, versions[oid], frozenset(fields))
    return versions


# ----------------------------------------------------------------------
# delta refresh (versioned get)
# ----------------------------------------------------------------------
def build_refresh_delta(
    site: "Site", master: object, base_version: int
) -> "RefreshDeltaReply | NeedFull":
    """Provider-side delta refresh: the fields changed since ``base_version``.

    Serves from the site's change log; any gap in the history — a full
    put, a blanket ``touch``, retention overflow — answers
    :class:`NeedFull` and the consumer re-fetches full state.
    """
    oid = obi_id_of(master)
    current = site.master_version(master)
    fingerprint = site.fingerprinter.of_object(master)
    if current == base_version:
        return RefreshDeltaReply(obi_id=oid, version=current, payload=b"", fingerprint=fingerprint)
    fields = site.change_log.fields_since(oid, base_version, current)
    if fields is None:
        return NeedFull(
            f"no delta history for {oid!r} from version {base_version} to {current}"
        )
    state = vars(master)
    if any(name not in state for name in fields):
        # A logged field has since been removed; deltas cannot express
        # deletion, so hand the consumer full state.
        return NeedFull(f"fields of {oid!r} were removed since version {base_version}")
    swizzler = PackagingSwizzler(site, member_ids=set())
    encoder = Encoder(site.registry, swizzler)
    payload = encode_field_delta(
        encoder,
        FieldDelta(
            obi_id=oid,
            base_version=base_version,
            fields={name: state[name] for name in sorted(fields)},
        ),
    )
    site.charge_pairs(swizzler.pairs_created)
    site.charge_serialization(len(payload))
    return RefreshDeltaReply(obi_id=oid, version=current, payload=payload, fingerprint=fingerprint)


def apply_refresh_delta(site: "Site", replica: object, reply: RefreshDeltaReply) -> bool:
    """Consumer-side merge of a delta refresh into ``replica`` in place.

    Returns ``True`` when the merged state fingerprints identically to
    the master's; ``False`` signals divergence, and the caller must fall
    back to a full refresh (which overwrites whatever this merge wrote).
    Writes go through ``vars()`` so the merge never marks fields dirty.
    """
    site.charge_serialization(len(reply.payload))
    if reply.payload:
        decoder = Decoder(site.registry, SiteUnswizzler(site, ReplicationMode()))
        fields = decode_field_delta(decoder, reply.payload)
        fields.pop("_obi_id", None)
        vars(replica).update(fields)
        for ref in graphwalk.direct_references(replica):
            if isinstance(ref, ProxyOutBase) and ref._obi_resolved is None:
                ref._obi_add_demander(replica)
    return site.fingerprinter.of_object(replica) == reply.fingerprint
