"""Object identity and the compiled-class registry.

Every OBIWAN-managed object carries a stable logical identity, ``_obi_id``,
stored in its instance ``__dict__`` so it crosses the wire with the rest of
the state.  A master and all of its replicas share one ``_obi_id`` — it is
how sites correlate "the same object" across the network, the way the Java
prototype correlates through its proxy-in references.

The :class:`CompiledClassRegistry` records every obicomp-compiled class:
its derived interface and its generated proxy-out class.  The paper's
deployment model ships obicomp output to every site; here all sites live in
one process, so a single registry plays that role.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.interfaces import Interface
from repro.util.errors import ReplicationError
from repro.util.ids import IdGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.proxy_out import ProxyOutBase

#: Instance attribute holding the logical object identity.
OBI_ID_ATTR = "_obi_id"

#: Class attribute holding the derived :class:`Interface`.
OBI_INTERFACE_ATTR = "_obi_interface"

_obi_ids = IdGenerator("oid")


def is_compiled_class(cls: type) -> bool:
    """True if ``cls`` went through obicomp (has a derived interface)."""
    return OBI_INTERFACE_ATTR in vars(cls)


def is_obiwan(obj: object) -> bool:
    """True if ``obj`` is an instance of an obicomp-compiled class.

    Proxy-outs are *not* obiwan objects in this sense — they are platform
    stand-ins; use ``isinstance(obj, ProxyOutBase)`` for those.
    """
    return is_compiled_class(type(obj))


def interface_of(target: object) -> Interface:
    """The derived interface of a compiled class or instance."""
    cls = target if isinstance(target, type) else type(target)
    for klass in cls.__mro__:
        iface = vars(klass).get(OBI_INTERFACE_ATTR)
        if iface is not None:
            return iface
    raise ReplicationError(
        f"{cls.__module__}.{cls.__qualname__} was not compiled with obicomp; "
        "decorate it with @obiwan.compile"
    )


def obi_id_of(obj: object) -> str:
    """The logical identity of ``obj``, assigning one on first use."""
    if not is_obiwan(obj):
        raise ReplicationError(
            f"{type(obj).__name__} instance is not an OBIWAN object; compile its class first"
        )
    existing = vars(obj).get(OBI_ID_ATTR)
    if existing is not None:
        return existing
    fresh = _obi_ids()
    vars(obj)[OBI_ID_ATTR] = fresh
    return fresh


def peek_obi_id(obj: object) -> str | None:
    """The logical identity of ``obj`` if it has one, without assigning."""
    return vars(obj).get(OBI_ID_ATTR)


class CompiledClassRegistry:
    """interface name → compiled class + generated proxy-out class."""

    def __init__(self) -> None:
        self._by_interface: dict[str, "CompiledEntry"] = {}

    def add(self, entry: "CompiledEntry") -> None:
        existing = self._by_interface.get(entry.interface.name)
        if existing is not None and existing.cls is not entry.cls:
            raise ReplicationError(
                f"interface {entry.interface.name!r} already compiled for {existing.cls!r}"
            )
        self._by_interface[entry.interface.name] = entry

    def by_interface(self, name: str) -> "CompiledEntry":
        try:
            return self._by_interface[name]
        except KeyError:
            raise ReplicationError(
                f"no compiled class for interface {name!r} on this site; "
                "all sites must load the same obicomp output"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_interface

    def __len__(self) -> int:
        return len(self._by_interface)


class CompiledEntry:
    """One obicomp compilation result."""

    __slots__ = ("cls", "interface", "proxy_out_cls")

    def __init__(self, cls: type, interface: Interface, proxy_out_cls: "type[ProxyOutBase]"):
        self.cls = cls
        self.interface = interface
        self.proxy_out_cls = proxy_out_cls

    def __repr__(self) -> str:
        return f"CompiledEntry({self.cls.__name__}, {self.interface.name})"


#: Process-wide registry of compiled classes (the shipped obicomp output).
compiled_registry = CompiledClassRegistry()
