"""Reachability-based collection of master records.

The lease DGC (:mod:`repro.core.dgc`) reclaims *proxies-in* when no
remote site references them; this module reclaims the *master records*
themselves.  A master record stays live iff it is reachable from a root:

* an explicitly pinned object (typically everything name-published);
* a master some remote site still leases (when a
  :class:`~repro.core.dgc.DgcServer` is attached);
* any replica this site holds (its fields may point at local masters);
* anything transitively reachable from the above through OBIWAN
  references.

This is the site-local slice of the OBIWAN authors' follow-up work on
distributed garbage collection for replicated objects (the TPDS'03
platform paper): acyclic cross-site garbage falls to the lease
mechanism, local reachability falls to this collector, and the
application's pins anchor the roots.

Dropping a master only forgets middleware bookkeeping — the Python
object survives as plain state if the application still holds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core import graphwalk
from repro.core.meta import obi_id_of
from repro.core.proxy_out import ProxyOutBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dgc import DgcServer
    from repro.core.runtime import Site


@dataclass
class MasterCollectionReport:
    reclaimed: list[str]
    live: int
    roots: int


class MasterCollector:
    """Mark-and-forget over one site's master table."""

    def __init__(self, site: "Site", dgc: "DgcServer | None" = None):
        self.site = site
        self.dgc = dgc
        self._pinned: dict[str, object] = {}

    # ------------------------------------------------------------------
    # roots
    # ------------------------------------------------------------------
    def pin(self, obj: object) -> None:
        """Anchor an object (and everything it reaches) as live."""
        self._pinned[obi_id_of(obj)] = obj

    def unpin(self, obj: object) -> None:
        self._pinned.pop(obi_id_of(obj), None)

    def _roots(self) -> list[object]:
        roots: list[object] = list(self._pinned.values())
        roots.extend(record.obj for record in self.site.iter_replicas())
        if self.dgc is not None:
            for oid, record in self.site.iter_masters():
                if self.dgc.holders_of(record.obj):
                    roots.append(record.obj)
        return roots

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def live_oids(self) -> set[str]:
        """The oids reachable from the current roots."""
        live: set[str] = set()
        stack = self._roots()
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if isinstance(node, ProxyOutBase):
                if node._obi_resolved is not None:
                    stack.append(node._obi_resolved)
                continue  # unresolved: its referent lives elsewhere
            if id(node) in seen:
                continue
            seen.add(id(node))
            live.add(obi_id_of(node))
            stack.extend(graphwalk.direct_references(node))
        return live

    def collect(self) -> MasterCollectionReport:
        """Drop every master record not reachable from a root."""
        roots = self._roots()
        live = self.live_oids()
        reclaimed: list[str] = []
        kept = 0
        for oid, _record in self.site.iter_masters():
            if oid in live:
                kept += 1
                continue
            if self.site.drop_master(oid):
                reclaimed.append(oid)
        return MasterCollectionReport(reclaimed=sorted(reclaimed), live=kept, roots=len(roots))
