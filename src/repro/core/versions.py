"""Sync versions, dirty-field tracking, and the master change log.

Three pieces of bookkeeping make delta synchronization possible:

* **Write notes** — obicomp instruments every compiled class's
  ``__setattr__`` to call :func:`note_write`.  For objects nobody
  enrolled the note is a single dict probe; for enrolled replicas it
  records the attribute name in a dirty set.  This is the "captured
  cheaply at mutation time" half of the design.
* **:class:`DirtyTracker`** (consumer side, one per site) — enrolls
  replicas, snapshots their dirty state at put time, and re-baselines
  after a successful sync.  Mutations the instrumented ``__setattr__``
  cannot see fall back conservatively: in-place container mutation is
  caught by per-field fingerprints taken at the last sync point, and
  ``__dict__``-level surgery (new/deleted keys that never went through
  ``__setattr__``) downgrades the whole object to the full-state path.
* **:class:`ChangeLog`** (master side, one per site) — remembers which
  fields each applied version changed, so a ``get``-refresh can ship
  only the fields a consumer's ``base_version`` is missing.  Whole-state
  events (full put, ``touch`` without a field list) and retention gaps
  poison the range, forcing the full-state refresh (``NEED_FULL``).

Every enrolled object also carries a monotonically increasing *sync
version* — bumped on each successful re-baseline — plus a mutation
counter that lets an in-flight put detect concurrent writes and leave
them dirty for the next round instead of losing them.
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.serial.delta import IMMUTABLE_SCALARS
from repro.util.errors import RetentionGapError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable

    from repro.serial.delta import Fingerprinter

#: Reserved attributes that never count as application state changes.
_META_FIELDS = frozenset({"_obi_id"})


class _Track:
    """Mutable dirty-state record for one enrolled object."""

    __slots__ = ("dirty", "whole", "mutations", "sync_version", "known_fields", "container_fps")

    def __init__(self) -> None:
        self.dirty: set[str] = set()
        self.whole = False
        self.mutations = 0
        self.sync_version = 0
        self.known_fields: frozenset[str] = frozenset()
        self.container_fps: dict[str, str] = {}


#: id(obj) → track, shared by every site in the process (an object lives
#: in exactly one site's tables, so records never collide).  Guarded by
#: the GIL for the single-probe fast path; structural changes go through
#: ``_TABLE_LOCK``.
_RECORDS: dict[int, _Track] = {}
_TABLE_LOCK = threading.Lock()


def note_write(obj: object, name: str) -> None:
    """Record an attribute write on ``obj`` (called by instrumented
    ``__setattr__`` on *every* compiled-class write — must stay cheap)."""
    track = _RECORDS.get(id(obj))
    if track is None or name in _META_FIELDS:
        return
    track.dirty.add(name)
    track.mutations += 1


def is_tracked(obj: object) -> bool:
    return id(obj) in _RECORDS


@dataclass(frozen=True, slots=True)
class DirtySnapshot:
    """What a put observed at build time; pass back to :meth:`commit`."""

    fields: frozenset[str]
    whole: bool
    mutations: int
    sync_version: int

    @property
    def clean(self) -> bool:
        return not self.whole and not self.fields


class DirtyTracker:
    """Per-site enrollment and snapshot/commit protocol."""

    def __init__(self, fingerprinter: "Fingerprinter"):
        self._fingerprinter = fingerprinter

    # ------------------------------------------------------------------
    # enrollment
    # ------------------------------------------------------------------
    def enroll(self, obj: object) -> None:
        """Start (or restart) tracking ``obj`` from a just-synced baseline."""
        key = id(obj)
        with _TABLE_LOCK:
            track = _RECORDS.get(key)
            if track is None:
                track = _Track()
                _RECORDS[key] = track
                # Drop the record when the object dies; the identity guard
                # protects a reused id that was re-enrolled by a new object
                # before this finalizer ran.
                weakref.finalize(obj, _discard, key, track)
            self._rebaseline_locked(obj, track)

    def forget(self, obj: object) -> None:
        key = id(obj)
        with _TABLE_LOCK:
            _RECORDS.pop(key, None)

    def is_enrolled(self, obj: object) -> bool:
        return id(obj) in _RECORDS

    def sync_version(self, obj: object) -> int | None:
        track = _RECORDS.get(id(obj))
        return track.sync_version if track is not None else None

    def mark_whole(self, obj: object) -> None:
        """Force the full-state path for the next sync of ``obj``."""
        track = _RECORDS.get(id(obj))
        if track is not None:
            track.whole = True
            track.mutations += 1

    # ------------------------------------------------------------------
    # the put-time protocol
    # ------------------------------------------------------------------
    def capture(self, obj: object) -> DirtySnapshot | None:
        """Snapshot ``obj``'s dirty state; ``None`` if not enrolled.

        Combines the three change sources: attribute writes seen by
        ``__setattr__``; container fields whose fingerprint drifted from
        the last baseline; and ``__dict__``-level surgery, which returns
        a whole-object snapshot (delta cannot express key deletion).
        """
        track = _RECORDS.get(id(obj))
        if track is None:
            return None
        state = vars(obj)
        current = frozenset(k for k in state if k not in _META_FIELDS)
        # Keys that appeared without a __setattr__ note, or vanished (no
        # __delattr__ instrumentation): __dict__-level surgery the delta
        # format cannot express — downgrade to whole-object.
        unexplained_added = current - track.known_fields - track.dirty
        removed = track.known_fields - current
        if track.whole or unexplained_added or removed:
            return DirtySnapshot(
                fields=frozenset(),
                whole=True,
                mutations=track.mutations,
                sync_version=track.sync_version,
            )
        fields = set(track.dirty)
        for name, baseline in track.container_fps.items():
            if name in fields or name not in state:
                continue
            if self._fingerprinter.of_value(state[name]) != baseline:
                fields.add(name)
        return DirtySnapshot(
            fields=frozenset(fields),
            whole=False,
            mutations=track.mutations,
            sync_version=track.sync_version,
        )

    def commit(self, obj: object, snapshot: DirtySnapshot) -> None:
        """Mark the snapshot's changes as synced.

        If the object mutated after :meth:`capture`, the dirty state is
        left in place (over-approximation: the next put re-ships those
        fields) — losing a concurrent write would corrupt the master.
        """
        track = _RECORDS.get(id(obj))
        if track is None:
            return
        with _TABLE_LOCK:
            if track.mutations != snapshot.mutations:
                return
            self._rebaseline_locked(obj, track)

    # ------------------------------------------------------------------
    def _rebaseline_locked(self, obj: object, track: _Track) -> None:
        state = vars(obj)
        track.dirty.clear()
        track.whole = False
        track.sync_version += 1
        track.known_fields = frozenset(k for k in state if k not in _META_FIELDS)
        fps: dict[str, str] = {}
        for name, value in state.items():
            if name in _META_FIELDS or isinstance(value, IMMUTABLE_SCALARS):
                continue
            # Anything mutable-in-place (containers, registered plain
            # objects) gets a baseline fingerprint; direct OBIWAN node
            # references hash as identity, so in-place mutation of the
            # *referent* stays the referent's own business.
            fps[name] = self._fingerprinter.of_value(value)
        track.container_fps = fps


def _discard(key: int, track: _Track) -> None:
    with _TABLE_LOCK:
        if _RECORDS.get(key) is track:
            del _RECORDS[key]


# ----------------------------------------------------------------------
# master side
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class FeedEvent:
    """One serial-numbered entry in the site-wide change journal.

    ``fields=None`` marks a whole-state change.  Serials are dense and
    strictly increasing per site; the feed layer (:mod:`repro.feed`)
    streams these to followers and uses the serial as the catch-up
    cursor after a disconnection.
    """

    serial: int
    oid: str
    version: int
    fields: frozenset[str] | None


class ChangeLog:
    """Per-master history of which fields each version changed.

    ``fields=None`` marks a whole-state change (full put, blanket
    ``touch``).  Retention is bounded per object; asking for a range the
    log no longer covers returns ``None``, which the protocol maps to
    ``NEED_FULL``.

    Beyond the per-oid field log, every :meth:`record` also appends a
    serial-numbered :class:`FeedEvent` to a site-wide *journal* (its own,
    larger retention window) and notifies subscribed observers — the
    substrate of the change feed.  The journal carries an *epoch* number
    that advances on failover promotion so frames from a deposed primary
    are recognizably stale.
    """

    def __init__(self, *, retention: int = 64, journal_retention: int = 512):
        self._retention = retention
        self._log: dict[str, deque[tuple[int, frozenset[str] | None]]] = {}
        self._journal: deque[FeedEvent] = deque(maxlen=journal_retention)
        self._next_serial = 1
        self._epoch = 0
        self._observers: list[Callable[[FeedEvent], None]] = []
        self._lock = threading.Lock()

    def record(self, oid: str, version: int, fields: frozenset[str] | None) -> int:
        """Record a local change; returns the serial it was journaled at."""
        with self._lock:
            entries = self._log.get(oid)
            if entries is None:
                entries = deque(maxlen=self._retention)
                self._log[oid] = entries
            entries.append((version, fields))
            event = FeedEvent(self._next_serial, oid, version, fields)
            self._next_serial += 1
            self._journal.append(event)
            observers = list(self._observers)
        # Observers push on the network; never call them under the lock.
        for observer in observers:
            observer(event)
        return event.serial

    def record_mirror(self, serial: int, oid: str, version: int, fields: frozenset[str] | None) -> None:
        """Journal an event *applied from a feed* at its original serial.

        Followers mirror the primary's journal so that, on promotion, the
        new primary's serial numbering continues where the group left off
        and its own field log can serve delta refreshes.  Does not notify
        observers — mirrored events are not local writes.
        """
        with self._lock:
            entries = self._log.get(oid)
            if entries is None:
                entries = deque(maxlen=self._retention)
                self._log[oid] = entries
            entries.append((version, fields))
            self._journal.append(FeedEvent(serial, oid, version, fields))
            if serial >= self._next_serial:
                self._next_serial = serial + 1

    def has_history(self, oid: str) -> bool:
        """Does the field log hold any entry for ``oid``?"""
        with self._lock:
            return oid in self._log

    # -- serial / epoch surface -----------------------------------------
    @property
    def earliest_serial(self) -> int:
        """Oldest serial the journal still retains (0 when empty)."""
        with self._lock:
            return self._journal[0].serial if self._journal else 0

    @property
    def latest_serial(self) -> int:
        """Newest serial handed out (0 before the first record)."""
        with self._lock:
            return self._next_serial - 1

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def adopt_epoch(self, epoch: int) -> int:
        """Raise the epoch to at least ``epoch``; returns the current one."""
        with self._lock:
            if epoch > self._epoch:
                self._epoch = epoch
            return self._epoch

    def bump_epoch(self) -> int:
        """Advance the epoch (failover promotion); returns the new one."""
        with self._lock:
            self._epoch += 1
            return self._epoch

    def subscribe(self, observer: "Callable[[FeedEvent], None]") -> None:
        """Call ``observer(event)`` after every local :meth:`record`.

        Observers run outside the log's lock, on the recording thread.
        """
        with self._lock:
            self._observers.append(observer)

    def unsubscribe(self, observer: "Callable[[FeedEvent], None]") -> None:
        with self._lock:
            if observer in self._observers:
                self._observers.remove(observer)

    def events_since(self, serial: int) -> list[FeedEvent]:
        """Journal events with serials strictly greater than ``serial``.

        Raises :class:`RetentionGapError` when the journal can no longer
        prove it covers ``(serial, latest]`` — the caller must bootstrap
        from a full snapshot instead.
        """
        with self._lock:
            latest = self._next_serial - 1
            if serial >= latest:
                return []
            earliest = self._journal[0].serial if self._journal else latest + 1
            if earliest > serial + 1:
                raise RetentionGapError(
                    f"journal retains serials [{earliest}, {latest}]; "
                    f"cannot catch up from {serial}",
                    requested=serial,
                    earliest=earliest,
                    latest=latest,
                )
            return [event for event in self._journal if event.serial > serial]

    # -- per-oid field ranges -------------------------------------------
    def fields_since(self, oid: str, base_version: int, current_version: int) -> frozenset[str] | None:
        """Union of fields changed in ``(base_version, current_version]``.

        ``None`` when the range includes a whole-state change, or when
        the log cannot prove it covers every version in the range.
        """
        try:
            return self.changed_fields(oid, base_version, current_version)
        except RetentionGapError:
            return None

    def changed_fields(self, oid: str, base_version: int, current_version: int) -> frozenset[str] | None:
        """Strict variant of :meth:`fields_since`.

        ``None`` still means "whole-state change in range" (a legitimate
        downgrade), but a coverage gap raises :class:`RetentionGapError`
        instead of hiding inside the same ``None``.
        """
        if current_version <= base_version:
            return frozenset()
        with self._lock:
            entries = list(self._log.get(oid, ()))
        covered: set[int] = set()
        changed: set[str] = set()
        for version, fields in entries:
            if base_version < version <= current_version:
                if fields is None:
                    return None
                covered.add(version)
                changed.update(fields)
        missing = set(range(base_version + 1, current_version + 1)) - covered
        if missing:
            retained = sorted(version for version, _ in entries)
            raise RetentionGapError(
                f"field log for {oid!r} does not cover versions {sorted(missing)}",
                requested=base_version,
                earliest=retained[0] if retained else 0,
                latest=retained[-1] if retained else 0,
            )
        return frozenset(changed)

    def drop(self, oid: str) -> None:
        with self._lock:
            self._log.pop(oid, None)
