"""Proxy-out garbage-collection accounting.

The paper relies on the JVM collector: after ``updateMember`` splices the
replica in, "BProxyOut is no longer reachable in S1 and will be reclaimed
by the garbage collector of the underlying virtual machine".  Python's
collector plays the same role here; this module keeps weak references to
resolved proxies so tests and benchmarks can *observe* that reclamation
actually happens.
"""

from __future__ import annotations

import gc
import weakref


class GcStats:
    """Counters and weak tracking for one site's proxy-outs."""

    def __init__(self) -> None:
        self.proxies_created = 0
        self.faults_resolved = 0
        self._resolved_refs: list[weakref.ref] = []

    def track_created(self) -> None:
        self.proxies_created += 1

    def track_resolved(self, proxy: object) -> None:
        """Start watching a spliced-out proxy for collection."""
        self.faults_resolved += 1
        self._resolved_refs.append(weakref.ref(proxy))

    @property
    def resolved_alive(self) -> int:
        """Resolved proxies still reachable from somewhere."""
        return sum(1 for ref in self._resolved_refs if ref() is not None)

    @property
    def resolved_collected(self) -> int:
        """Resolved proxies the collector has already reclaimed."""
        return sum(1 for ref in self._resolved_refs if ref() is None)

    def force_collect(self) -> int:
        """Run a full collection and return how many tracked proxies died."""
        before = self.resolved_collected
        gc.collect()
        return self.resolved_collected - before

    def __repr__(self) -> str:
        return (
            f"GcStats(created={self.proxies_created}, resolved={self.faults_resolved}, "
            f"alive={self.resolved_alive}, collected={self.resolved_collected})"
        )
