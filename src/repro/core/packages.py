"""Wire packages exchanged by the replication protocol.

A :class:`ReplicaPackage` is what ``get``/``demand`` returns: a serialized
object-graph payload plus per-object metadata (version, provider
reference, cluster membership).  A :class:`PutPackage` carries replica
state back to masters.

Graph payloads are pre-serialized into ``bytes`` by the replication engine
with a context-specific swizzler, so packages travel through the ordinary
RMI codec without any endpoint-level hooks, and their exact wire size is
available to the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.interfaces import ReplicationMode
from repro.rmi.refs import RemoteRef
from repro.serial.registry import global_registry


@dataclass(slots=True)
class ObjectMeta:
    """Per-object replication metadata inside a :class:`ReplicaPackage`."""

    obi_id: str = ""
    interface: str = ""
    version: int = 1
    #: RemoteRef of the object's own proxy-in — present in per-object-pair
    #: mode so the replica can be individually put/refreshed; ``None`` for
    #: cluster members (paper: "each object can not be individually
    #: updated").
    provider: RemoteRef | None = None
    #: obi id of the cluster root when this object travelled as a cluster
    #: member; ``None`` otherwise.
    cluster_root: str | None = None

    def __getstate__(self) -> object:
        return (self.obi_id, self.interface, self.version, self.provider, self.cluster_root)

    def __setstate__(self, state: object) -> None:
        (self.obi_id, self.interface, self.version, self.provider, self.cluster_root) = state  # type: ignore[misc]


@dataclass(slots=True)
class ReplicaPackage:
    """The provider's answer to ``get(mode)``."""

    root_id: str = ""
    payload: bytes = b""
    meta: dict[str, ObjectMeta] = field(default_factory=dict)
    mode: ReplicationMode = field(default_factory=ReplicationMode)
    #: How many proxy pairs the provider created while building this
    #: package (frontier pairs plus, in per-object mode, member pairs) —
    #: reported so benchmarks can assert the paper's pair-count claims.
    pairs_created: int = 0

    def __getstate__(self) -> object:
        return (self.root_id, self.payload, self.meta, self.mode, self.pairs_created)

    def __setstate__(self, state: object) -> None:
        (self.root_id, self.payload, self.meta, self.mode, self.pairs_created) = state  # type: ignore[misc]

    @property
    def object_count(self) -> int:
        return len(self.meta)


@dataclass(slots=True)
class PutEntry:
    """One object's state travelling back to its master."""

    obi_id: str = ""
    payload: bytes = b""
    #: Master version the consumer last saw — consistency protocols use it
    #: for staleness/conflict detection; the core ignores it.
    version_seen: int = 0

    def __getstate__(self) -> object:
        return (self.obi_id, self.payload, self.version_seen)

    def __setstate__(self, state: object) -> None:
        self.obi_id, self.payload, self.version_seen = state  # type: ignore[misc]


@dataclass(slots=True)
class PutPackage:
    """The consumer's ``put``: one entry per object being written back."""

    entries: list[PutEntry] = field(default_factory=list)

    def __getstate__(self) -> object:
        return self.entries

    def __setstate__(self, state: object) -> None:
        self.entries = state  # type: ignore[assignment]


for _pkg_cls, _wire_name in (
    (ObjectMeta, "core.ObjectMeta"),
    (ReplicaPackage, "core.ReplicaPackage"),
    (PutEntry, "core.PutEntry"),
    (PutPackage, "core.PutPackage"),
):
    global_registry.register(_pkg_cls, name=_wire_name)
