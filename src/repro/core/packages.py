"""Wire packages exchanged by the replication protocol.

A :class:`ReplicaPackage` is what ``get``/``demand`` returns: a serialized
object-graph payload plus per-object metadata (version, provider
reference, cluster membership).  A :class:`PutPackage` carries replica
state back to masters.

Graph payloads are pre-serialized into ``bytes`` by the replication engine
with a context-specific swizzler, so packages travel through the ordinary
RMI codec without any endpoint-level hooks, and their exact wire size is
available to the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.interfaces import ReplicationMode
from repro.rmi.refs import RemoteRef
from repro.serial.registry import global_registry


@dataclass(slots=True)
class ObjectMeta:
    """Per-object replication metadata inside a :class:`ReplicaPackage`."""

    obi_id: str = ""
    interface: str = ""
    version: int = 1
    #: RemoteRef of the object's own proxy-in — present in per-object-pair
    #: mode so the replica can be individually put/refreshed; ``None`` for
    #: cluster members (paper: "each object can not be individually
    #: updated").
    provider: RemoteRef | None = None
    #: obi id of the cluster root when this object travelled as a cluster
    #: member; ``None`` otherwise.
    cluster_root: str | None = None

    def __getstate__(self) -> object:
        return (self.obi_id, self.interface, self.version, self.provider, self.cluster_root)

    def __setstate__(self, state: object) -> None:
        (self.obi_id, self.interface, self.version, self.provider, self.cluster_root) = state  # type: ignore[misc]


@dataclass(slots=True)
class ReplicaPackage:
    """The provider's answer to ``get(mode)``."""

    root_id: str = ""
    payload: bytes = b""
    meta: dict[str, ObjectMeta] = field(default_factory=dict)
    mode: ReplicationMode = field(default_factory=ReplicationMode)
    #: How many proxy pairs the provider created while building this
    #: package (frontier pairs plus, in per-object mode, member pairs) —
    #: reported so benchmarks can assert the paper's pair-count claims.
    pairs_created: int = 0

    def __getstate__(self) -> object:
        return (self.root_id, self.payload, self.meta, self.mode, self.pairs_created)

    def __setstate__(self, state: object) -> None:
        (self.root_id, self.payload, self.meta, self.mode, self.pairs_created) = state  # type: ignore[misc]

    @property
    def object_count(self) -> int:
        return len(self.meta)


@dataclass(slots=True)
class PutEntry:
    """One object's state travelling back to its master."""

    obi_id: str = ""
    payload: bytes = b""
    #: Master version the consumer last saw — consistency protocols use it
    #: for staleness/conflict detection; the core ignores it.
    version_seen: int = 0

    def __getstate__(self) -> object:
        return (self.obi_id, self.payload, self.version_seen)

    def __setstate__(self, state: object) -> None:
        self.obi_id, self.payload, self.version_seen = state  # type: ignore[misc]


@dataclass(slots=True)
class PutPackage:
    """The consumer's ``put``: one entry per object being written back."""

    entries: list[PutEntry] = field(default_factory=list)

    def __getstate__(self) -> object:
        return self.entries

    def __setstate__(self, state: object) -> None:
        self.entries = state  # type: ignore[assignment]


@dataclass(slots=True)
class PutDeltaEntry:
    """One object's *changed fields* travelling back to its master.

    ``payload`` is an encoded field-delta frame (see
    :mod:`repro.serial.delta`); ``base_version`` is the master version the
    consumer last synchronized at — the master merges only on an exact
    match.  ``fingerprint`` is the consumer's digest of the replica's full
    post-change state, which the master checks against its own predicted
    post-merge state before applying anything.
    """

    obi_id: str = ""
    base_version: int = 0
    payload: bytes = b""
    fingerprint: str = ""

    def __getstate__(self) -> object:
        return (self.obi_id, self.base_version, self.payload, self.fingerprint)

    def __setstate__(self, state: object) -> None:
        self.obi_id, self.base_version, self.payload, self.fingerprint = state  # type: ignore[misc]


@dataclass(slots=True)
class PutDeltaPackage:
    """A delta-encoded ``put``: one entry per *dirty* object.

    Applied all-or-nothing — the master validates every entry before
    touching any state, and answers ``NEED_FULL`` (not a partial apply)
    when any entry cannot merge.  Only versioned peers ever see this
    frame; the consumer falls back to :class:`PutPackage` otherwise.
    """

    entries: list[PutDeltaEntry] = field(default_factory=list)

    def __getstate__(self) -> object:
        return self.entries

    def __setstate__(self, state: object) -> None:
        self.entries = state  # type: ignore[assignment]


@dataclass(slots=True)
class RefreshDeltaRequest:
    """A versioned refresh: "send me what changed since ``base_version``"."""

    obi_id: str = ""
    base_version: int = 0

    def __getstate__(self) -> object:
        return (self.obi_id, self.base_version)

    def __setstate__(self, state: object) -> None:
        self.obi_id, self.base_version = state  # type: ignore[misc]


@dataclass(slots=True)
class RefreshDeltaReply:
    """The master's answer to a delta refresh.

    ``payload`` holds the changed fields as one delta frame (empty when
    the consumer is already current); ``fingerprint`` digests the
    master's full state so the consumer can verify the merge converged.
    A master that cannot serve the range answers ``NEED_FULL`` instead
    of this frame.
    """

    obi_id: str = ""
    version: int = 0
    payload: bytes = b""
    fingerprint: str = ""

    def __getstate__(self) -> object:
        return (self.obi_id, self.version, self.payload, self.fingerprint)

    def __setstate__(self, state: object) -> None:
        self.obi_id, self.version, self.payload, self.fingerprint = state  # type: ignore[misc]


# ----------------------------------------------------------------------
# change-feed frames (see repro.feed)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class FeedFrame:
    """One journaled change streamed primary → follower.

    ``payload`` is the master's full state encoded with the packaging
    swizzler (references travel as proxy-out descriptions, exactly like a
    :class:`ReplicaPackage` payload); ``provider`` is the primary's
    proxy-in for the object so followers can write through.  ``serial``
    and ``epoch`` order the frame in the group's history.
    """

    serial: int = 0
    epoch: int = 0
    oid: str = ""
    interface: str = ""
    version: int = 0
    payload: bytes = b""
    provider: RemoteRef | None = None

    def __getstate__(self) -> object:
        return (self.serial, self.epoch, self.oid, self.interface, self.version, self.payload, self.provider)

    def __setstate__(self, state: object) -> None:
        (self.serial, self.epoch, self.oid, self.interface, self.version, self.payload, self.provider) = state  # type: ignore[misc]


@dataclass(slots=True)
class FeedBatch:
    """A push of one or more frames: the ``feed_events`` argument.

    ``latest_serial`` is the primary's journal head at push time so the
    follower can compute its lag without another round trip.
    """

    epoch: int = 0
    primary_id: str = ""
    latest_serial: int = 0
    frames: list[FeedFrame] = field(default_factory=list)

    def __getstate__(self) -> object:
        return (self.epoch, self.primary_id, self.latest_serial, self.frames)

    def __setstate__(self, state: object) -> None:
        (self.epoch, self.primary_id, self.latest_serial, self.frames) = state  # type: ignore[misc]


@dataclass(slots=True)
class FeedAck:
    """The follower's answer to ``feed_events``.

    ``accepted=False`` with a higher ``epoch`` tells a deposed primary it
    has been failed over — its frames were rejected, not applied.
    """

    epoch: int = 0
    applied_serial: int = 0
    accepted: bool = True

    def __getstate__(self) -> object:
        return (self.epoch, self.applied_serial, self.accepted)

    def __setstate__(self, state: object) -> None:
        (self.epoch, self.applied_serial, self.accepted) = state  # type: ignore[misc]


@dataclass(slots=True)
class FeedSubscribeRequest:
    """Register ``site_id`` as a follower, catching up from ``last_serial``."""

    site_id: str = ""
    last_serial: int = 0

    def __getstate__(self) -> object:
        return (self.site_id, self.last_serial)

    def __setstate__(self, state: object) -> None:
        (self.site_id, self.last_serial) = state  # type: ignore[misc]


@dataclass(slots=True)
class FeedSubscribeReply:
    """The primary's answer to ``feed_subscribe``.

    ``snapshot_needed=True`` means the journal no longer covers
    ``last_serial`` (retention gap) and the follower must bootstrap from
    ``feed_snapshot`` instead; ``frames`` then stays empty.  ``providers``
    maps every mastered oid to the primary's proxy-in so write-through
    targets are correct even when no catch-up frame mentions the object;
    ``names`` maps name-server bindings to oids for promotion rebinding.
    """

    epoch: int = 0
    latest_serial: int = 0
    snapshot_needed: bool = False
    frames: list[FeedFrame] = field(default_factory=list)
    providers: dict[str, RemoteRef] = field(default_factory=dict)
    names: dict[str, str] = field(default_factory=dict)

    def __getstate__(self) -> object:
        return (self.epoch, self.latest_serial, self.snapshot_needed, self.frames, self.providers, self.names)

    def __setstate__(self, state: object) -> None:
        (self.epoch, self.latest_serial, self.snapshot_needed, self.frames, self.providers, self.names) = state  # type: ignore[misc]


@dataclass(slots=True)
class FeedSnapshotRequest:
    """Full-state bootstrap request (``site_id`` identifies the follower)."""

    site_id: str = ""

    def __getstate__(self) -> object:
        return (self.site_id,)

    def __setstate__(self, state: object) -> None:
        (self.site_id,) = state  # type: ignore[misc]


@dataclass(slots=True)
class FeedSnapshotReply:
    """Every mastered object's state as of journal ``serial``.

    The serial is captured *before* the states are encoded, so a frame
    may carry a newer version than the serial implies — followers apply
    with a version-monotonic guard and then replay the feed tail from
    ``serial``, which makes the bootstrap safe to run concurrently with
    ongoing puts (no quiescing).
    """

    epoch: int = 0
    serial: int = 0
    frames: list[FeedFrame] = field(default_factory=list)
    providers: dict[str, RemoteRef] = field(default_factory=dict)
    names: dict[str, str] = field(default_factory=dict)

    def __getstate__(self) -> object:
        return (self.epoch, self.serial, self.frames, self.providers, self.names)

    def __setstate__(self, state: object) -> None:
        (self.epoch, self.serial, self.frames, self.providers, self.names) = state  # type: ignore[misc]


@dataclass(slots=True)
class PromoteRequest:
    """Ask a follower to take over as primary at ``epoch``."""

    epoch: int = 0
    reason: str = ""

    def __getstate__(self) -> object:
        return (self.epoch, self.reason)

    def __setstate__(self, state: object) -> None:
        (self.epoch, self.reason) = state  # type: ignore[misc]


@dataclass(slots=True)
class PromoteReply:
    """Promotion confirmation: the new primary's epoch and journal head."""

    epoch: int = 0
    serial: int = 0
    site_id: str = ""

    def __getstate__(self) -> object:
        return (self.epoch, self.serial, self.site_id)

    def __setstate__(self, state: object) -> None:
        (self.epoch, self.serial, self.site_id) = state  # type: ignore[misc]


for _pkg_cls, _wire_name in (
    (ObjectMeta, "core.ObjectMeta"),
    (ReplicaPackage, "core.ReplicaPackage"),
    (PutEntry, "core.PutEntry"),
    (PutPackage, "core.PutPackage"),
    (PutDeltaEntry, "core.PutDeltaEntry"),
    (PutDeltaPackage, "core.PutDeltaPackage"),
    (RefreshDeltaRequest, "core.RefreshDeltaRequest"),
    (RefreshDeltaReply, "core.RefreshDeltaReply"),
    (FeedFrame, "feed.FeedFrame"),
    (FeedBatch, "feed.FeedBatch"),
    (FeedAck, "feed.FeedAck"),
    (FeedSubscribeRequest, "feed.FeedSubscribeRequest"),
    (FeedSubscribeReply, "feed.FeedSubscribeReply"),
    (FeedSnapshotRequest, "feed.FeedSnapshotRequest"),
    (FeedSnapshotReply, "feed.FeedSnapshotReply"),
    (PromoteRequest, "feed.PromoteRequest"),
    (PromoteReply, "feed.PromoteReply"),
):
    global_registry.register(_pkg_cls, name=_wire_name)
