"""Lease-based distributed garbage collection for proxies-in.

The Java prototype gets this for free: ``UnicastRemoteObject`` exports
are tracked by RMI's DGC, which holds a *lease* per client and unexports
the object when every lease expires.  Without it, every ``get`` would
leak a proxy-in at the provider forever.  This module reproduces that
substrate:

* a :class:`DgcServer` at a provider tracks, per exported proxy-in,
  which consumer sites hold references and until when;
* a :class:`DgcClient` at a consumer periodically renews (``dirty``) the
  leases for every provider reference it still holds — replicas and
  pending proxy-outs — and releases (``clean``) what it drops;
* :meth:`DgcServer.collect` unexports proxy-ins whose leases have all
  expired (disconnection makes renewal impossible, so a long-offline
  consumer's references lapse — the correct mobile-world behaviour).

Both halves are opt-in: attach them to the sites that want reclamation.
Name-published objects should be pinned (:meth:`DgcServer.pin`), as Java
registries pin their bindings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.meta import obi_id_of
from repro.core.proxy_out import ProxyOutBase
from repro.rmi.refs import RemoteRef
from repro.util.errors import TransportError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site

#: Well-known export id of a site's DGC endpoint.
DGC_OBJECT_ID = "obj:dgc"
DGC_METHODS = ("dirty", "clean")

#: Default lease duration, seconds (Java's ``java.rmi.dgc.leaseValue``
#: defaults to 10 minutes; mobile scenarios want shorter).
DEFAULT_LEASE = 600.0


@dataclass
class DgcReport:
    """Outcome of one :meth:`DgcServer.collect` pass."""

    reclaimed: list[str]
    live: int
    pinned: int


class DgcServer:
    """Provider-side lease table."""

    def __init__(self, site: "Site", *, lease_duration: float = DEFAULT_LEASE,
                 grace_period: float | None = None):
        if lease_duration <= 0:
            raise ValueError("lease duration must be positive")
        self.site = site
        self.lease_duration = lease_duration
        #: Fresh exports are immune for one lease duration by default —
        #: the first consumer has not had a chance to register yet.
        self.grace_period = grace_period if grace_period is not None else lease_duration
        #: oid → {holder site id → lease expiry (site-clock seconds)}
        self._leases: dict[str, dict[str, float]] = {}
        self._exported_at: dict[str, float] = {}
        self._pinned: set[str] = set()
        site.endpoint.export(self, object_id=DGC_OBJECT_ID, interface="IDgc")
        site.events.subscribe("provider_exported", self._on_provider_exported)
        # Providers exported before the server attached still get graced.
        for oid in site.exported_oids():
            self._exported_at.setdefault(oid, site.clock.now())

    # ------------------------------------------------------------------
    # remote surface (called by DgcClient)
    # ------------------------------------------------------------------
    def dirty(self, oids: list[str], holder_site: str) -> float:
        """Renew ``holder_site``'s lease on each oid; returns the granted
        duration so clients know when to renew next."""
        expiry = self.site.clock.now() + self.lease_duration
        for oid in oids:
            self._leases.setdefault(oid, {})[holder_site] = expiry
        return self.lease_duration

    def clean(self, oids: list[str], holder_site: str) -> None:
        """Drop ``holder_site``'s lease on each oid (explicit release)."""
        for oid in oids:
            self._leases.get(oid, {}).pop(holder_site, None)

    # ------------------------------------------------------------------
    # local surface
    # ------------------------------------------------------------------
    def pin(self, obj: object) -> None:
        """Exempt an object from collection (e.g. name-server bindings)."""
        self._pinned.add(obi_id_of(obj))

    def unpin(self, obj: object) -> None:
        self._pinned.discard(obi_id_of(obj))

    def holders_of(self, obj: object) -> list[str]:
        """Sites currently holding a live lease on ``obj``."""
        now = self.site.clock.now()
        leases = self._leases.get(obi_id_of(obj), {})
        return sorted(site for site, expiry in leases.items() if expiry > now)

    def collect(self) -> DgcReport:
        """Unexport every proxy-in whose leases have all lapsed."""
        now = self.site.clock.now()
        reclaimed: list[str] = []
        live = 0
        for oid in list(self._exported_at):
            if oid in self._pinned:
                continue
            if now < self._exported_at[oid] + self.grace_period:
                live += 1
                continue
            leases = self._leases.get(oid, {})
            if any(expiry > now for expiry in leases.values()):
                live += 1
                continue
            if self.site.retract_provider(oid):
                reclaimed.append(oid)
            self._exported_at.pop(oid, None)
            self._leases.pop(oid, None)
        return DgcReport(reclaimed=reclaimed, live=live, pinned=len(self._pinned))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _on_provider_exported(self, *, site: "Site", oid: str, ref: RemoteRef) -> None:
        self._exported_at[oid] = site.clock.now()


class DgcClient:
    """Consumer-side lease renewal."""

    def __init__(self, site: "Site"):
        self.site = site

    # ------------------------------------------------------------------
    # what this site still references remotely
    # ------------------------------------------------------------------
    def held_references(self) -> dict[str, set[str]]:
        """provider site id → oids this site must keep leased."""
        held: dict[str, set[str]] = {}
        for record in self.site.iter_replicas():
            if record.provider is not None:
                held.setdefault(record.provider.site_id, set()).add(
                    obi_id_of(record.obj)
                )
        for proxy in self._pending_proxies():
            held.setdefault(proxy._obi_provider.site_id, set()).add(
                proxy._obi_target_id
            )
        return held

    def _pending_proxies(self) -> list[ProxyOutBase]:
        pending = getattr(self.site, "_pending_proxies", None)
        if pending is None:
            return []
        return [proxy for proxy in pending.values() if proxy._obi_resolved is None]

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------
    def renew(self) -> dict[str, int]:
        """Send ``dirty`` to every provider; returns oids renewed per site.

        Unreachable providers are skipped — an offline consumer simply
        lets its leases lapse, which is the design: the provider reclaims
        and the consumer refetches after reconnecting.
        """
        renewed: dict[str, int] = {}
        for provider_site, oids in self.held_references().items():
            ref = RemoteRef(site_id=provider_site, object_id=DGC_OBJECT_ID, interface="IDgc")
            try:
                self.site.endpoint.invoke(
                    ref, "dirty", (sorted(oids), self.site.name)
                )
            except TransportError:
                continue
            renewed[provider_site] = len(oids)
        return renewed

    def release(self, replica: object) -> None:
        """Evict a replica and clean its lease at the provider."""
        oid = obi_id_of(replica)
        record = self.site.replica_info(oid)
        self.site.evict(replica)
        if record is None or record.provider is None:
            return
        ref = RemoteRef(
            site_id=record.provider.site_id, object_id=DGC_OBJECT_ID, interface="IDgc"
        )
        try:
            self.site.endpoint.invoke(ref, "clean", ([oid], self.site.name))
        except TransportError:  # obilint: disable=OBI107 -- clean is best-effort, like Java DGC's; an unreachable provider's lease lapses on its own
            pass
