"""Interfaces and replication modes.

An :class:`Interface` is the Python analogue of the paper's ``IA``: the
set of methods that may be invoked on an object through OBIWAN — remotely
via its proxy-in, or locally via its proxy-out before the target is
replicated.  obicomp derives it from a user class's public methods.

A :class:`ReplicationMode` is the ``mode`` argument of the paper's
``IProvideRemote::get(mode)``: it selects, *at run time*, how much of the
reachability graph a fetch brings over and whether the fetched objects
share a single proxy pair (a cluster) or get one pair each.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.serial.registry import global_registry
from repro.util.errors import ClusterError


@dataclass(frozen=True)
class Interface:
    """The invocable surface of a compiled class."""

    name: str
    methods: tuple[str, ...]

    def __contains__(self, method: str) -> bool:
        return method in self.methods

    def __iter__(self):
        return iter(self.methods)


#: Sentinel for "no bound" in mode parameters.
UNBOUNDED = 0


@dataclass(frozen=True)
class ReplicationMode:
    """How a ``get`` traverses and packages the reachability graph.

    Attributes
    ----------
    chunk:
        Maximum number of objects fetched per get/fault
        (:data:`UNBOUNDED` = the whole reachable graph — the paper's
        transitive-closure mode).
    depth:
        Maximum BFS depth from the fetch root (:data:`UNBOUNDED` = no
        depth bound).  The paper's clusters are depth-defined: "the
        application specifies the depth of the partial reachability graph
        that it wants to replicate as a whole".
    clustered:
        ``True`` → the fetched objects form one cluster sharing a single
        proxy pair; they cannot be individually updated (Section 4.3).
        ``False`` → every fetched object gets its own proxy-in so it can
        be individually ``put`` / refreshed (Section 4.2).
    prefetch:
        Read-ahead budget for the object-fault fast path.  ``0`` (the
        default) keeps the paper's one-round-trip-per-fault protocol.
        ``k > 0`` lets one fault fetch up to ``k`` objects of the
        incremental chunk in a single round trip (the provider widens the
        demand scope) and piggyback up to ``k`` sibling faults pending on
        the same provider site onto that round trip.  Prefetch is purely a
        transfer-scheduling knob: per-object-pair mode still gives every
        prefetched member its own proxy-in, and clustered fetches never
        widen (cluster membership is a semantic boundary).
    codec:
        Serialization-codec negotiation (PR 7).  ``0`` (the default)
        requests the reflective wire format.  ``1`` announces that the
        consumer decodes obicodec ``OBJECT_SCHEMA`` frames, so a
        codec-enabled provider may use the compiled fast path for the
        payload.  Like ``prefetch``, the field travels only when set, so
        frames stay byte-identical to pre-codec peers — and pre-codec
        peers ignore it on receipt.
    """

    chunk: int = 1
    depth: int = UNBOUNDED
    clustered: bool = False
    prefetch: int = 0
    codec: int = 0

    def __post_init__(self) -> None:
        if self.chunk < 0 or self.depth < 0:
            raise ClusterError("mode bounds must be >= 0 (0 means unbounded)")
        if self.prefetch < 0:
            raise ClusterError("prefetch must be >= 0 (0 disables read-ahead)")
        if self.codec not in (0, 1):
            raise ClusterError("codec must be 0 (reflective) or 1 (obicodec)")
        if self.chunk == UNBOUNDED and self.depth == UNBOUNDED and self.clustered:
            # A whole-graph cluster is legal; nothing to check.
            pass

    @property
    def unbounded(self) -> bool:
        return self.chunk == UNBOUNDED and self.depth == UNBOUNDED

    def demand_scope(self) -> "ReplicationMode":
        """The traversal bound a *fault-time* demand should use.

        With prefetch set on a chunk-bounded per-object mode, the provider
        walks ``max(chunk, prefetch)`` objects so one round trip carries
        the faulting target plus its read-ahead frontier.  Explicit
        ``get``/``replicate`` calls, clustered fetches and unbounded or
        depth-only modes keep their exact scope.
        """
        if (
            self.prefetch <= self.chunk
            or self.clustered
            or self.chunk == UNBOUNDED
        ):
            return self
        return replace(self, chunk=self.prefetch)

    def describe(self) -> str:
        scope_parts = []
        if self.chunk != UNBOUNDED:
            scope_parts.append(f"{self.chunk} objects")
        if self.depth != UNBOUNDED:
            scope_parts.append(f"depth {self.depth}")
        scope = " and ".join(scope_parts) if scope_parts else "whole graph"
        style = "clustered" if self.clustered else "per-object pairs"
        if self.prefetch:
            style += f", prefetch {self.prefetch}"
        return f"{scope}, {style}"


def Incremental(
    chunk: int = 1, *, depth: int = UNBOUNDED, prefetch: int = 0
) -> ReplicationMode:
    """Per-object incremental replication: ``chunk`` objects per fault,
    each with its own proxy pair (paper Section 4.2).  ``prefetch=k``
    turns on the batched-demand fast path: one fault round trip carries
    up to ``k`` objects of read-ahead."""
    if chunk == UNBOUNDED and depth == UNBOUNDED:
        raise ClusterError("Incremental() needs a chunk or depth bound; use Transitive()")
    return ReplicationMode(chunk=chunk, depth=depth, clustered=False, prefetch=prefetch)


def Transitive() -> ReplicationMode:
    """Replicate the whole transitive closure in one step, one proxy pair
    per object so everything stays individually updatable."""
    return ReplicationMode(chunk=UNBOUNDED, depth=UNBOUNDED, clustered=False)


def Cluster(size: int = UNBOUNDED, *, depth: int = UNBOUNDED) -> ReplicationMode:
    """Replicate ``size`` objects (or up to ``depth``) as one cluster with
    a single proxy pair (paper Section 4.3).  Cluster members cannot be
    individually updated — use :meth:`Site.put_back_cluster`."""
    return ReplicationMode(chunk=size, depth=depth, clustered=True)


def _mode_state(mode: object) -> object:
    assert isinstance(mode, ReplicationMode)
    if mode.codec:
        return (mode.chunk, mode.depth, mode.clustered, mode.prefetch, mode.codec)
    if mode.prefetch:
        return (mode.chunk, mode.depth, mode.clustered, mode.prefetch)
    # With the newer knobs unset the 3-tuple keeps frames byte-identical
    # to the original wire format (and to peers that predate the knobs);
    # peers that predate a knob unpack the extras into ``*rest`` and
    # ignore what they don't know.
    return (mode.chunk, mode.depth, mode.clustered)


def _mode_set_state(mode: object, state: object) -> None:
    chunk, depth, clustered, *rest = state  # type: ignore[misc]
    object.__setattr__(mode, "chunk", chunk)
    object.__setattr__(mode, "depth", depth)
    object.__setattr__(mode, "clustered", clustered)
    object.__setattr__(mode, "prefetch", rest[0] if rest else 0)
    object.__setattr__(mode, "codec", rest[1] if len(rest) > 1 else 0)


global_registry.register(
    ReplicationMode,
    name="core.ReplicationMode",
    get_state=_mode_state,
    set_state=_mode_set_state,
)


def _interface_state(iface: object) -> object:
    assert isinstance(iface, Interface)
    return (iface.name, list(iface.methods))


def _interface_set_state(iface: object, state: object) -> None:
    name, methods = state  # type: ignore[misc]
    object.__setattr__(iface, "name", name)
    object.__setattr__(iface, "methods", tuple(methods))


global_registry.register(
    Interface,
    name="core.Interface",
    get_state=_interface_state,
    set_state=_interface_set_state,
)
