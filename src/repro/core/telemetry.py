"""Per-site telemetry snapshots.

Operators of a middleware need to see what a site is doing: how many
masters and replicas it holds, how many faults it has taken, how much
traffic it has generated and where the simulated time went.  A
:class:`TelemetrySnapshot` captures that in one immutable record, and
``render()`` prints it the way the examples do.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site


@dataclass
class SyncPathStats:
    """Counters for the delta synchronization path (PR 4).

    Application threads and dispatcher threads both sync replicas, so
    increments go through :meth:`add` under the internal lock, exactly
    like ``FaultPathStats`` — a bare ``+= 1`` loses counts across a
    read-modify-write.  Reading individual attributes is fine for
    monitoring; :meth:`snapshot` gives a mutually-consistent reading.
    """

    #: Write-backs that shipped only changed fields.
    puts_delta: int = 0
    #: Write-backs that shipped full state (delta off, unsupported peer,
    #: whole-object fallback, or a ``NEED_FULL`` downgrade retry).
    puts_full: int = 0
    #: Write-backs skipped entirely because the replica was clean.
    puts_noop: int = 0
    #: Refreshes served from the master's change log as field deltas.
    refreshes_delta: int = 0
    #: Refreshes that re-fetched full state.
    refreshes_full: int = 0
    #: Estimated full-state bytes that delta syncs avoided shipping.
    delta_bytes_saved: int = 0
    #: Delta attempts the peer answered with ``NEED_FULL`` (or whose
    #: merged state failed the fingerprint check locally).
    need_full_downgrades: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(
        self,
        *,
        puts_delta: int = 0,
        puts_full: int = 0,
        puts_noop: int = 0,
        refreshes_delta: int = 0,
        refreshes_full: int = 0,
        delta_bytes_saved: int = 0,
        need_full_downgrades: int = 0,
    ) -> None:
        """Atomically bump any subset of the counters."""
        with self._lock:
            self.puts_delta += puts_delta
            self.puts_full += puts_full
            self.puts_noop += puts_noop
            self.refreshes_delta += refreshes_delta
            self.refreshes_full += refreshes_full
            self.delta_bytes_saved += delta_bytes_saved
            self.need_full_downgrades += need_full_downgrades

    def snapshot(self) -> dict[str, int]:
        """A mutually-consistent reading of all counters."""
        with self._lock:
            return {
                "puts_delta": self.puts_delta,
                "puts_full": self.puts_full,
                "puts_noop": self.puts_noop,
                "refreshes_delta": self.refreshes_delta,
                "refreshes_full": self.refreshes_full,
                "delta_bytes_saved": self.delta_bytes_saved,
                "need_full_downgrades": self.need_full_downgrades,
            }

    def reset(self) -> dict[str, int]:
        """Zero the counters; returns the values they had."""
        with self._lock:
            before = {
                "puts_delta": self.puts_delta,
                "puts_full": self.puts_full,
                "puts_noop": self.puts_noop,
                "refreshes_delta": self.refreshes_delta,
                "refreshes_full": self.refreshes_full,
                "delta_bytes_saved": self.delta_bytes_saved,
                "need_full_downgrades": self.need_full_downgrades,
            }
            self.puts_delta = 0
            self.puts_full = 0
            self.puts_noop = 0
            self.refreshes_delta = 0
            self.refreshes_full = 0
            self.delta_bytes_saved = 0
            self.need_full_downgrades = 0
        return before


@dataclass
class SerialPathStats:
    """Counters for the serializer (obicodec, PR 7).

    Frames are encoded/decoded on application *and* dispatcher threads,
    so increments go through :meth:`add` under the lock, like
    :class:`SyncPathStats`.  Time is real nanoseconds
    (:func:`repro.util.clock.perf_ns`), not simulated cost-model time:
    the point is to see what the serializer itself costs.
    """

    #: Objects encoded through a compiled OBJECT_SCHEMA codec.
    encodes_fast: int = 0
    #: Objects that fell back to the reflective OBJECT path while the
    #: compiled path was enabled (no codec, or shape drift).
    encodes_reflective: int = 0
    #: Objects decoded through a compiled codec.
    decodes_fast: int = 0
    #: Whole frames encoded / decoded by stats-carrying codecs.
    frames_encoded: int = 0
    frames_decoded: int = 0
    #: Wall nanoseconds spent inside encode() / decode().
    encode_ns: int = 0
    decode_ns: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(
        self,
        *,
        encodes_fast: int = 0,
        encodes_reflective: int = 0,
        decodes_fast: int = 0,
        frames_encoded: int = 0,
        frames_decoded: int = 0,
        encode_ns: int = 0,
        decode_ns: int = 0,
    ) -> None:
        """Atomically bump any subset of the counters."""
        with self._lock:
            self.encodes_fast += encodes_fast
            self.encodes_reflective += encodes_reflective
            self.decodes_fast += decodes_fast
            self.frames_encoded += frames_encoded
            self.frames_decoded += frames_decoded
            self.encode_ns += encode_ns
            self.decode_ns += decode_ns

    def snapshot(self) -> dict[str, int]:
        """A mutually-consistent reading of all counters."""
        with self._lock:
            return {
                "encodes_fast": self.encodes_fast,
                "encodes_reflective": self.encodes_reflective,
                "decodes_fast": self.decodes_fast,
                "frames_encoded": self.frames_encoded,
                "frames_decoded": self.frames_decoded,
                "encode_ns": self.encode_ns,
                "decode_ns": self.decode_ns,
            }

    def reset(self) -> dict[str, int]:
        """Zero the counters; returns the values they had."""
        with self._lock:
            before = {
                "encodes_fast": self.encodes_fast,
                "encodes_reflective": self.encodes_reflective,
                "decodes_fast": self.decodes_fast,
                "frames_encoded": self.frames_encoded,
                "frames_decoded": self.frames_decoded,
                "encode_ns": self.encode_ns,
                "decode_ns": self.decode_ns,
            }
            self.encodes_fast = 0
            self.encodes_reflective = 0
            self.decodes_fast = 0
            self.frames_encoded = 0
            self.frames_decoded = 0
            self.encode_ns = 0
            self.decode_ns = 0
        return before


@dataclass
class FeedStats:
    """Counters and gauges for the change-feed layer (obifeed, PR 10).

    Feed frames are pushed from whatever thread recorded the change and
    applied on dispatcher threads, so counter bumps go through
    :meth:`add` under the lock like :class:`SyncPathStats`.  The gauges
    (``role``/``epoch``/``lag_serials``) are set, not accumulated.
    """

    #: ``"none"``, ``"primary"``, ``"follower"`` or ``"demoted"``.
    role: str = "none"
    #: The failover epoch this site last saw (0 = never in a feed group).
    epoch: int = 0
    #: Journal serials the follower still trails the primary by, as of
    #: the last batch received (0 when caught up, or for primaries).
    lag_serials: int = 0
    #: Frames pushed to followers (primary side, per subscriber).
    frames_pushed: int = 0
    #: Frames applied to the local tables (follower side).
    frames_applied: int = 0
    #: Frames rejected because they carried a stale epoch.
    stale_epoch_rejects: int = 0
    #: Journal events replayed during reconnect catch-up.
    catch_up_events: int = 0
    #: Full snapshots served to bootstrapping followers (primary side).
    snapshots_served: int = 0
    #: Full-snapshot bootstraps performed (follower side).
    snapshot_bootstraps: int = 0
    #: Times this site was promoted to primary.
    promotions: int = 0
    #: Writes proxied through to the primary (follower side).
    write_throughs: int = 0
    #: Pushes that failed to reach a subscriber (marked stalled).
    push_failures: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(
        self,
        *,
        frames_pushed: int = 0,
        frames_applied: int = 0,
        stale_epoch_rejects: int = 0,
        catch_up_events: int = 0,
        snapshots_served: int = 0,
        snapshot_bootstraps: int = 0,
        promotions: int = 0,
        write_throughs: int = 0,
        push_failures: int = 0,
    ) -> None:
        """Atomically bump any subset of the counters."""
        with self._lock:
            self.frames_pushed += frames_pushed
            self.frames_applied += frames_applied
            self.stale_epoch_rejects += stale_epoch_rejects
            self.catch_up_events += catch_up_events
            self.snapshots_served += snapshots_served
            self.snapshot_bootstraps += snapshot_bootstraps
            self.promotions += promotions
            self.write_throughs += write_throughs
            self.push_failures += push_failures

    def set_gauges(
        self,
        *,
        role: str | None = None,
        epoch: int | None = None,
        lag_serials: int | None = None,
    ) -> None:
        """Set any subset of the point-in-time gauges."""
        with self._lock:
            if role is not None:
                self.role = role
            if epoch is not None:
                self.epoch = epoch
            if lag_serials is not None:
                self.lag_serials = lag_serials

    def snapshot(self) -> dict[str, object]:
        """A mutually-consistent reading of gauges and counters."""
        with self._lock:
            return {
                "role": self.role,
                "epoch": self.epoch,
                "lag_serials": self.lag_serials,
                "frames_pushed": self.frames_pushed,
                "frames_applied": self.frames_applied,
                "stale_epoch_rejects": self.stale_epoch_rejects,
                "catch_up_events": self.catch_up_events,
                "snapshots_served": self.snapshots_served,
                "snapshot_bootstraps": self.snapshot_bootstraps,
                "promotions": self.promotions,
                "write_throughs": self.write_throughs,
                "push_failures": self.push_failures,
            }

    def reset(self) -> dict[str, object]:
        """Zero the counters (gauges keep their values); returns the prior reading."""
        with self._lock:
            before = {
                "role": self.role,
                "epoch": self.epoch,
                "lag_serials": self.lag_serials,
                "frames_pushed": self.frames_pushed,
                "frames_applied": self.frames_applied,
                "stale_epoch_rejects": self.stale_epoch_rejects,
                "catch_up_events": self.catch_up_events,
                "snapshots_served": self.snapshots_served,
                "snapshot_bootstraps": self.snapshot_bootstraps,
                "promotions": self.promotions,
                "write_throughs": self.write_throughs,
                "push_failures": self.push_failures,
            }
            self.frames_pushed = 0
            self.frames_applied = 0
            self.stale_epoch_rejects = 0
            self.catch_up_events = 0
            self.snapshots_served = 0
            self.snapshot_bootstraps = 0
            self.promotions = 0
            self.write_throughs = 0
            self.push_failures = 0
        return before


@dataclass(frozen=True, slots=True)
class TelemetrySnapshot:
    """One site's state at a point in (simulated) time."""

    site: str
    clock_s: float
    masters: int
    replicas: int
    cluster_members: int
    individually_updatable: int
    pending_proxies: int
    exported_objects: int
    proxies_created: int
    faults_resolved: int
    proxies_collected: int
    bytes_sent: int
    bytes_received: int
    messages_sent: int
    messages_received: int
    #: Fault fast-path counters (see ``repro.core.runtime.FaultPathStats``).
    demands_batched: int
    prefetch_hits: int
    coalesced_faults: int
    #: Pooled-TCP reuse attributed to this site as caller; 0 on transports
    #: without a connection pool.
    connections_reused: int
    #: Delta-sync counters (see :class:`SyncPathStats`).
    puts_delta: int
    puts_full: int
    puts_noop: int
    refreshes_delta: int
    refreshes_full: int
    delta_bytes_saved: int
    need_full_downgrades: int
    #: Causal-tracing collector state (obitrace, PR 5); zeros while the
    #: site has never traced.
    tracing_enabled: bool
    spans_recorded: int
    spans_dropped: int
    span_high_water: int
    #: Stripe-lock contention (PR 6): stripe count, blocking acquires,
    #: deepest reentrancy seen across the site's stripe locks.
    stripe_count: int
    stripe_acquire_waits: int
    stripe_max_depth: int
    #: Serializer fast-path counters (obicodec, PR 7); see
    #: :class:`SerialPathStats`.
    serial_fast_encodes: int
    serial_reflective_encodes: int
    serial_fast_decodes: int
    serial_encode_ns: int
    serial_decode_ns: int
    #: Change-feed role counters (obifeed, PR 10); see :class:`FeedStats`.
    feed_role: str
    feed_epoch: int
    feed_lag_serials: int
    feed_frames_pushed: int
    feed_frames_applied: int
    feed_stale_epoch_rejects: int
    feed_catch_up_events: int
    feed_snapshot_bootstraps: int
    feed_promotions: int
    feed_write_throughs: int
    feed_push_failures: int
    #: Reactor-transport gauges (obireactor, PR 9); zeros on every other
    #: transport.  Network-wide, not per-site: one loop serves the world.
    reactor_connections_open: int
    reactor_connections_high_water: int
    reactor_frames_pipelined: int
    reactor_in_flight_high_water: int
    reactor_loop_lag_max_ms: float

    def render(self) -> str:
        return (
            f"site {self.site} @ t={self.clock_s:.3f}s\n"
            f"  objects : {self.masters} masters, {self.replicas} replicas "
            f"({self.individually_updatable} updatable, "
            f"{self.cluster_members} cluster members), "
            f"{self.pending_proxies} pending proxies\n"
            f"  faults  : {self.faults_resolved} resolved of "
            f"{self.proxies_created} proxies created; "
            f"{self.proxies_collected} collected\n"
            f"  fastpath: {self.demands_batched} batched demands, "
            f"{self.prefetch_hits} prefetch hits, "
            f"{self.coalesced_faults} coalesced faults, "
            f"{self.connections_reused} connections reused\n"
            f"  deltasync: {self.puts_delta} delta / {self.puts_full} full / "
            f"{self.puts_noop} no-op puts, "
            f"{self.refreshes_delta} delta / {self.refreshes_full} full refreshes, "
            f"{self.need_full_downgrades} NEED_FULL downgrades, "
            f"~{self.delta_bytes_saved} B saved\n"
            f"  stripes : {self.stripe_count} stripes, "
            f"{self.stripe_acquire_waits} acquire waits, "
            f"max depth {self.stripe_max_depth}\n"
            f"  serial  : {self.serial_fast_encodes} fast / "
            f"{self.serial_reflective_encodes} reflective encodes, "
            f"{self.serial_fast_decodes} fast decodes, "
            f"{self.serial_encode_ns} ns encoding, "
            f"{self.serial_decode_ns} ns decoding\n"
            f"  feed    : role {self.feed_role}, epoch {self.feed_epoch}, "
            f"lag {self.feed_lag_serials} serials, "
            f"{self.feed_frames_pushed} pushed / {self.feed_frames_applied} applied, "
            f"{self.feed_catch_up_events} catch-up events, "
            f"{self.feed_snapshot_bootstraps} snapshot bootstraps, "
            f"{self.feed_stale_epoch_rejects} stale-epoch rejects, "
            f"{self.feed_promotions} promotions, "
            f"{self.feed_write_throughs} write-throughs, "
            f"{self.feed_push_failures} push failures\n"
            f"  reactor : {self.reactor_connections_open} connections held "
            f"(high water {self.reactor_connections_high_water}), "
            f"{self.reactor_frames_pipelined} frames pipelined, "
            f"in-flight depth {self.reactor_in_flight_high_water}, "
            f"loop lag max {self.reactor_loop_lag_max_ms:.2f} ms\n"
            f"  tracing : {'on' if self.tracing_enabled else 'off'}, "
            f"{self.spans_recorded} spans recorded, "
            f"{self.spans_dropped} dropped, "
            f"high water {self.span_high_water}\n"
            f"  traffic : sent {self.messages_sent} msgs / {self.bytes_sent} B, "
            f"received {self.messages_received} msgs / {self.bytes_received} B"
        )


def snapshot(site: "Site") -> TelemetrySnapshot:
    """Capture a site's telemetry right now."""
    replicas = list(site.iter_replicas())
    cluster_members = sum(1 for r in replicas if r.cluster_root is not None)

    bytes_sent = messages_sent = bytes_received = messages_received = 0
    for (src, dst), link in site.world.network.stats.per_link.items():
        if src == site.name:
            bytes_sent += link.bytes
            messages_sent += link.messages
        if dst == site.name:
            bytes_received += link.bytes
            messages_received += link.messages

    pool_stats = getattr(site.world.network, "pool_stats", None)
    connections_reused = (
        pool_stats.reused_from(site.name) if pool_stats is not None else 0
    )
    reactor_stats = getattr(site.world.network, "reactor_stats", None)
    reactor = (
        reactor_stats.snapshot()
        if reactor_stats is not None
        else {
            "connections_open": 0,
            "connections_high_water": 0,
            "frames_pipelined": 0,
            "in_flight_high_water": 0,
            "loop_lag_max_s": 0.0,
        }
    )
    sync = site.sync_stats.snapshot()
    serial = site.serial_stats.snapshot()
    feed = site.feed_stats.snapshot()
    stripe_metrics = site.stripe_metrics()
    collector = getattr(site.tracer, "collector", None)
    span_stats = (
        collector.stats()
        if collector is not None
        else {"recorded": 0, "dropped": 0, "high_water": 0}
    )

    return TelemetrySnapshot(
        site=site.name,
        clock_s=site.clock.now(),
        masters=site.master_count(),
        replicas=len(replicas),
        cluster_members=cluster_members,
        individually_updatable=sum(1 for r in replicas if r.provider is not None),
        pending_proxies=site.pending_proxy_count(),
        exported_objects=len(site.endpoint.objects),
        proxies_created=site.gc_stats.proxies_created,
        faults_resolved=site.gc_stats.faults_resolved,
        proxies_collected=site.gc_stats.resolved_collected,
        bytes_sent=bytes_sent,
        bytes_received=bytes_received,
        messages_sent=messages_sent,
        messages_received=messages_received,
        demands_batched=site.fault_stats.demands_batched,
        prefetch_hits=site.fault_stats.prefetch_hits,
        coalesced_faults=site.fault_stats.coalesced_faults,
        connections_reused=connections_reused,
        puts_delta=sync["puts_delta"],
        puts_full=sync["puts_full"],
        puts_noop=sync["puts_noop"],
        refreshes_delta=sync["refreshes_delta"],
        refreshes_full=sync["refreshes_full"],
        delta_bytes_saved=sync["delta_bytes_saved"],
        need_full_downgrades=sync["need_full_downgrades"],
        tracing_enabled=site.tracer.enabled,
        spans_recorded=span_stats["recorded"],
        spans_dropped=span_stats["dropped"],
        span_high_water=span_stats["high_water"],
        stripe_count=stripe_metrics["stripes"],
        stripe_acquire_waits=stripe_metrics["acquire_waits"],
        stripe_max_depth=stripe_metrics["max_depth"],
        serial_fast_encodes=serial["encodes_fast"],
        serial_reflective_encodes=serial["encodes_reflective"],
        serial_fast_decodes=serial["decodes_fast"],
        serial_encode_ns=serial["encode_ns"],
        serial_decode_ns=serial["decode_ns"],
        feed_role=str(feed["role"]),
        feed_epoch=int(feed["epoch"]),
        feed_lag_serials=int(feed["lag_serials"]),
        feed_frames_pushed=int(feed["frames_pushed"]),
        feed_frames_applied=int(feed["frames_applied"]),
        feed_stale_epoch_rejects=int(feed["stale_epoch_rejects"]),
        feed_catch_up_events=int(feed["catch_up_events"]),
        feed_snapshot_bootstraps=int(feed["snapshot_bootstraps"]),
        feed_promotions=int(feed["promotions"]),
        feed_write_throughs=int(feed["write_throughs"]),
        feed_push_failures=int(feed["push_failures"]),
        reactor_connections_open=int(reactor["connections_open"]),
        reactor_connections_high_water=int(reactor["connections_high_water"]),
        reactor_frames_pipelined=int(reactor["frames_pipelined"]),
        reactor_in_flight_high_water=int(reactor["in_flight_high_water"]),
        reactor_loop_lag_max_ms=reactor["loop_lag_max_s"] * 1000.0,
    )
