"""Per-site telemetry snapshots.

Operators of a middleware need to see what a site is doing: how many
masters and replicas it holds, how many faults it has taken, how much
traffic it has generated and where the simulated time went.  A
:class:`TelemetrySnapshot` captures that in one immutable record, and
``render()`` prints it the way the examples do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Site


@dataclass(frozen=True, slots=True)
class TelemetrySnapshot:
    """One site's state at a point in (simulated) time."""

    site: str
    clock_s: float
    masters: int
    replicas: int
    cluster_members: int
    individually_updatable: int
    pending_proxies: int
    exported_objects: int
    proxies_created: int
    faults_resolved: int
    proxies_collected: int
    bytes_sent: int
    bytes_received: int
    messages_sent: int
    messages_received: int
    #: Fault fast-path counters (see ``repro.core.runtime.FaultPathStats``).
    demands_batched: int
    prefetch_hits: int
    coalesced_faults: int
    #: Pooled-TCP reuse attributed to this site as caller; 0 on transports
    #: without a connection pool.
    connections_reused: int

    def render(self) -> str:
        return (
            f"site {self.site} @ t={self.clock_s:.3f}s\n"
            f"  objects : {self.masters} masters, {self.replicas} replicas "
            f"({self.individually_updatable} updatable, "
            f"{self.cluster_members} cluster members), "
            f"{self.pending_proxies} pending proxies\n"
            f"  faults  : {self.faults_resolved} resolved of "
            f"{self.proxies_created} proxies created; "
            f"{self.proxies_collected} collected\n"
            f"  fastpath: {self.demands_batched} batched demands, "
            f"{self.prefetch_hits} prefetch hits, "
            f"{self.coalesced_faults} coalesced faults, "
            f"{self.connections_reused} connections reused\n"
            f"  traffic : sent {self.messages_sent} msgs / {self.bytes_sent} B, "
            f"received {self.messages_received} msgs / {self.bytes_received} B"
        )


def snapshot(site: "Site") -> TelemetrySnapshot:
    """Capture a site's telemetry right now."""
    replicas = list(site.iter_replicas())
    cluster_members = sum(1 for r in replicas if r.cluster_root is not None)

    bytes_sent = messages_sent = bytes_received = messages_received = 0
    for (src, dst), link in site.world.network.stats.per_link.items():
        if src == site.name:
            bytes_sent += link.bytes
            messages_sent += link.messages
        if dst == site.name:
            bytes_received += link.bytes
            messages_received += link.messages

    pool_stats = getattr(site.world.network, "pool_stats", None)
    connections_reused = (
        pool_stats.reused_from(site.name) if pool_stats is not None else 0
    )

    return TelemetrySnapshot(
        site=site.name,
        clock_s=site.clock.now(),
        masters=len(site._masters),
        replicas=len(replicas),
        cluster_members=cluster_members,
        individually_updatable=sum(1 for r in replicas if r.provider is not None),
        pending_proxies=len(site._pending_proxies),
        exported_objects=len(site.endpoint.objects),
        proxies_created=site.gc_stats.proxies_created,
        faults_resolved=site.gc_stats.faults_resolved,
        proxies_collected=site.gc_stats.resolved_collected,
        bytes_sent=bytes_sent,
        bytes_received=bytes_received,
        messages_sent=messages_sent,
        messages_received=messages_received,
        demands_batched=site.fault_stats.demands_batched,
        prefetch_hits=site.fault_stats.prefetch_hits,
        coalesced_faults=site.fault_stats.coalesced_faults,
        connections_reused=connections_reused,
    )
