"""Dynamic clusters (paper Sections 2.2 and 4.3).

A cluster is a run-time-chosen part of a reachability graph replicated as
a whole through a *single* proxy-in/proxy-out pair.  That makes the fetch
much cheaper than per-object replication (Figure 6 vs Figure 5), at the
price the paper states: "each object can not be individually updated".

Cluster *collection* is the bounded BFS in
:func:`repro.core.replication.build_package` driven by a
``Cluster(size=…)`` / ``Cluster(depth=…)`` mode; this module provides the
consumer-side operations that respect cluster granularity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.meta import obi_id_of
from repro.core.replication import build_put
from repro.util.errors import ClusterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packages import PutPackage
    from repro.core.runtime import Site


def cluster_members(site: "Site", root: object) -> list[object]:
    """The local replicas belonging to ``root``'s cluster (root first)."""
    root_id = obi_id_of(root)
    info = site.replica_info(root_id)
    if info is None:
        raise ClusterError(f"{root_id!r} is not a replica on site {site.name!r}")
    if info.cluster_root is not None:
        raise ClusterError(
            f"{root_id!r} is a cluster member, not a cluster root; "
            f"operate on its root {info.cluster_root!r}"
        )
    members = [root]
    members.extend(
        entry.obj
        for entry in site.iter_replicas()
        if entry.cluster_root == root_id
    )
    return members


def build_cluster_put(site: "Site", root: object) -> "PutPackage":
    """Package the whole cluster's state for one ``put`` to the root's
    provider — the only write-back granularity clusters support."""
    members = cluster_members(site, root)
    return build_put(site, members)


def check_individually_updatable(site: "Site", replica: object) -> None:
    """Raise :class:`ClusterError` if ``replica`` is a cluster member."""
    info = site.replica_info(obi_id_of(replica))
    if info is not None and info.cluster_root is not None:
        raise ClusterError(
            "cluster members cannot be individually updated (paper Section 4.3); "
            f"put back the cluster root {info.cluster_root!r} instead"
        )
    if info is not None and info.provider is None and info.cluster_root is None:
        raise ClusterError(
            f"replica {obi_id_of(replica)!r} has no provider reference to put to"
        )
