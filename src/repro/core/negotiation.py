"""Peer-capability negotiation: probe once, remember, downgrade.

Every wire-protocol extension since the seed negotiates the same way —
optimistically use the new verb or frame against a peer, and if the
failure *shape* says "this peer predates the extension", remember that
per provider site and fall back to the legacy path forever after.  PR 4
(delta sync) and PR 7 (obicodec) each grew their own copy of that
try/classify/remember dance plus their own cache set; this module is the
single shared implementation.

A :class:`Capability` bundles what makes each extension's probe distinct:
the exception types a probe may legitimately raise, and the predicate
that separates "unsupported peer" from a genuine failure.  The
:class:`PeerCapabilities` cache holds every capability verdict for every
peer site under one lock, and :func:`probe` runs one negotiated attempt,
returning the :data:`UNSUPPORTED` sentinel (after caching the verdict)
when the peer lacks the capability.

The third negotiation — prefetch — is probe-free by design (the widened
mode tuple travels only when set, so pre-prefetch peers never see it) and
needs no entry here; OBI305 machine-checks that its guard discipline
stays that way.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass
from typing import TypeVar

from repro.util.errors import (
    ProtocolError,
    RemoteError,
    ReplicationError,
    SerializationError,
)

T = TypeVar("T")


class _Unsupported:
    """Singleton sentinel distinguishing "peer lacks it" from any result."""

    _instance: "_Unsupported | None" = None

    def __new__(cls) -> "_Unsupported":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<UNSUPPORTED>"

    def __bool__(self) -> bool:
        return False


#: Returned by :func:`probe` when the peer predates the capability.
UNSUPPORTED = _Unsupported()


@dataclass(frozen=True)
class Capability:
    """One negotiated protocol extension.

    ``probe_errors`` are the exception types a probe attempt may raise
    *at all* without being re-raised immediately; ``unsupported`` then
    decides whether a caught exception means "peer predates this" (cache
    and downgrade) or a genuine failure (re-raise).
    """

    name: str
    probe_errors: tuple[type[BaseException], ...]
    unsupported: Callable[[BaseException], bool]


class PeerCapabilities:
    """Per-provider-site capability verdicts, one lock, one table.

    Verdicts are negative-only: a site is assumed to support every
    capability until a probe proves otherwise.  That matches the wire
    design — extensions are built so that the *first* use against an old
    peer fails loudly with a classifiable shape, never corrupts state —
    and means an upgraded peer is picked up by simply never having been
    marked (or after :meth:`forget`).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._unsupported: dict[str, set[str]] = {}

    @staticmethod
    def _key(capability: "Capability | str") -> str:
        return capability.name if isinstance(capability, Capability) else capability

    def assume(self, site_id: str, capability: "Capability | str") -> bool:
        """True unless ``site_id`` already failed this capability's probe."""
        key = self._key(capability)
        with self._lock:
            return key not in self._unsupported.get(site_id, ())

    def mark_unsupported(self, site_id: str, capability: "Capability | str") -> None:
        with self._lock:
            self._unsupported.setdefault(site_id, set()).add(self._key(capability))

    def forget(self, site_id: str) -> None:
        """Drop every verdict for ``site_id`` (e.g. the peer was upgraded)."""
        with self._lock:
            self._unsupported.pop(site_id, None)

    def snapshot(self) -> dict[str, frozenset[str]]:
        """Immutable copy of the verdict table, for telemetry and tests."""
        with self._lock:
            return {site: frozenset(caps) for site, caps in self._unsupported.items()}


def probe(
    caps: PeerCapabilities,
    site_id: str,
    capability: Capability,
    attempt: Callable[[], T],
) -> "T | _Unsupported":
    """Run one negotiated ``attempt`` against a peer.

    Returns the attempt's result, or :data:`UNSUPPORTED` — with the
    verdict cached so the caller's *next* call skips the probe — when the
    failure shape says the peer predates the capability.  Any other
    exception propagates untouched.
    """
    try:
        return attempt()
    except capability.probe_errors as exc:
        if not capability.unsupported(exc):
            raise
        caps.mark_unsupported(site_id, capability)
        return UNSUPPORTED


# ----------------------------------------------------------------------
# the shipped capabilities
# ----------------------------------------------------------------------
def _delta_unsupported(exc: BaseException) -> bool:
    """True when a delta-verb failure means "this peer predates delta sync".

    An unversioned peer's skeleton reports the missing verb as a
    :class:`ProtocolError` ("has no method"); a peer whose handler probes
    attributes may flatten an ``AttributeError`` into a
    :class:`RemoteError` instead.  Anything else is a genuine failure and
    must propagate.
    """
    if isinstance(exc, ProtocolError):
        return "has no method" in str(exc)
    if isinstance(exc, RemoteError):
        return exc.remote_type == "AttributeError"
    return False


def _codec_unsupported(exc: BaseException) -> bool:
    """True when a put failure means "this master predates obicodec".

    A pre-codec decoder fails on the first OBJECT_SCHEMA byte with
    ``unknown wire tag``; a peer that somehow decodes the frame but
    cannot treat an instance payload as state reports the legacy
    state-dict complaint.  The RMI layer reconstructs well-known
    middleware exceptions as their own local type (and flattens unknown
    ones into :class:`RemoteError`), so both shapes are checked.
    Anything else is a genuine failure.
    """
    if isinstance(exc, SerializationError) or (
        isinstance(exc, RemoteError) and exc.remote_type == "SerializationError"
    ):
        return "unknown wire tag" in str(exc)
    if isinstance(exc, ReplicationError) or (
        isinstance(exc, RemoteError) and exc.remote_type == "ReplicationError"
    ):
        return "must decode to a state dict" in str(exc)
    return False


#: PR 4's delta verbs: ``put_delta`` / ``get_delta`` against a peer whose
#: skeleton predates them.
DELTA_SYNC = Capability(
    name="delta_sync",
    probe_errors=(ProtocolError, RemoteError),
    unsupported=_delta_unsupported,
)

#: PR 7's compiled put frames: an OBJECT_SCHEMA payload shipped to a
#: master whose decoder predates the tag.
COMPILED_CODEC = Capability(
    name="compiled_codec",
    probe_errors=(SerializationError, ReplicationError, RemoteError),
    unsupported=_codec_unsupported,
)


def _feed_unsupported(exc: BaseException) -> bool:
    """True when a feed-verb failure means "this peer predates obifeed".

    A pre-feed peer never exported the well-known feed service object, so
    its skeleton answers ``no exported object 'obj:feed'``; a peer that
    exports something under the id but lacks the verb reports ``has no
    method``.  Either shape may arrive as a local :class:`ProtocolError`
    (reconstructed by the RMI layer) or flattened into a
    :class:`RemoteError`.  Anything else is a genuine failure.
    """
    message = str(exc)
    shapes = ("no exported object", "has no method")
    if isinstance(exc, ProtocolError):
        return any(shape in message for shape in shapes)
    if isinstance(exc, RemoteError) and exc.remote_type == "ProtocolError":
        return any(shape in message for shape in shapes)
    return False


#: PR 10's change-feed verbs (``feed_subscribe`` / ``feed_events`` /
#: ``feed_snapshot`` / ``promote``) against a peer that never exported
#: the feed service.
FEED = Capability(
    name="feed",
    probe_errors=(ProtocolError, RemoteError),
    unsupported=_feed_unsupported,
)


def _pipelined_unsupported(exc: BaseException) -> bool:  # pragma: no cover
    """The pipelining probe never classifies by exception shape."""
    return False


#: PR 9's pipelined correlation-ID framing (obireactor).  Unlike delta
#: and codec, this extension cannot probe by failure shape: a frame kind
#: an old peer has never heard of does not produce a classifiable error —
#: it kills the peer's connection-serving thread outright.  The reactor
#: therefore negotiates *in band*: the first exchange to a peer is a
#: fully legacy frame whose request id carries a reversible marker that
#: an upgraded server rewrites in its echo, and a legacy server returns
#: untouched.  This :class:`Capability` exists as the cache key for that
#: verdict in :class:`PeerCapabilities` (``probe_errors`` is empty — the
#: marker probe never raises a capability-classifiable error).
PIPELINED_FRAMES = Capability(
    name="pipelined_frames",
    probe_errors=(),
    unsupported=_pipelined_unsupported,
)
