"""Proxies-in: the provider-side halves of proxy pairs.

A proxy-in lives next to a master object, is exported through RMI, and is
the only remotely reachable handle on that object.  It implements the
paper's two provider interfaces:

* ``IProvideRemote`` — ``get(mode)`` creates a replica package,
  ``put(package)`` applies a replica's state back onto the master;
* ``IDemandeeRemote`` — ``demand(mode)`` is what a proxy-out calls to
  resolve an object fault (operationally the same as ``get``).

It also forwards the master's own interface methods, so a consumer can
keep invoking the master via RMI even after replicating it — the paper's
"both replicas, the master and the local, can be freely invoked".

The Java prototype generates one ``AProxyIn`` class per user class; here a
single generic class suffices because dispatch is reflective.  obicomp's
source-emitting mode (:mod:`repro.core.obicomp.emit`) still writes
per-class proxy-in sources for fidelity with the paper's tooling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.interfaces import Incremental, ReplicationMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packages import (
        PutDeltaPackage,
        PutPackage,
        RefreshDeltaRequest,
        ReplicaPackage,
    )
    from repro.core.runtime import Site
    from repro.rmi.protocol import NeedFull

#: Control methods every proxy-in exposes in addition to the user interface.
#: ``put_delta``/``get_delta`` are the versioned delta-sync verbs (PR 4);
#: unversioned peers simply never call them, and a versioned consumer that
#: calls them on an unversioned peer gets the standard missing-method
#: failure and falls back to the full-state verbs.
PROXY_IN_CONTROL_METHODS = ("get", "put", "demand", "get_version", "put_delta", "get_delta")


class ProxyIn:
    """Remote-invocable handle on one master object."""

    def __init__(self, site: "Site", master: object):
        # Set via object.__setattr__-free plain assignment; __getattr__
        # forwarding only triggers for *missing* attributes.
        self._obi_site = site
        self._obi_master = master

    # ------------------------------------------------------------------
    # IProvideRemote
    # ------------------------------------------------------------------
    def get(self, mode: ReplicationMode | None = None) -> "ReplicaPackage":
        """Build a replica package rooted at the master (paper: ``A.get``)."""
        from repro.core.replication import build_package

        return build_package(
            self._obi_site, self._obi_master, mode if mode is not None else Incremental(1)
        )

    def put(self, package: "PutPackage") -> dict[str, int]:
        """Apply a consumer's state back onto masters; returns new versions."""
        from repro.core.replication import apply_put

        return apply_put(self._obi_site, package)

    def put_delta(self, package: "PutDeltaPackage") -> "dict[str, int] | NeedFull":
        """Merge a consumer's changed fields onto masters (versioned put).

        Returns the new versions on success, or ``NeedFull`` — with no
        state applied — when any entry's base version or fingerprint
        does not match, telling the consumer to retry with ``put``.
        """
        from repro.core.replication import apply_put_delta

        return apply_put_delta(self._obi_site, package)

    def get_delta(self, request: "RefreshDeltaRequest") -> "object":
        """Serve a versioned refresh: the fields changed since the
        consumer's base version, or ``NeedFull`` when the change log
        cannot cover the range."""
        from repro.core.meta import obi_id_of
        from repro.core.replication import build_refresh_delta
        from repro.util.errors import UnknownReplicaError

        oid = obi_id_of(self._obi_master)
        if request.obi_id != oid:
            raise UnknownReplicaError(
                f"delta refresh for {request.obi_id!r} reached the proxy-in of {oid!r}"
            )
        return build_refresh_delta(self._obi_site, self._obi_master, request.base_version)

    # ------------------------------------------------------------------
    # IDemandeeRemote
    # ------------------------------------------------------------------
    def demand(self, mode: ReplicationMode | None = None) -> "ReplicaPackage":
        """Resolve an object fault: hand out a package starting here.

        Unlike ``get``, a demand honours the mode's ``prefetch`` knob:
        the traversal widens to ``mode.demand_scope()`` so one fault
        round trip carries the target plus its read-ahead frontier.  The
        returned package is stamped with the *base* mode, so the
        consumer's replica records and frontier proxies keep the
        application's own granularity.
        """
        base = mode if mode is not None else Incremental(1)
        scope = base.demand_scope()
        package = self.get(scope)
        if scope is not base:
            package.mode = base
        return package

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def get_version(self) -> int:
        """Current master version (bumped on every applied put)."""
        return self._obi_site.master_version(self._obi_master)

    # ------------------------------------------------------------------
    # RMI-mode forwarding of the user interface
    # ------------------------------------------------------------------
    # Note on semantics: a forwarded invocation may mutate the master,
    # but does NOT bump its version — versioned change detection
    # (refresh, leases, invalidation, reconciliation) observes only
    # ``put`` and ``Site.touch``.  This matches the paper's model, where
    # consistency is entirely the programmer's concern; RMI-mode writers
    # that want detection must call ``touch`` on the master site.
    def __getattr__(self, name: str) -> object:
        if name.startswith("_"):
            raise AttributeError(name)
        master = self.__dict__["_obi_master"]
        value = getattr(master, name)
        if not callable(value):
            raise AttributeError(
                f"{name!r} on {type(master).__name__} is not a method; "
                "remote access is method-only"
            )
        return value

    def __repr__(self) -> str:
        return f"<ProxyIn for {type(self._obi_master).__name__} at {self._obi_site.name!r}>"
