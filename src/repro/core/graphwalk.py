"""Object-graph traversal and reference surgery.

The replication engine needs three graph operations:

* enumerate the OBIWAN references an object holds (directly or inside
  standard containers) — for BFS during package building and for demander
  registration;
* breadth-first traversal bounded by count/depth — the paper's
  chunked/clustered reachability collection;
* reference replacement — the paper's ``updateMember``: splice a freshly
  replicated object into the holder that was pointing at its proxy-out.

References are found in instance attributes and inside (arbitrarily
nested) ``list`` / ``tuple`` / ``dict`` / ``set`` / ``frozenset`` values —
the containers the wire format supports.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.core.meta import is_obiwan
from repro.core.proxy_out import ProxyOutBase


def is_node(value: object) -> bool:
    """True for values that are OBIWAN graph nodes (objects or proxy-outs)."""
    return isinstance(value, ProxyOutBase) or is_obiwan(value)


def direct_references(obj: object) -> Iterator[object]:
    """Yield every OBIWAN node reachable from ``obj`` in one logical hop.

    One logical hop crosses any nesting of standard containers but does
    not enter other OBIWAN objects.  Nodes referenced from several places
    are yielded once per holding position (callers dedupe as needed).
    """
    for value in vars(obj).values():
        yield from _scan(value)


def _scan(value: object) -> Iterator[object]:
    if is_node(value):
        yield value
        return
    if isinstance(value, dict):
        for key, item in value.items():
            yield from _scan(key)
            yield from _scan(item)
        return
    if isinstance(value, list | tuple | set | frozenset):
        for item in value:
            yield from _scan(item)


def breadth_first(
    root: object,
    *,
    max_objects: int = 0,
    max_depth: int = 0,
) -> list[object]:
    """Collect OBIWAN objects reachable from ``root`` in BFS order.

    ``root`` is always first.  Zero bounds mean unbounded.  Proxy-outs are
    never *entered* (their referents live elsewhere), and unresolved
    proxy-outs are not collected — they are the frontier.  A resolved
    proxy-out is traversed through to its target replica.
    """
    resolved_root = _through(root)
    ordered: list[object] = []
    seen: set[int] = set()
    queue: deque[tuple[object, int]] = deque([(resolved_root, 0)])
    while queue:
        node, depth = queue.popleft()
        node = _through(node)
        if isinstance(node, ProxyOutBase):
            continue  # unresolved frontier
        if id(node) in seen:
            continue
        if max_objects and len(ordered) >= max_objects:
            break
        seen.add(id(node))
        ordered.append(node)
        if max_depth and depth >= max_depth:
            continue
        for ref in direct_references(node):
            queue.append((ref, depth + 1))
    return ordered


def frontier_of(members: list[object]) -> list[tuple[object, object]]:
    """(holder, node) pairs where ``holder`` ∈ members references a node
    outside the member set — the references that must become proxy-outs."""
    member_ids = {id(m) for m in members}
    edges: list[tuple[object, object]] = []
    for holder in members:
        for ref in direct_references(holder):
            target = _through(ref)
            if id(target) not in member_ids:
                edges.append((holder, ref))
    return edges


def _through(node: object) -> object:
    """Follow a resolved proxy-out to its target replica."""
    if isinstance(node, ProxyOutBase) and node._obi_resolved is not None:
        return node._obi_resolved
    return node


def replace_references(holder: object, replacements: dict[int, object]) -> int:
    """Rewrite ``holder``'s state replacing nodes by identity.

    ``replacements`` maps ``id(old)`` to the new value.  Returns the
    number of positions rewritten.  This is the paper's
    ``updateMember(replica, member)`` generalized to containers: after it
    runs, "further invocations from A' on B' will be normal direct
    invocations with no indirection at all".
    """
    count = 0
    state = vars(holder)
    for key, value in list(state.items()):
        new_value, hits = _rebuild(value, replacements)
        if hits:
            state[key] = new_value
            count += hits
    return count


def _rebuild(value: object, replacements: dict[int, object]) -> tuple[object, int]:
    swap = replacements.get(id(value))
    if swap is not None:
        return swap, 1
    if isinstance(value, list):
        hits = 0
        for index, item in enumerate(value):
            new_item, item_hits = _rebuild(item, replacements)
            if item_hits:
                value[index] = new_item
                hits += item_hits
        return value, hits
    if isinstance(value, tuple):
        rebuilt = []
        hits = 0
        for item in value:
            new_item, item_hits = _rebuild(item, replacements)
            rebuilt.append(new_item)
            hits += item_hits
        return (tuple(rebuilt) if hits else value), hits
    if isinstance(value, dict):
        hits = 0
        updates: list[tuple[object, object, object]] = []
        for key, item in value.items():
            new_key, key_hits = _rebuild(key, replacements)
            new_item, item_hits = _rebuild(item, replacements)
            if key_hits or item_hits:
                updates.append((key, new_key, new_item))
                hits += key_hits + item_hits
        for old_key, new_key, new_item in updates:
            if new_key is not old_key:
                del value[old_key]
            value[new_key] = new_item
        return value, hits
    if isinstance(value, set | frozenset):
        hits = 0
        rebuilt_items = []
        for item in value:
            new_item, item_hits = _rebuild(item, replacements)
            rebuilt_items.append(new_item)
            hits += item_hits
        if not hits:
            return value, 0
        if isinstance(value, set):
            value.clear()
            value.update(rebuilt_items)
            return value, hits
        return frozenset(rebuilt_items), hits
    return value, 0
