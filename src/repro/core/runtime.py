"""The OBIWAN runtime: sites and worlds.

A :class:`Site` models one OBIWAN process (the paper's S1/S2): it owns the
master and replica tables, the exported proxy-ins, the pending proxy-outs
and the cost accounting.  A :class:`World` wires sites to a network and a
name server and is the entry point of the public API::

    world = World.loopback()
    provider = world.create_site("S2")
    consumer = world.create_site("S1")

    ref = provider.export(master, name="a")
    replica = consumer.replicate("a", mode=Incremental(10))   # LMI path
    stub = consumer.remote_stub("a")                          # RMI path

The choice between ``replicate`` (local method invocation on a replica)
and ``remote_stub`` (remote method invocation on the master) is the
run-time decision the paper puts in the application's hands.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field

from repro.core import cluster as cluster_ops
from repro.core import faults
from repro.core.costs import CostModel
from repro.core.gc_stats import GcStats
from repro.core.interfaces import Incremental, ReplicationMode
from repro.core.meta import (
    compiled_registry,
    interface_of,
    is_obiwan,
    obi_id_of,
)
from repro.core.packages import ObjectMeta, RefreshDeltaReply, RefreshDeltaRequest
from repro.core.proxy_in import ProxyIn
from repro.core.proxy_out import ProxyOutBase
from repro.core.replication import (
    apply_refresh_delta,
    build_put,
    build_put_delta,
    integrate_package,
)
from repro.core.telemetry import SyncPathStats
from repro.core.versions import ChangeLog, DirtyTracker, DirtySnapshot
from repro.obs.context import NULL_TRACER, Tracer
from repro.obs.spans import SpanCollector
from repro.rmi.endpoint import RmiEndpoint
from repro.rmi.protocol import NeedFull
from repro.rmi.refs import RemoteRef
from repro.rmi.stub import Stub
from repro.serial.delta import Fingerprinter
from repro.simnet.link import LAN_10MBPS, Link
from repro.simnet.loopback import LoopbackNetwork
from repro.simnet.network import Network
from repro.simnet.tcp import TcpNetwork
from repro.simnet.threaded import ThreadedNetwork
from repro.util.clock import Clock, SimClock, WallClock
from repro.util.errors import (
    ClusterError,
    ProtocolError,
    RemoteError,
    ReplicationError,
    UnknownReplicaError,
)
from repro.util.events import EventBus
from repro.util.ids import new_site_id


@dataclass
class MasterRecord:
    """Bookkeeping for one object mastered at this site."""

    obj: object
    version: int = 1


@dataclass
class FaultPathStats:
    """Counters for the batched/prefetching fault fast path.

    Faulting threads race on these (coalesced faults exist precisely
    because resolution is concurrent), so increments go through
    :meth:`add` under the internal lock — a bare ``+= 1`` loses counts
    across a read-modify-write.  Reading individual attributes is fine
    for monitoring; use :meth:`snapshot` when the three counters must be
    mutually consistent.
    """

    #: Demand round trips that went through the batched fast path
    #: (widened scope and/or piggybacked sibling demands).
    demands_batched: int = 0
    #: Objects replicated ahead of need: read-ahead members beyond the
    #: mode's own chunk, plus sibling proxies resolved without a round
    #: trip of their own.
    prefetch_hits: int = 0
    #: Faults that waited on another thread's in-flight demand instead of
    #: issuing a duplicate round trip.
    coalesced_faults: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(
        self,
        *,
        demands_batched: int = 0,
        prefetch_hits: int = 0,
        coalesced_faults: int = 0,
    ) -> None:
        """Atomically bump any subset of the counters."""
        with self._lock:
            self.demands_batched += demands_batched
            self.prefetch_hits += prefetch_hits
            self.coalesced_faults += coalesced_faults

    def snapshot(self) -> dict[str, int]:
        """A mutually-consistent reading of all three counters."""
        with self._lock:
            return {
                "demands_batched": self.demands_batched,
                "prefetch_hits": self.prefetch_hits,
                "coalesced_faults": self.coalesced_faults,
            }

    def reset(self) -> dict[str, int]:
        """Zero the counters; returns the values they had (snapshot-then-
        reset is atomic, so no increment can fall between the two)."""
        with self._lock:
            before = {
                "demands_batched": self.demands_batched,
                "prefetch_hits": self.prefetch_hits,
                "coalesced_faults": self.coalesced_faults,
            }
            self.demands_batched = 0
            self.prefetch_hits = 0
            self.coalesced_faults = 0
        return before


class _InflightDemand:
    """Rendezvous for faults coalescing on one in-flight demand."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: object | None = None
        self.error: BaseException | None = None


@dataclass
class ReplicaRecord:
    """Bookkeeping for one replica held at this site."""

    obj: object
    provider: RemoteRef | None
    version: int
    mode: ReplicationMode
    cluster_root: str | None = None
    #: Set by the consistency layer (invalidation/lease protocols).
    invalidated: bool = field(default=False)
    lease_expires_at: float | None = field(default=None)


class Site:
    """One OBIWAN process: masters, replicas, proxies, costs."""

    def __init__(self, world: "World", name: str, endpoint: RmiEndpoint):
        self.world = world
        self.name = name
        self.endpoint = endpoint
        self.costs: CostModel = world.costs
        self.gc_stats = GcStats()
        self.fault_stats = FaultPathStats()
        self.sync_stats = SyncPathStats()
        #: Causal tracer (obitrace, PR 5).  :data:`NULL_TRACER` — whose
        #: ``span()`` hands back one shared no-op context manager — until
        #: :meth:`enable_tracing` swaps in a live one.  Shared with the
        #: RMI endpoint so invoke/serve spans land in the same collector.
        self.tracer = NULL_TRACER
        #: Opt-in knob for delta synchronization (PR 4).  When ``True``,
        #: ``put_back``/``put_back_cluster``/``refresh`` try the versioned
        #: delta verbs first and fall back to the legacy full-state path on
        #: ``NEED_FULL`` or an unversioned peer.  Replicas fetched before
        #: the knob was flipped enroll lazily on their next full sync.
        self.delta_sync = False
        #: Deterministic state-digest machine shared by the delta paths.
        self.fingerprinter = Fingerprinter(endpoint.registry)
        #: Consumer-side dirty-field bookkeeping for enrolled replicas.
        self.dirty_tracker = DirtyTracker(self.fingerprinter)
        #: Master-side history of which fields each version changed.
        self.change_log = ChangeLog()
        #: Provider sites that answered a delta verb with a missing-method
        #: failure (unversioned peers) — probed once, then skipped.
        self._no_delta_providers: set[str] = set()
        #: Local pub/sub used by the consistency and mobility layers.
        #: Topics: ``replica_registered``, ``replica_refreshed``,
        #: ``put_applied``, ``fault_resolved``.
        self.events = EventBus()
        #: Guards the object tables: provider-side dispatcher threads and
        #: application threads touch them concurrently on the threaded and
        #: TCP transports.  Re-entrant because engine paths nest (e.g.
        #: build_package -> ensure_provider_for).
        self._lock = threading.RLock()
        self._masters: dict[str, MasterRecord] = {}
        self._replicas: dict[str, ReplicaRecord] = {}
        self._provider_refs: dict[str, RemoteRef] = {}
        self._pending_proxies: "weakref.WeakValueDictionary[str, ProxyOutBase]" = (
            weakref.WeakValueDictionary()
        )
        #: Demands currently on the wire, keyed by target obi id; faults
        #: racing on one target coalesce through these handles.
        self._inflight_demands: dict[str, _InflightDemand] = {}

    # ------------------------------------------------------------------
    # public API: provider role
    # ------------------------------------------------------------------
    def export(self, obj: object, *, name: str | None = None) -> RemoteRef:
        """Make ``obj`` available to other sites; optionally bind a name.

        The object becomes a *master* here; its proxy-in is exported
        through RMI and, when ``name`` is given, registered in the name
        server (the paper's "only AProxyIn is registered in a name
        server").
        """
        ref, _created = self.ensure_provider_for(obj)
        if name is not None:
            self.naming.rebind(name, ref)
        return ref

    def export_guarded(self, obj: object, policy, *, name: str | None = None) -> RemoteRef:
        """Export ``obj`` behind an access policy (see ``repro.rmi.acl``).

        Remote calls — including the replication protocol's ``get`` /
        ``put`` / ``demand`` — are checked against ``policy`` with the
        caller's site identity; local use of the object is unrestricted.
        Must be called before any unguarded export of the same object.
        """
        from repro.rmi.acl import AccessGuard

        oid = obi_id_of(obj)
        with self._lock:
            if oid in self._provider_refs:
                raise ReplicationError(
                    f"object {oid!r} is already exported unguarded; "
                    "export_guarded must come first"
                )
            interface = interface_of(obj)
            guard = AccessGuard(self.endpoint, ProxyIn(self, obj), policy)
            ref = self.endpoint.export(guard, interface=interface.name)
            self._provider_refs[oid] = ref
            if oid not in self._replicas:
                self._masters.setdefault(oid, MasterRecord(obj=obj))
        self.events.publish("provider_exported", site=self, oid=oid, ref=ref)
        if name is not None:
            self.naming.rebind(name, ref)
        return ref

    # ------------------------------------------------------------------
    # public API: consumer role
    # ------------------------------------------------------------------
    def replicate(
        self, target: str | RemoteRef, mode: ReplicationMode | None = None
    ) -> object:
        """Fetch a replica of the object behind ``target``.

        ``target`` is a bound name or a proxy-in reference.  ``mode``
        picks the granularity at run time (paper Section 2.1): per-object
        incremental, transitive closure, or cluster.
        """
        label = (
            target
            if isinstance(target, str)
            else getattr(target, "object_id", repr(target))
        )
        with self.tracer.span("replicate", name=label) as span:
            ref = self._resolve_target(target)
            package = self.endpoint.invoke(
                ref, "get", (mode if mode is not None else Incremental(1),)
            )
            replica = integrate_package(self, package)
            span.set(provider=ref.site_id, objects=package.object_count)
        self.events.publish("replica_registered", site=self, root=replica, package=package)
        return replica

    def remote_stub(self, target: str | RemoteRef) -> Stub:
        """An RMI stub on the master — every call crosses the network.

        Exposes the user interface (forwarded by the proxy-in), so an
        application can switch between this stub and a replica at run
        time without changing call sites.
        """
        ref = self._resolve_target(target)
        entry = compiled_registry.by_interface(ref.interface)
        return self.endpoint.stub(ref, entry.interface.methods)

    def put_back(self, replica: object) -> int:
        """Push a replica's state onto its master; returns the new version.

        With :attr:`delta_sync` on, ships only the dirty fields through
        ``put_delta`` when possible: a clean replica syncs without any
        network traffic, and a ``NEED_FULL`` answer (or an unversioned
        provider) transparently downgrades to the legacy full-state put.
        """
        cluster_ops.check_individually_updatable(self, replica)
        info = self._replica_record(replica)
        oid = obi_id_of(replica)
        with self.tracer.span("put_back", name=oid) as span:
            snap = self.dirty_tracker.capture(replica) if self.delta_sync else None
            if snap is not None and snap.clean:
                self.sync_stats.add(puts_noop=1)
                span.set(path="noop")
                return info.version
            if snap is not None and not snap.whole and self._delta_peer_ok(info.provider):
                versions = self._try_put_delta(info.provider, [(replica, snap)])
                if versions is not None:
                    version = versions.get(oid)
                    if version is None:
                        raise UnknownReplicaError(
                            f"master returned no version for {oid!r} after delta put"
                        )
                    info.version = version
                    span.set(path="delta")
                    return version
            package = build_put(self, [replica])
            versions = self.endpoint.invoke(info.provider, "put", (package,))
            version = versions.get(oid)
            if version is None:
                raise UnknownReplicaError(
                    f"master returned no version for {oid!r} after put"
                )
            info.version = version
            self._rebaseline_after_full_put([replica], [snap])
            self.sync_stats.add(puts_full=1)
            span.set(path="full")
            return version

    def put_back_cluster(self, root: object) -> dict[str, int]:
        """Push a whole cluster's state through its root's provider.

        With :attr:`delta_sync` on, only the dirty members' changed
        fields travel (one ``put_delta`` for the whole cluster), and a
        fully clean cluster syncs without touching the network.
        """
        info = self._replica_record(root)
        members = cluster_ops.cluster_members(self, root)
        with self.tracer.span(
            "put_back_cluster", name=obi_id_of(root), members=len(members)
        ):
            return self._put_back_cluster(info, members, root)

    def _put_back_cluster(
        self, info: "ReplicaRecord", members: list[object], root: object
    ) -> dict[str, int]:
        snaps: list[DirtySnapshot | None] = [None] * len(members)
        if self.delta_sync and self._delta_peer_ok(info.provider):
            snaps = [self.dirty_tracker.capture(member) for member in members]
            if all(s is not None and not s.whole for s in snaps):
                dirty = [
                    (member, snap)
                    for member, snap in zip(members, snaps)
                    if not snap.clean
                ]
                if not dirty:
                    self.sync_stats.add(puts_noop=1)
                    member_ids = [obi_id_of(member) for member in members]
                    with self._lock:
                        return {
                            oid: self._replicas[oid].version
                            for oid in member_ids
                            if oid in self._replicas
                        }
                versions = self._try_put_delta(info.provider, dirty)
                if versions is not None:
                    with self._lock:
                        for oid, version in versions.items():
                            record = self._replicas.get(oid)
                            if record is not None:
                                record.version = version
                    return versions
        package = cluster_ops.build_cluster_put(self, root)
        versions = self.endpoint.invoke(info.provider, "put", (package,))
        with self._lock:
            for oid, version in versions.items():
                record = self._replicas.get(oid)
                if record is not None:
                    record.version = version
        self._rebaseline_after_full_put(members, snaps)
        self.sync_stats.add(puts_full=1)
        return versions

    def refresh(self, replica: object) -> object:
        """Re-fetch a replica's state from its master, updating in place.

        With :attr:`delta_sync` on and a locally clean replica, asks the
        master for just the fields changed since the last synchronized
        version; a locally *dirty* replica always takes the full path,
        preserving refresh's overwrite-local-changes semantics.
        """
        cluster_ops.check_individually_updatable(self, replica)
        info = self._replica_record(replica)
        with self.tracer.span("refresh", name=obi_id_of(replica)) as span:
            if self.delta_sync and self._delta_peer_ok(info.provider):
                snap = self.dirty_tracker.capture(replica)
                if snap is not None and snap.clean:
                    reply = self._try_get_delta(info.provider, replica, info.version)
                    if reply is not None:
                        saved = max(0, _own_state_size(replica) - len(reply.payload))
                        if apply_refresh_delta(self, replica, reply):
                            info.version = reply.version
                            self.dirty_tracker.enroll(replica)
                            self.sync_stats.add(
                                refreshes_delta=1, delta_bytes_saved=saved
                            )
                            span.set(path="delta")
                            self.events.publish(
                                "replica_refreshed", site=self, replica=replica
                            )
                            return replica
                        # Merged state diverged from the master's fingerprint:
                        # the full refresh below overwrites the partial merge.
                        self.sync_stats.add(need_full_downgrades=1)
            package = self.endpoint.invoke(info.provider, "get", (Incremental(1),))
            refreshed = integrate_package(self, package)
            self.sync_stats.add(refreshes_full=1)
            span.set(path="full")
        self.events.publish("replica_refreshed", site=self, replica=refreshed)
        return refreshed

    def refresh_cluster(self, root: object) -> object:
        """Re-fetch a whole cluster through its root's provider.

        The counterpart of :meth:`put_back_cluster`: one get under the
        cluster's original mode refreshes the root and every member in
        place (cluster members cannot be individually refreshed).
        """
        info = self._replica_record(root)
        with self.tracer.span("refresh_cluster", name=obi_id_of(root)):
            package = self.endpoint.invoke(info.provider, "get", (info.mode,))
            refreshed = integrate_package(self, package)
        self.events.publish("replica_refreshed", site=self, replica=refreshed)
        return refreshed

    def invoke_local(self, obj: object, method: str, *args: object, **kwargs: object) -> object:
        """Invoke a method on a local object, charging the LMI cost (2 µs).

        Plain attribute calls work too — this wrapper exists so simulated
        benchmarks account invocation time the way the paper measures it.
        """
        self.clock.advance(self.costs.local_invoke_s)
        return getattr(obj, method)(*args, **kwargs)

    def touch(self, master: object, *, fields: "tuple[str, ...] | None" = None) -> int:
        """Announce a direct local modification of a master object.

        Masters are plain objects, so the middleware cannot observe the
        master site's own writes; version-based staleness detection
        (refresh, leases, reconciliation, transactions) only sees changes
        that arrive via ``put`` — or that the master application declares
        with ``touch``.  Returns the new version.

        Passing ``fields`` names what changed, letting delta refreshes
        serve this version from the change log; without it, the version
        records a whole-state change and consumers spanning it re-fetch
        full state (``NEED_FULL``).
        """
        oid = obi_id_of(master)
        version = self.bump_master_version(oid)
        self.change_log.record(
            oid, version, frozenset(fields) if fields is not None else None
        )
        return version

    def memory_footprint(self) -> int:
        """Approximate bytes of replica state held at this site.

        The info-appliance constraint the paper's evaluation closes on:
        "for info-appliances with reduced amount of free memory, when
        only a part of the objects are effectively needed, it is clearly
        advantageous to incrementally replicate a small number of
        objects".  Masters are excluded — they are the application's own
        data; this measures what replication added.  Each replica is
        costed on its *own* state, with references to other OBIWAN nodes
        counted as pointers rather than followed (every replica is
        already summed once).
        """
        with self._lock:
            return sum(
                _own_state_size(record.obj) for record in self._replicas.values()
            )

    def evict(self, replica: object) -> None:
        """Drop replication bookkeeping for a replica (memory pressure on
        an info-appliance).  The object itself stays usable as a plain
        local object; it can no longer be put back or refreshed."""
        with self._lock:
            self._replicas.pop(obi_id_of(replica), None)
        self.dirty_tracker.forget(replica)

    # ------------------------------------------------------------------
    # causal tracing (obitrace, PR 5)
    # ------------------------------------------------------------------
    def enable_tracing(self, *, capacity: int | None = None) -> SpanCollector:
        """Start recording causal spans at this site; returns the collector.

        The tracer reads the site clock (simulated or wall, matching the
        transport) and is shared with the RMI endpoint, so replication
        verbs, fault resolution and invoke/serve round trips all land in
        one per-site :class:`~repro.obs.spans.SpanCollector`.  Calling it
        again keeps the existing collector (idempotent).
        """
        if self.tracer.enabled:
            return self.tracer.collector
        collector = (
            SpanCollector(capacity) if capacity is not None else SpanCollector()
        )
        tracer = Tracer(self.name, collector=collector, clock=self.clock.now)
        self.tracer = tracer
        self.endpoint.tracer = tracer
        return collector

    def disable_tracing(self) -> None:
        """Stop recording; the fault path reverts to shared no-op spans.
        An existing collector (and its spans) stays readable."""
        self.tracer = NULL_TRACER
        self.endpoint.tracer = NULL_TRACER

    @property
    def tracing_enabled(self) -> bool:
        return self.tracer.enabled

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    @property
    def naming(self):
        return self.endpoint.naming

    def _resolve_target(self, target: str | RemoteRef) -> RemoteRef:
        if isinstance(target, RemoteRef):
            return target
        if isinstance(target, str):
            return self.naming.lookup(target)
        raise ReplicationError(
            f"cannot replicate from target of type {type(target).__name__}; "
            "pass a bound name or a RemoteRef"
        )

    # ------------------------------------------------------------------
    # engine services (used by repro.core.replication / faults / cluster)
    # ------------------------------------------------------------------
    @property
    def registry(self):
        return self.endpoint.registry

    @property
    def clock(self) -> Clock:
        return self.endpoint.clock

    def ensure_provider_for(self, obj: object) -> tuple[RemoteRef, bool]:
        """Make sure ``obj`` has an exported proxy-in; returns (ref, created)."""
        oid = obi_id_of(obj)
        with self._lock:
            existing = self._provider_refs.get(oid)
            if existing is not None:
                return existing, False
            interface = interface_of(obj)
            proxy_in = ProxyIn(self, obj)
            ref = self.endpoint.export(proxy_in, interface=interface.name)
            self._provider_refs[oid] = ref
            if oid not in self._replicas:
                self._masters.setdefault(oid, MasterRecord(obj=obj))
        self.events.publish("provider_exported", site=self, oid=oid, ref=ref)
        return ref, True

    def drop_master(self, oid: str) -> bool:
        """Forget a master record entirely (reachability GC).

        Retracts the proxy-in too.  The Python object itself is
        unaffected — if the application still references it, it lives on
        as plain local state and can be re-exported later.
        """
        with self._lock:
            self.retract_provider(oid)
            dropped = self._masters.pop(oid, None) is not None
        self.change_log.drop(oid)
        return dropped

    def iter_masters(self):
        with self._lock:
            return iter(list(self._masters.items()))

    def retract_provider(self, oid: str) -> bool:
        """Withdraw an object's proxy-in (distributed-GC reclamation).

        The master record survives — the object is still local state — but
        remote references to the old proxy-in die, exactly like Java RMI's
        "no such object in table" after a DGC lease expires.  A later
        ``ensure_provider_for`` exports a fresh proxy-in.
        """
        with self._lock:
            ref = self._provider_refs.pop(oid, None)
            if ref is None:
                return False
            self.endpoint.unexport(ref.object_id)
            return True

    def note_master(self, obj: object) -> None:
        """Record ``obj`` as mastered here without exporting a proxy-in.

        Cluster members stay proxy-in-less (the cluster shares its root's
        pair), but their master records must exist so a cluster ``put``
        can find them.
        """
        oid = obi_id_of(obj)
        with self._lock:
            if oid not in self._replicas:
                self._masters.setdefault(oid, MasterRecord(obj=obj))

    def version_of(self, obj: object) -> int:
        oid = obi_id_of(obj)
        with self._lock:
            master = self._masters.get(oid)
            if master is not None:
                return master.version
            replica = self._replicas.get(oid)
            if replica is not None:
                return replica.version
        return 1

    def is_master(self, oid: str) -> bool:
        with self._lock:
            return oid in self._masters

    def is_replica(self, oid: str) -> bool:
        with self._lock:
            return oid in self._replicas

    def has_exported(self, oid: str) -> bool:
        with self._lock:
            return oid in self._provider_refs

    def master_object_for(self, oid: str) -> object | None:
        with self._lock:
            record = self._masters.get(oid)
        return record.obj if record is not None else None

    def master_version(self, master: object) -> int:
        with self._lock:
            record = self._masters.get(obi_id_of(master))
        if record is None:
            raise ReplicationError(f"object is not mastered at site {self.name!r}")
        return record.version

    def bump_master_version(self, oid: str) -> int:
        with self._lock:
            record = self._masters.get(oid)
            if record is None:
                raise ReplicationError(f"no master {oid!r} at site {self.name!r}")
            record.version += 1
            version = record.version
        self.events.publish("put_applied", site=self, oid=oid, version=version)
        return version

    def local_object_for(self, oid: str) -> object | None:
        """The master or replica with this identity, if present here."""
        with self._lock:
            master = self._masters.get(oid)
            if master is not None:
                return master.obj
            replica = self._replicas.get(oid)
            if replica is not None:
                return replica.obj
        return None

    def local_node_for(self, oid: str) -> object | None:
        """Like :meth:`local_object_for`, but also reuses pending proxies."""
        local = self.local_object_for(oid)
        if local is not None:
            return local
        return self._pending_proxies.get(oid)

    def replica_info(self, oid: str) -> ReplicaRecord | None:
        with self._lock:
            return self._replicas.get(oid)

    def iter_replicas(self):
        with self._lock:
            return iter(list(self._replicas.values()))

    def register_replica(self, obj: object, meta: ObjectMeta, mode: ReplicationMode) -> None:
        with self._lock:
            self._register_replica_locked(obj, meta, mode)
        if self.delta_sync:
            # The replica is in a just-synced state right now: enroll it
            # (or re-baseline an existing enrollment after a refresh).
            self.dirty_tracker.enroll(obj)

    def _register_replica_locked(self, obj: object, meta: ObjectMeta, mode: ReplicationMode) -> None:
        oid = meta.obi_id
        existing = self._replicas.get(oid)
        if existing is not None:
            existing.obj = obj
            existing.version = meta.version
            existing.invalidated = False
            if meta.provider is not None:
                existing.provider = meta.provider
                existing.cluster_root = None
            return
        self._replicas[oid] = ReplicaRecord(
            obj=obj,
            provider=meta.provider,
            version=meta.version,
            mode=mode,
            cluster_root=meta.cluster_root,
        )

    def make_proxy_out(
        self, target_id: str, interface_name: str, provider: RemoteRef, mode: ReplicationMode
    ) -> ProxyOutBase:
        entry = compiled_registry.by_interface(interface_name)
        proxy = entry.proxy_out_cls(self, target_id, provider, entry.interface, mode)
        self._pending_proxies[target_id] = proxy
        self.gc_stats.track_created()
        return proxy

    def resolve_fault(self, proxy: ProxyOutBase) -> object:
        # fault_resolved publishes inside faults.resolve_fault, within the
        # fault span, so log subscribers see the trace context.
        return faults.resolve_fault(self, proxy)

    def finish_fault(self, proxy: ProxyOutBase, replica: object) -> None:
        self._pending_proxies.pop(proxy._obi_target_id, None)
        self.gc_stats.track_resolved(proxy)

    # ------------------------------------------------------------------
    # batched-demand fast path (used by repro.core.faults)
    # ------------------------------------------------------------------
    def begin_demand(self, target_id: str) -> tuple[bool, _InflightDemand]:
        """Claim the in-flight demand slot for ``target_id``.

        Returns ``(True, handle)`` when this caller leads the demand and
        must later call :meth:`finish_demand`; ``(False, handle)`` when
        another thread's demand is already on the wire — wait on
        ``handle.event`` and read ``handle.result`` / ``handle.error``.
        """
        with self._lock:
            existing = self._inflight_demands.get(target_id)
            if existing is not None:
                return False, existing
            handle = _InflightDemand()
            self._inflight_demands[target_id] = handle
            return True, handle

    def finish_demand(
        self,
        target_id: str,
        handle: _InflightDemand,
        *,
        result: object | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Release an in-flight demand slot and wake coalesced waiters."""
        with self._lock:
            self._inflight_demands.pop(target_id, None)
        handle.result = result
        handle.error = error
        handle.event.set()

    def pending_siblings(self, proxy: ProxyOutBase, *, limit: int) -> list[ProxyOutBase]:
        """Read-ahead candidates for a fault on ``proxy``.

        Unresolved pending proxies that share at least one demander with
        ``proxy`` (the same application object is holding both — the
        paper's frontier of one partial replica) and whose provider lives
        on the same site, so their demands can share the round trip.
        Ordered by target id for determinism; capped at ``limit``.
        """
        if limit <= 0:
            return []
        demander_ids = proxy._obi_demander_ids
        if not demander_ids:
            return []
        provider_site = proxy._obi_provider.site_id
        with self._lock:
            pending = sorted(self._pending_proxies.items())
        siblings: list[ProxyOutBase] = []
        for _target_id, candidate in pending:
            if candidate is proxy or candidate._obi_resolved is not None:
                continue
            if candidate._obi_provider.site_id != provider_site:
                continue
            if demander_ids & candidate._obi_demander_ids:
                siblings.append(candidate)
                if len(siblings) >= limit:
                    break
        return siblings

    # ------------------------------------------------------------------
    # cost charging
    # ------------------------------------------------------------------
    def charge_serialization(self, nbytes: int) -> None:
        self.clock.advance(nbytes * self.costs.serialize_per_byte_s)

    def charge_pairs(self, count: int) -> None:
        if count:
            self.clock.advance(count * self.costs.proxy_pair_create_s)

    def charge_pair_batch(self, count: int) -> None:
        """The superlinear burst penalty (see CostModel docs)."""
        if count > 1:
            self.clock.advance(count * count * self.costs.pair_batch_quadratic_s)

    def charge_replicas(self, count: int) -> None:
        if count:
            self.clock.advance(count * self.costs.replica_create_s)

    # ------------------------------------------------------------------
    # delta-sync plumbing (PR 4)
    # ------------------------------------------------------------------
    def _delta_peer_ok(self, provider: RemoteRef | None) -> bool:
        """True unless this provider's site already failed a delta probe."""
        if provider is None:
            return False
        with self._lock:
            return provider.site_id not in self._no_delta_providers

    def _note_no_delta(self, provider: RemoteRef) -> None:
        """Remember that ``provider``'s site lacks the delta verbs."""
        with self._lock:
            self._no_delta_providers.add(provider.site_id)

    def _try_put_delta(
        self, provider: RemoteRef, items: "list[tuple[object, DirtySnapshot]]"
    ) -> dict[str, int] | None:
        """One delta put attempt; ``None`` means "use the full path".

        Handles the two downgrade shapes: an unversioned peer (missing
        ``put_delta`` → remembered in :attr:`_no_delta_providers`) and a
        ``NEED_FULL`` answer (version/fingerprint mismatch at the
        master).  On success, commits every snapshot so the dirty sets
        re-baseline, and credits the bytes the full path would have
        shipped.
        """
        package = build_put_delta(
            self, [(replica, snap.fields) for replica, snap in items]
        )
        with self.tracer.span("put_delta", entries=len(items)) as span:
            try:
                result = self.endpoint.invoke(provider, "put_delta", (package,))
            except (ProtocolError, RemoteError) as exc:
                if not _delta_unsupported(exc):
                    raise
                self._note_no_delta(provider)
                span.set(outcome="unversioned_peer")
                return None
            if isinstance(result, NeedFull):
                self.sync_stats.add(need_full_downgrades=1)
                span.set(outcome="need_full")
                return None
        if not isinstance(result, dict):
            raise ReplicationError(f"unexpected put_delta reply: {result!r}")
        saved = 0
        for replica, snap in items:
            saved += self._delta_savings(replica, snap.fields)
            self.dirty_tracker.commit(replica, snap)
        self.sync_stats.add(puts_delta=1, delta_bytes_saved=saved)
        return result

    def _try_get_delta(
        self, provider: RemoteRef, replica: object, base_version: int
    ) -> "RefreshDeltaReply | None":
        """One delta refresh attempt; ``None`` means "use the full path"."""
        request = RefreshDeltaRequest(
            obi_id=obi_id_of(replica), base_version=base_version
        )
        with self.tracer.span("get_delta", name=request.obi_id) as span:
            try:
                reply = self.endpoint.invoke(provider, "get_delta", (request,))
            except (ProtocolError, RemoteError) as exc:
                if not _delta_unsupported(exc):
                    raise
                self._note_no_delta(provider)
                span.set(outcome="unversioned_peer")
                return None
            if isinstance(reply, NeedFull):
                self.sync_stats.add(need_full_downgrades=1)
                span.set(outcome="need_full")
                return None
        if not isinstance(reply, RefreshDeltaReply):
            raise ReplicationError(f"unexpected get_delta reply: {reply!r}")
        return reply

    def _rebaseline_after_full_put(
        self, replicas: "list[object]", snaps: "list[DirtySnapshot | None]"
    ) -> None:
        """After a successful full put, the replicas are synced: commit
        captured snapshots (no-op if the object mutated mid-put) and
        enroll anything the tracker had not seen yet."""
        if not self.delta_sync:
            return
        for replica, snap in zip(replicas, snaps):
            if snap is not None:
                self.dirty_tracker.commit(replica, snap)
            else:
                self.dirty_tracker.enroll(replica)

    def _delta_savings(self, replica: object, fields: "frozenset[str]") -> int:
        """Estimated bytes a delta put avoided versus shipping full state."""
        state = vars(replica)
        delta_bytes = sum(
            _value_size(state[name]) for name in fields if name in state
        )
        return max(0, _own_state_size(replica) - delta_bytes)

    # ------------------------------------------------------------------
    # introspection helpers used by the engine's put path
    # ------------------------------------------------------------------
    def _replica_record(self, replica: object) -> ReplicaRecord:
        if not is_obiwan(replica):
            raise ReplicationError(f"{type(replica).__name__} is not an OBIWAN object")
        with self._lock:
            record = self._replicas.get(obi_id_of(replica))
        if record is None:
            raise ReplicationError(
                f"object {obi_id_of(replica)!r} is not a replica on site {self.name!r}"
            )
        if record.provider is None:
            raise ClusterError(
                "replica has no individual provider (cluster member); use the cluster root"
            )
        return record

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Site({self.name!r}, masters={len(self._masters)}, "
                f"replicas={len(self._replicas)})"
            )


class World:
    """A set of sites wired to one network and one name server."""

    def __init__(self, network: Network, *, costs: CostModel | None = None):
        self.network = network
        self.costs = costs if costs is not None else CostModel.calibrated_2002()
        self.sites: dict[str, Site] = {}
        self._nameserver_site: str | None = None

    # ------------------------------------------------------------------
    # constructors for the three transports
    # ------------------------------------------------------------------
    @classmethod
    def loopback(
        cls,
        *,
        link: Link = LAN_10MBPS,
        clock: Clock | None = None,
        costs: CostModel | None = None,
        seed: int | None = None,
    ) -> "World":
        """Deterministic simulated-time world (the benchmark default)."""
        network = LoopbackNetwork(
            clock if clock is not None else SimClock(), default_link=link, seed=seed
        )
        return cls(network, costs=costs)

    @classmethod
    def threaded(cls, *, link: Link = LAN_10MBPS, costs: CostModel | None = None) -> "World":
        """Concurrent in-process world on the wall clock."""
        network = ThreadedNetwork(WallClock(), default_link=link)
        return cls(network, costs=costs if costs is not None else CostModel.zero())

    @classmethod
    def tcp(cls, *, link: Link = LAN_10MBPS, costs: CostModel | None = None) -> "World":
        """Localhost-TCP world — the closest analogue of RMI over a LAN."""
        network = TcpNetwork(WallClock(), default_link=link)
        return cls(network, costs=costs if costs is not None else CostModel.zero())

    # ------------------------------------------------------------------
    # site management
    # ------------------------------------------------------------------
    def create_site(self, name: str | None = None) -> Site:
        """Attach a new site; the first site created hosts the name server."""
        site_name = name if name is not None else new_site_id()
        if site_name in self.sites:
            raise ReplicationError(f"site {site_name!r} already exists in this world")
        endpoint = RmiEndpoint(
            self.network, site_name, nameserver_site=self._nameserver_site
        )
        if self._nameserver_site is None:
            endpoint.host_nameserver()
            self._nameserver_site = site_name
            # Earlier sites cannot exist (this is the first), so nothing to
            # retrofit; later sites get the pointer at construction.
        site = Site(self, site_name, endpoint)
        self.sites[site_name] = site
        return site

    @property
    def clock(self) -> Clock:
        return self.network.clock

    def close(self) -> None:
        self.network.close()

    def __enter__(self) -> "World":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"World({type(self.network).__name__}, sites={sorted(self.sites)})"


def _delta_unsupported(exc: BaseException) -> bool:
    """True when a delta-verb failure means "this peer predates delta sync".

    An unversioned peer's skeleton reports the missing verb as a
    :class:`ProtocolError` ("has no method"); a peer whose handler probes
    attributes may flatten an ``AttributeError`` into a
    :class:`RemoteError` instead.  Anything else is a genuine failure and
    must propagate.
    """
    if isinstance(exc, ProtocolError):
        return "has no method" in str(exc)
    if isinstance(exc, RemoteError):
        return exc.remote_type == "AttributeError"
    return False


def _own_state_size(obj: object) -> int:
    """Bytes of one object's own state; OBIWAN references cost a pointer."""
    return sum(_value_size(value) for value in vars(obj).values())


def _value_size(value: object) -> int:
    from repro.core import graphwalk
    from repro.util.sizes import estimate_payload_size

    if graphwalk.is_node(value):
        return 8  # a reference, not the referent
    if isinstance(value, dict):
        return 8 + sum(_value_size(k) + _value_size(v) for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(_value_size(item) for item in value)
    return estimate_payload_size(value)
