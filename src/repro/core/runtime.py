"""The OBIWAN runtime: sites and worlds.

A :class:`Site` models one OBIWAN process (the paper's S1/S2): it owns the
master and replica tables, the exported proxy-ins, the pending proxy-outs
and the cost accounting.  A :class:`World` wires sites to a network and a
name server and is the entry point of the public API::

    world = World.loopback()
    provider = world.create_site("S2")
    consumer = world.create_site("S1")

    ref = provider.export(master, name="a")
    replica = consumer.replicate("a", mode=Incremental(10))   # LMI path
    stub = consumer.remote_stub("a")                          # RMI path

The choice between ``replicate`` (local method invocation on a replica)
and ``remote_stub`` (remote method invocation on the master) is the
run-time decision the paper puts in the application's hands.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from dataclasses import dataclass, field, replace

from repro.core import cluster as cluster_ops
from repro.core import faults
from repro.core.costs import CostModel
from repro.core.gc_stats import GcStats
from repro.core.interfaces import Incremental, ReplicationMode
from repro.core.meta import (
    compiled_registry,
    interface_of,
    is_obiwan,
    obi_id_of,
)
from repro.core.negotiation import (
    COMPILED_CODEC,
    DELTA_SYNC,
    UNSUPPORTED,
    PeerCapabilities,
    probe,
)
from repro.core.packages import ObjectMeta, RefreshDeltaReply, RefreshDeltaRequest
from repro.core.proxy_in import ProxyIn
from repro.core.proxy_out import ProxyOutBase
from repro.core.replication import (
    apply_refresh_delta,
    build_put,
    build_put_delta,
    integrate_package,
)
from repro.core.striping import (
    DEFAULT_STRIPES,
    NULL_GUARD,
    StripedStats,
    StripeLock,
    snapshot_read,
    stripe_of,
)
from repro.core.telemetry import FeedStats, SerialPathStats, SyncPathStats
from repro.core.versions import ChangeLog, DirtyTracker, DirtySnapshot
from repro.obs.context import NULL_TRACER, Tracer
from repro.obs.spans import SpanCollector
from repro.rmi.endpoint import RmiEndpoint
from repro.rmi.protocol import NeedFull
from repro.rmi.refs import RemoteRef
from repro.rmi.stub import Stub
from repro.serial.delta import Fingerprinter
from repro.simnet.link import LAN_10MBPS, Link
from repro.simnet.loopback import LoopbackNetwork
from repro.simnet.network import Network
from repro.simnet.reactor import ReactorNetwork
from repro.simnet.tcp import TcpNetwork
from repro.simnet.threaded import ThreadedNetwork
from repro.util.clock import Clock, SimClock, WallClock
from repro.util.errors import (
    ClusterError,
    ReplicationError,
    UnknownReplicaError,
)
from repro.util.events import EventBus
from repro.util.ids import new_site_id


#: Site-global registration order for table records.  ``itertools.count``
#: advances atomically under the GIL, so stamping needs no lock; the
#: striped iterators sort by it to preserve the registration-order
#: iteration the single-table runtime gave for free (cluster member
#: order depends on it).
_record_seq = itertools.count()


@dataclass
class MasterRecord:
    """Bookkeeping for one object mastered at this site."""

    obj: object
    version: int = 1
    seq: int = field(default_factory=_record_seq.__next__)


@dataclass
class FaultPathStats:
    """Counters for the batched/prefetching fault fast path.

    Faulting threads race on these (coalesced faults exist precisely
    because resolution is concurrent), so increments go through
    :meth:`add` under the internal lock — a bare ``+= 1`` loses counts
    across a read-modify-write.  Reading individual attributes is fine
    for monitoring; use :meth:`snapshot` when the three counters must be
    mutually consistent.
    """

    #: Demand round trips that went through the batched fast path
    #: (widened scope and/or piggybacked sibling demands).
    demands_batched: int = 0
    #: Objects replicated ahead of need: read-ahead members beyond the
    #: mode's own chunk, plus sibling proxies resolved without a round
    #: trip of their own.
    prefetch_hits: int = 0
    #: Faults that waited on another thread's in-flight demand instead of
    #: issuing a duplicate round trip.
    coalesced_faults: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(
        self,
        *,
        demands_batched: int = 0,
        prefetch_hits: int = 0,
        coalesced_faults: int = 0,
    ) -> None:
        """Atomically bump any subset of the counters."""
        with self._lock:
            self.demands_batched += demands_batched
            self.prefetch_hits += prefetch_hits
            self.coalesced_faults += coalesced_faults

    def snapshot(self) -> dict[str, int]:
        """A mutually-consistent reading of all three counters."""
        with self._lock:
            return {
                "demands_batched": self.demands_batched,
                "prefetch_hits": self.prefetch_hits,
                "coalesced_faults": self.coalesced_faults,
            }

    def reset(self) -> dict[str, int]:
        """Zero the counters; returns the values they had (snapshot-then-
        reset is atomic, so no increment can fall between the two)."""
        with self._lock:
            before = {
                "demands_batched": self.demands_batched,
                "prefetch_hits": self.prefetch_hits,
                "coalesced_faults": self.coalesced_faults,
            }
            self.demands_batched = 0
            self.prefetch_hits = 0
            self.coalesced_faults = 0
        return before


class _InflightDemand:
    """Rendezvous for faults coalescing on one in-flight demand."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: object | None = None
        self.error: BaseException | None = None


@dataclass
class ReplicaRecord:
    """Bookkeeping for one replica held at this site."""

    obj: object
    provider: RemoteRef | None
    version: int
    mode: ReplicationMode
    cluster_root: str | None = None
    #: Set by the consistency layer (invalidation/lease protocols).
    invalidated: bool = field(default=False)
    lease_expires_at: float | None = field(default=None)
    seq: int = field(default_factory=_record_seq.__next__)


class Site:
    """One OBIWAN process: masters, replicas, proxies, costs."""

    def __init__(
        self,
        world: "World",
        name: str,
        endpoint: RmiEndpoint,
        *,
        stripes: int | None = None,
        snapshot_reads: bool = True,
    ):
        self.world = world
        self.name = name
        self.endpoint = endpoint
        self.costs: CostModel = world.costs
        self.gc_stats = GcStats()
        #: Number of oid-hashed stripes the object tables are partitioned
        #: into.  Node-local: peers never see it, so striped and
        #: un-striped sites interoperate unchanged.
        count = stripes if stripes is not None else DEFAULT_STRIPES
        if count < 1:
            raise ReplicationError(f"stripe count must be >= 1, got {count}")
        self.stripe_count = count
        #: Chicken bit for the lock-free read paths.  ``False`` makes
        #: every ``@snapshot_read`` method take its stripe lock instead —
        #: the pre-striping discipline, kept for A/B benchmarking
        #: (``stripes=1, snapshot_reads=False`` reproduces the old
        #: single-global-RLock runtime).
        self._snapshot_reads = snapshot_reads
        self.fault_stats = StripedStats(FaultPathStats, count)
        self.sync_stats = StripedStats(SyncPathStats, count)
        self.serial_stats = StripedStats(SerialPathStats, count)
        #: Causal tracer (obitrace, PR 5).  :data:`NULL_TRACER` — whose
        #: ``span()`` hands back one shared no-op context manager — until
        #: :meth:`enable_tracing` swaps in a live one.  Shared with the
        #: RMI endpoint so invoke/serve spans land in the same collector.
        self.tracer = NULL_TRACER
        #: Opt-in knob for delta synchronization (PR 4).  When ``True``,
        #: ``put_back``/``put_back_cluster``/``refresh`` try the versioned
        #: delta verbs first and fall back to the legacy full-state path on
        #: ``NEED_FULL`` or an unversioned peer.  Replicas fetched before
        #: the knob was flipped enroll lazily on their next full sync.
        self.delta_sync = False
        #: Deterministic state-digest machine shared by the delta paths.
        self.fingerprinter = Fingerprinter(endpoint.registry)
        #: Consumer-side dirty-field bookkeeping for enrolled replicas.
        self.dirty_tracker = DirtyTracker(self.fingerprinter)
        #: Master-side history of which fields each version changed.
        self.change_log = ChangeLog()
        #: Opt-in knob for the obicodec fast path (PR 7).  When ``True``,
        #: outgoing modes announce ``codec=1`` (so codec-enabled providers
        #: answer with compiled frames), provider-side ``get`` handling
        #: honours the announcement, and ``put_back`` ships all-scalar
        #: replicas as compiled frames — downgrading per provider site the
        #: first time a pre-codec master rejects the unknown wire tag.
        self.compiled_codec = False
        #: One shared verdict cache for every negotiated extension: a
        #: provider site that failed a delta-verb probe (unversioned
        #: peer) or rejected a compiled put frame (pre-codec peer) is
        #: remembered here so later calls skip the probe and go legacy.
        self.peer_caps = PeerCapabilities()
        #: Local pub/sub used by the consistency and mobility layers.
        #: Topics: ``replica_registered``, ``replica_refreshed``,
        #: ``put_applied``, ``fault_resolved``.
        self.events = EventBus()
        #: Change-feed counters (PR 10); always present so telemetry can
        #: render a ``feed:`` line even for sites with no feed role.
        self.feed_stats = FeedStats()
        #: The attached :mod:`repro.feed` role — a ``FeedPrimary`` or
        #: ``FeedFollower`` — or ``None``.  The exported feed service
        #: dispatches its verbs through whatever role is current, so a
        #: promotion swaps behaviour without re-exporting anything.
        self.feed_role = None
        #: A peer that detaches and re-attaches may have restarted as a
        #: different (older) build: drop its cached capability verdicts so
        #: the next extension use re-probes instead of trusting stale
        #: state (and, symmetrically, a downgraded verdict does not outlive
        #: the connection that earned it).
        endpoint.network.add_topology_listener(self._on_peer_topology)
        #: Per-stripe locks guarding the object tables: provider-side
        #: dispatcher threads and application threads touch them
        #: concurrently on the threaded and TCP transports.  Each stripe's
        #: lock is re-entrant because engine paths nest within one oid
        #: (e.g. drop_master -> retract of the same object).  obiflow
        #: machine-checks the discipline: an access to a striped table
        #: must hold the stripe lock derived from the same key (OBI207),
        #: multi-stripe acquisitions must ascend (OBI208), and declared
        #: snapshot reads must not mutate (OBI209).
        self._stripe_locks = [StripeLock() for _ in range(count)]
        self._masters: list[dict[str, MasterRecord]] = [{} for _ in range(count)]
        self._replicas: list[dict[str, ReplicaRecord]] = [{} for _ in range(count)]
        self._provider_refs: list[dict[str, RemoteRef]] = [{} for _ in range(count)]
        #: Pending proxy-outs stay one table: proxies are keyed by target
        #: id but scanned whole (``pending_siblings``), so a dedicated
        #: small lock beats stripe routing here.
        self._proxies_lock = threading.Lock()
        self._pending_proxies: "weakref.WeakValueDictionary[str, ProxyOutBase]" = (
            weakref.WeakValueDictionary()
        )
        #: Demands currently on the wire, keyed by target obi id; faults
        #: racing on one target coalesce through these handles.
        self._inflight_demands: list[dict[str, _InflightDemand]] = [
            {} for _ in range(count)
        ]

    def _stripe_of(self, oid: str) -> int:
        """The stripe an obi id routes to (deterministic, node-local)."""
        return stripe_of(oid, self.stripe_count)

    def _on_peer_topology(self, event: str, site_id: str) -> None:
        if site_id != self.name:
            self.peer_caps.forget(site_id)

    def _read_guard(self, idx: int):
        """Null context by default; stripe ``idx``'s lock when the
        snapshot-read chicken bit is off (the pre-striping discipline)."""
        if self._snapshot_reads:
            return NULL_GUARD
        return self._stripe_locks[idx]

    # ------------------------------------------------------------------
    # public API: provider role
    # ------------------------------------------------------------------
    def export(self, obj: object, *, name: str | None = None) -> RemoteRef:
        """Make ``obj`` available to other sites; optionally bind a name.

        The object becomes a *master* here; its proxy-in is exported
        through RMI and, when ``name`` is given, registered in the name
        server (the paper's "only AProxyIn is registered in a name
        server").
        """
        ref, _created = self.ensure_provider_for(obj)
        if name is not None:
            self.naming.rebind(name, ref)
        return ref

    def export_guarded(self, obj: object, policy, *, name: str | None = None) -> RemoteRef:
        """Export ``obj`` behind an access policy (see ``repro.rmi.acl``).

        Remote calls — including the replication protocol's ``get`` /
        ``put`` / ``demand`` — are checked against ``policy`` with the
        caller's site identity; local use of the object is unrestricted.
        Must be called before any unguarded export of the same object.
        """
        from repro.rmi.acl import AccessGuard

        oid = obi_id_of(obj)
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            if oid in self._provider_refs[idx]:
                raise ReplicationError(
                    f"object {oid!r} is already exported unguarded; "
                    "export_guarded must come first"
                )
            interface = interface_of(obj)
            guard = AccessGuard(self.endpoint, ProxyIn(self, obj), policy)
            ref = self.endpoint.export(guard, interface=interface.name)
            self._provider_refs[idx][oid] = ref
            if oid not in self._replicas[idx]:
                self._masters[idx].setdefault(oid, MasterRecord(obj=obj))
        self.events.publish("provider_exported", site=self, oid=oid, ref=ref)
        if name is not None:
            self.naming.rebind(name, ref)
        return ref

    # ------------------------------------------------------------------
    # public API: consumer role
    # ------------------------------------------------------------------
    def replicate(
        self, target: str | RemoteRef, mode: ReplicationMode | None = None
    ) -> object:
        """Fetch a replica of the object behind ``target``.

        ``target`` is a bound name or a proxy-in reference.  ``mode``
        picks the granularity at run time (paper Section 2.1): per-object
        incremental, transitive closure, or cluster.
        """
        label = (
            target
            if isinstance(target, str)
            else getattr(target, "object_id", repr(target))
        )
        with self.tracer.span("replicate", name=label) as span:
            ref = self._resolve_target(target)
            package = self.endpoint.invoke(
                ref,
                "get",
                (self.outgoing_mode(mode if mode is not None else Incremental(1)),),
            )
            replica = integrate_package(self, package)
            span.set(provider=ref.site_id, objects=package.object_count)
        self.events.publish("replica_registered", site=self, root=replica, package=package)
        return replica

    def remote_stub(self, target: str | RemoteRef) -> Stub:
        """An RMI stub on the master — every call crosses the network.

        Exposes the user interface (forwarded by the proxy-in), so an
        application can switch between this stub and a replica at run
        time without changing call sites.
        """
        ref = self._resolve_target(target)
        entry = compiled_registry.by_interface(ref.interface)
        return self.endpoint.stub(ref, entry.interface.methods)

    def put_back(self, replica: object) -> int:
        """Push a replica's state onto its master; returns the new version.

        With :attr:`delta_sync` on, ships only the dirty fields through
        ``put_delta`` when possible: a clean replica syncs without any
        network traffic, and a ``NEED_FULL`` answer (or an unversioned
        provider) transparently downgrades to the legacy full-state put.
        """
        cluster_ops.check_individually_updatable(self, replica)
        info = self._replica_record(replica)
        oid = obi_id_of(replica)
        with self.tracer.span("put_back", name=oid) as span:
            snap = self.dirty_tracker.capture(replica) if self.delta_sync else None
            if snap is not None and snap.clean:
                self.sync_stats.add(oid=oid, puts_noop=1)
                span.set(path="noop")
                return info.version
            if snap is not None and not snap.whole and self._delta_peer_ok(info.provider):
                versions = self._try_put_delta(info.provider, [(replica, snap)])
                if versions is not None:
                    version = versions.get(oid)
                    if version is None:
                        raise UnknownReplicaError(
                            f"master returned no version for {oid!r} after delta put"
                        )
                    info.version = version
                    span.set(path="delta")
                    return version
            provider = info.provider
            if self._codec_peer_ok(provider):
                package = build_put(self, [replica], compiled=True)
                versions = probe(
                    self.peer_caps,
                    provider.site_id,
                    COMPILED_CODEC,
                    lambda: self.endpoint.invoke(provider, "put", (package,)),
                )
                if versions is UNSUPPORTED:
                    # A pre-codec master choked on the OBJECT_SCHEMA tag:
                    # the site is now cached as unsupported; retry
                    # reflectively.  Put is last-writer-wins, so the
                    # retry is idempotent even if the first attempt
                    # half-landed (it cannot: decode precedes any
                    # mutation on the master side).
                    package = build_put(self, [replica], compiled=False)
                    versions = self.endpoint.invoke(provider, "put", (package,))
            else:
                package = build_put(self, [replica], compiled=False)
                versions = self.endpoint.invoke(provider, "put", (package,))
            version = versions.get(oid)
            if version is None:
                raise UnknownReplicaError(
                    f"master returned no version for {oid!r} after put"
                )
            info.version = version
            self._rebaseline_after_full_put([replica], [snap])
            self.sync_stats.add(oid=oid, puts_full=1)
            span.set(path="full")
            return version

    def put_back_cluster(self, root: object) -> dict[str, int]:
        """Push a whole cluster's state through its root's provider.

        With :attr:`delta_sync` on, only the dirty members' changed
        fields travel (one ``put_delta`` for the whole cluster), and a
        fully clean cluster syncs without touching the network.
        """
        info = self._replica_record(root)
        members = cluster_ops.cluster_members(self, root)
        with self.tracer.span(
            "put_back_cluster", name=obi_id_of(root), members=len(members)
        ):
            return self._put_back_cluster(info, members, root)

    def _put_back_cluster(
        self, info: "ReplicaRecord", members: list[object], root: object
    ) -> dict[str, int]:
        snaps: list[DirtySnapshot | None] = [None] * len(members)
        if self.delta_sync and self._delta_peer_ok(info.provider):
            snaps = [self.dirty_tracker.capture(member) for member in members]
            if all(s is not None and not s.whole for s in snaps):
                dirty = [
                    (member, snap)
                    for member, snap in zip(members, snaps)
                    if not snap.clean
                ]
                if not dirty:
                    self.sync_stats.add(oid=obi_id_of(root), puts_noop=1)
                    versions_held: dict[str, int] = {}
                    for member in members:
                        oid = obi_id_of(member)
                        idx = self._stripe_of(oid)
                        with self._stripe_locks[idx]:
                            record = self._replicas[idx].get(oid)
                        if record is not None:
                            versions_held[oid] = record.version
                    return versions_held
                versions = self._try_put_delta(info.provider, dirty)
                if versions is not None:
                    self._apply_versions(versions)
                    return versions
        package = cluster_ops.build_cluster_put(self, root)
        versions = self.endpoint.invoke(info.provider, "put", (package,))
        self._apply_versions(versions)
        self._rebaseline_after_full_put(members, snaps)
        self.sync_stats.add(oid=obi_id_of(root), puts_full=1)
        return versions

    def _apply_versions(self, versions: dict[str, int]) -> None:
        """Commit master-acknowledged versions onto the replica records.

        Stripes are visited in sorted-oid order, one lock at a time —
        no stripe lock is ever held while taking another.
        """
        for oid in sorted(versions):
            idx = self._stripe_of(oid)
            with self._stripe_locks[idx]:
                record = self._replicas[idx].get(oid)
                if record is not None:
                    record.version = versions[oid]

    def refresh(self, replica: object) -> object:
        """Re-fetch a replica's state from its master, updating in place.

        With :attr:`delta_sync` on and a locally clean replica, asks the
        master for just the fields changed since the last synchronized
        version; a locally *dirty* replica always takes the full path,
        preserving refresh's overwrite-local-changes semantics.
        """
        cluster_ops.check_individually_updatable(self, replica)
        info = self._replica_record(replica)
        with self.tracer.span("refresh", name=obi_id_of(replica)) as span:
            if self.delta_sync and self._delta_peer_ok(info.provider):
                snap = self.dirty_tracker.capture(replica)
                if snap is not None and snap.clean:
                    reply = self._try_get_delta(info.provider, replica, info.version)
                    if reply is not None:
                        saved = max(0, _own_state_size(replica) - len(reply.payload))
                        if apply_refresh_delta(self, replica, reply):
                            info.version = reply.version
                            self.dirty_tracker.enroll(replica)
                            self.sync_stats.add(
                                refreshes_delta=1, delta_bytes_saved=saved
                            )
                            span.set(path="delta")
                            self.events.publish(
                                "replica_refreshed", site=self, replica=replica
                            )
                            return replica
                        # Merged state diverged from the master's fingerprint:
                        # the full refresh below overwrites the partial merge.
                        self.sync_stats.add(need_full_downgrades=1)
            package = self.endpoint.invoke(
                info.provider, "get", (self.outgoing_mode(Incremental(1)),)
            )
            refreshed = integrate_package(self, package)
            self.sync_stats.add(refreshes_full=1)
            span.set(path="full")
        self.events.publish("replica_refreshed", site=self, replica=refreshed)
        return refreshed

    def refresh_cluster(self, root: object) -> object:
        """Re-fetch a whole cluster through its root's provider.

        The counterpart of :meth:`put_back_cluster`: one get under the
        cluster's original mode refreshes the root and every member in
        place (cluster members cannot be individually refreshed).
        """
        info = self._replica_record(root)
        with self.tracer.span("refresh_cluster", name=obi_id_of(root)):
            package = self.endpoint.invoke(
                info.provider, "get", (self.outgoing_mode(info.mode),)
            )
            refreshed = integrate_package(self, package)
        self.events.publish("replica_refreshed", site=self, replica=refreshed)
        return refreshed

    def invoke_local(self, obj: object, method: str, *args: object, **kwargs: object) -> object:
        """Invoke a method on a local object, charging the LMI cost (2 µs).

        Plain attribute calls work too — this wrapper exists so simulated
        benchmarks account invocation time the way the paper measures it.
        """
        self.clock.advance(self.costs.local_invoke_s)
        return getattr(obj, method)(*args, **kwargs)

    def touch(self, master: object, *, fields: "tuple[str, ...] | None" = None) -> int:
        """Announce a direct local modification of a master object.

        Masters are plain objects, so the middleware cannot observe the
        master site's own writes; version-based staleness detection
        (refresh, leases, reconciliation, transactions) only sees changes
        that arrive via ``put`` — or that the master application declares
        with ``touch``.  Returns the new version.

        Passing ``fields`` names what changed, letting delta refreshes
        serve this version from the change log; without it, the version
        records a whole-state change and consumers spanning it re-fetch
        full state (``NEED_FULL``).
        """
        oid = obi_id_of(master)
        version = self.bump_master_version(oid)
        self.change_log.record(
            oid, version, frozenset(fields) if fields is not None else None
        )
        return version

    def memory_footprint(self) -> int:
        """Approximate bytes of replica state held at this site.

        The info-appliance constraint the paper's evaluation closes on:
        "for info-appliances with reduced amount of free memory, when
        only a part of the objects are effectively needed, it is clearly
        advantageous to incrementally replicate a small number of
        objects".  Masters are excluded — they are the application's own
        data; this measures what replication added.  Each replica is
        costed on its *own* state, with references to other OBIWAN nodes
        counted as pointers rather than followed (every replica is
        already summed once).
        """
        total = 0
        for idx in range(self.stripe_count):
            with self._stripe_locks[idx]:
                total += sum(
                    _own_state_size(record.obj)
                    for record in self._replicas[idx].values()
                )
        return total

    def evict(self, replica: object) -> None:
        """Drop replication bookkeeping for a replica (memory pressure on
        an info-appliance).  The object itself stays usable as a plain
        local object; it can no longer be put back or refreshed."""
        oid = obi_id_of(replica)
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            self._replicas[idx].pop(oid, None)
        self.dirty_tracker.forget(replica)

    # ------------------------------------------------------------------
    # causal tracing (obitrace, PR 5)
    # ------------------------------------------------------------------
    def enable_tracing(self, *, capacity: int | None = None) -> SpanCollector:
        """Start recording causal spans at this site; returns the collector.

        The tracer reads the site clock (simulated or wall, matching the
        transport) and is shared with the RMI endpoint, so replication
        verbs, fault resolution and invoke/serve round trips all land in
        one per-site :class:`~repro.obs.spans.SpanCollector`.  Calling it
        again keeps the existing collector (idempotent).
        """
        if self.tracer.enabled:
            return self.tracer.collector
        collector = (
            SpanCollector(capacity) if capacity is not None else SpanCollector()
        )
        tracer = Tracer(self.name, collector=collector, clock=self.clock.now)
        self.tracer = tracer
        self.endpoint.tracer = tracer
        return collector

    def disable_tracing(self) -> None:
        """Stop recording; the fault path reverts to shared no-op spans.
        An existing collector (and its spans) stays readable."""
        self.tracer = NULL_TRACER
        self.endpoint.tracer = NULL_TRACER

    @property
    def tracing_enabled(self) -> bool:
        return self.tracer.enabled

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    @property
    def naming(self):
        return self.endpoint.naming

    def _resolve_target(self, target: str | RemoteRef) -> RemoteRef:
        if isinstance(target, RemoteRef):
            return target
        if isinstance(target, str):
            return self.naming.lookup(target)
        raise ReplicationError(
            f"cannot replicate from target of type {type(target).__name__}; "
            "pass a bound name or a RemoteRef"
        )

    # ------------------------------------------------------------------
    # engine services (used by repro.core.replication / faults / cluster)
    # ------------------------------------------------------------------
    @property
    def registry(self):
        return self.endpoint.registry

    @property
    def clock(self) -> Clock:
        return self.endpoint.clock

    def ensure_provider_for(self, obj: object) -> tuple[RemoteRef, bool]:
        """Make sure ``obj`` has an exported proxy-in; returns (ref, created)."""
        oid = obi_id_of(obj)
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            existing = self._provider_refs[idx].get(oid)
            if existing is not None:
                return existing, False
            interface = interface_of(obj)
            proxy_in = ProxyIn(self, obj)
            ref = self.endpoint.export(proxy_in, interface=interface.name)
            self._provider_refs[idx][oid] = ref
            if oid not in self._replicas[idx]:
                self._masters[idx].setdefault(oid, MasterRecord(obj=obj))
        self.events.publish("provider_exported", site=self, oid=oid, ref=ref)
        return ref, True

    def drop_master(self, oid: str) -> bool:
        """Forget a master record entirely (reachability GC).

        Retracts the proxy-in too.  The Python object itself is
        unaffected — if the application still references it, it lives on
        as plain local state and can be re-exported later.
        """
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            self._retract_provider_locked(idx, oid)
            dropped = self._masters[idx].pop(oid, None) is not None
        self.change_log.drop(oid)
        return dropped

    def iter_masters(self):
        items: list[tuple[str, MasterRecord]] = []
        for idx in range(self.stripe_count):
            with self._stripe_locks[idx]:
                items.extend(self._masters[idx].items())
        items.sort(key=lambda pair: pair[1].seq)
        return iter(items)

    def exported_oids(self) -> list[str]:
        """Oids with a live proxy-in export, in registration order."""
        pairs: list[tuple[int, str]] = []
        for idx in range(self.stripe_count):
            with self._stripe_locks[idx]:
                for oid in self._provider_refs[idx]:
                    record = self._masters[idx].get(oid)
                    pairs.append((record.seq if record is not None else -1, oid))
        pairs.sort()
        return [oid for _seq, oid in pairs]

    def retract_provider(self, oid: str) -> bool:
        """Withdraw an object's proxy-in (distributed-GC reclamation).

        The master record survives — the object is still local state — but
        remote references to the old proxy-in die, exactly like Java RMI's
        "no such object in table" after a DGC lease expires.  A later
        ``ensure_provider_for`` exports a fresh proxy-in.
        """
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            return self._retract_provider_locked(idx, oid)

    def _retract_provider_locked(self, idx: int, oid: str) -> bool:
        ref = self._provider_refs[idx].pop(oid, None)
        if ref is None:
            return False
        self.endpoint.unexport(ref.object_id)
        return True

    def note_master(self, obj: object) -> None:
        """Record ``obj`` as mastered here without exporting a proxy-in.

        Cluster members stay proxy-in-less (the cluster shares its root's
        pair), but their master records must exist so a cluster ``put``
        can find them.
        """
        oid = obi_id_of(obj)
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            if oid not in self._replicas[idx]:
                self._masters[idx].setdefault(oid, MasterRecord(obj=obj))

    @snapshot_read
    def version_of(self, obj: object) -> int:
        oid = obi_id_of(obj)
        idx = self._stripe_of(oid)
        with self._read_guard(idx):
            master = self._masters[idx].get(oid)
            if master is not None:
                return master.version
            replica = self._replicas[idx].get(oid)
            if replica is not None:
                return replica.version
        return 1

    @snapshot_read
    def is_master(self, oid: str) -> bool:
        idx = self._stripe_of(oid)
        with self._read_guard(idx):
            return oid in self._masters[idx]

    @snapshot_read
    def is_replica(self, oid: str) -> bool:
        idx = self._stripe_of(oid)
        with self._read_guard(idx):
            return oid in self._replicas[idx]

    @snapshot_read
    def has_exported(self, oid: str) -> bool:
        idx = self._stripe_of(oid)
        with self._read_guard(idx):
            return oid in self._provider_refs[idx]

    @snapshot_read
    def master_object_for(self, oid: str) -> object | None:
        idx = self._stripe_of(oid)
        with self._read_guard(idx):
            record = self._masters[idx].get(oid)
        return record.obj if record is not None else None

    @snapshot_read
    def master_version(self, master: object) -> int:
        oid = obi_id_of(master)
        idx = self._stripe_of(oid)
        with self._read_guard(idx):
            record = self._masters[idx].get(oid)
        if record is None:
            raise ReplicationError(f"object is not mastered at site {self.name!r}")
        return record.version

    def bump_master_version(self, oid: str) -> int:
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            record = self._masters[idx].get(oid)
            if record is None:
                raise ReplicationError(f"no master {oid!r} at site {self.name!r}")
            record.version += 1
            version = record.version
        self.events.publish("put_applied", site=self, oid=oid, version=version)
        return version

    def adopt_master_version(self, oid: str, version: int) -> int:
        """Raise a mirrored master's version to at least ``version``.

        The feed-apply path: a follower mirrors the primary's version
        numbers instead of minting its own, so versions stay comparable
        across the group.  Monotonic (never lowers), publishes nothing —
        mirrored changes are not local writes.
        """
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            record = self._masters[idx].get(oid)
            if record is None:
                raise ReplicationError(f"no master {oid!r} at site {self.name!r}")
            if version > record.version:
                record.version = version
            return record.version

    def oid_for_export(self, object_id: str) -> str | None:
        """The obi id whose proxy-in is exported as ``object_id``, if any."""
        for idx in range(self.stripe_count):
            with self._stripe_locks[idx]:
                for oid, ref in self._provider_refs[idx].items():
                    if ref.object_id == object_id:
                        return oid
        return None

    # ------------------------------------------------------------------
    # change-feed roles (see repro.feed)
    # ------------------------------------------------------------------
    def feed_primary(self, *, epoch: int | None = None):
        """Attach (and return) a ``FeedPrimary`` role to this site."""
        from repro.feed.primary import FeedPrimary

        return FeedPrimary(self, epoch=epoch)

    def feed_follow(self, primary_site_id: str):
        """Attach a ``FeedFollower`` tailing ``primary_site_id``'s feed.

        Subscribes immediately — catching up incrementally when the
        primary's journal still covers our cursor, bootstrapping from a
        full snapshot otherwise — and returns the follower role.
        """
        from repro.feed.follower import FeedFollower

        follower = FeedFollower(self)
        follower.start(primary_site_id)
        return follower

    @snapshot_read
    def local_object_for(self, oid: str) -> object | None:
        """The master or replica with this identity, if present here.

        The hot fault-path lookup: a snapshot read, lock-free by default.
        A miss is always re-checked under real synchronization (the
        demand path coalesces through :meth:`begin_demand`), so racing a
        concurrent registration at worst costs one extra round trip.
        """
        idx = self._stripe_of(oid)
        with self._read_guard(idx):
            master = self._masters[idx].get(oid)
            if master is not None:
                return master.obj
            replica = self._replicas[idx].get(oid)
            if replica is not None:
                return replica.obj
        return None

    @snapshot_read
    def local_node_for(self, oid: str) -> object | None:
        """Like :meth:`local_object_for`, but also reuses pending proxies."""
        local = self.local_object_for(oid)
        if local is not None:
            return local
        return self._pending_proxies.get(oid)

    @snapshot_read
    def replica_info(self, oid: str) -> ReplicaRecord | None:
        idx = self._stripe_of(oid)
        with self._read_guard(idx):
            return self._replicas[idx].get(oid)

    def iter_replicas(self):
        records: list[ReplicaRecord] = []
        for idx in range(self.stripe_count):
            with self._stripe_locks[idx]:
                records.extend(self._replicas[idx].values())
        records.sort(key=lambda record: record.seq)
        return iter(records)

    def register_replica(self, obj: object, meta: ObjectMeta, mode: ReplicationMode) -> None:
        oid = meta.obi_id
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            self._register_replica_locked(idx, obj, meta, mode)
        if self.delta_sync:
            # The replica is in a just-synced state right now: enroll it
            # (or re-baseline an existing enrollment after a refresh).
            self.dirty_tracker.enroll(obj)

    def _register_replica_locked(
        self, idx: int, obj: object, meta: ObjectMeta, mode: ReplicationMode
    ) -> None:
        oid = meta.obi_id
        existing = self._replicas[idx].get(oid)
        if existing is not None:
            existing.obj = obj
            existing.version = meta.version
            existing.invalidated = False
            if meta.provider is not None:
                existing.provider = meta.provider
                existing.cluster_root = None
            return
        self._replicas[idx][oid] = ReplicaRecord(
            obj=obj,
            provider=meta.provider,
            version=meta.version,
            mode=mode,
            cluster_root=meta.cluster_root,
        )

    def make_proxy_out(
        self, target_id: str, interface_name: str, provider: RemoteRef, mode: ReplicationMode
    ) -> ProxyOutBase:
        entry = compiled_registry.by_interface(interface_name)
        proxy = entry.proxy_out_cls(self, target_id, provider, entry.interface, mode)
        with self._proxies_lock:
            self._pending_proxies[target_id] = proxy
        self.gc_stats.track_created()
        return proxy

    def resolve_fault(self, proxy: ProxyOutBase) -> object:
        # fault_resolved publishes inside faults.resolve_fault, within the
        # fault span, so log subscribers see the trace context.
        return faults.resolve_fault(self, proxy)

    def finish_fault(self, proxy: ProxyOutBase, replica: object) -> None:
        with self._proxies_lock:
            self._pending_proxies.pop(proxy._obi_target_id, None)
        self.gc_stats.track_resolved(proxy)

    # ------------------------------------------------------------------
    # batched-demand fast path (used by repro.core.faults)
    # ------------------------------------------------------------------
    def begin_demand(self, target_id: str) -> tuple[bool, _InflightDemand]:
        """Claim the in-flight demand slot for ``target_id``.

        Returns ``(True, handle)`` when this caller leads the demand and
        must later call :meth:`finish_demand`; ``(False, handle)`` when
        another thread's demand is already on the wire — wait on
        ``handle.event`` and read ``handle.result`` / ``handle.error``.
        """
        idx = self._stripe_of(target_id)
        with self._stripe_locks[idx]:
            existing = self._inflight_demands[idx].get(target_id)
            if existing is not None:
                return False, existing
            handle = _InflightDemand()
            self._inflight_demands[idx][target_id] = handle
            return True, handle

    def finish_demand(
        self,
        target_id: str,
        handle: _InflightDemand,
        *,
        result: object | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Release an in-flight demand slot and wake coalesced waiters."""
        idx = self._stripe_of(target_id)
        with self._stripe_locks[idx]:
            self._inflight_demands[idx].pop(target_id, None)
        handle.result = result
        handle.error = error
        handle.event.set()

    def pending_siblings(self, proxy: ProxyOutBase, *, limit: int) -> list[ProxyOutBase]:
        """Read-ahead candidates for a fault on ``proxy``.

        Unresolved pending proxies that share at least one demander with
        ``proxy`` (the same application object is holding both — the
        paper's frontier of one partial replica) and whose provider lives
        on the same site, so their demands can share the round trip.
        Ordered by target id for determinism; capped at ``limit``.
        """
        if limit <= 0:
            return []
        demander_ids = proxy._obi_demander_ids
        if not demander_ids:
            return []
        provider_site = proxy._obi_provider.site_id
        with self._proxies_lock:
            pending = sorted(self._pending_proxies.items())
        siblings: list[ProxyOutBase] = []
        for _target_id, candidate in pending:
            if candidate is proxy or candidate._obi_resolved is not None:
                continue
            if candidate._obi_provider.site_id != provider_site:
                continue
            if demander_ids & candidate._obi_demander_ids:
                siblings.append(candidate)
                if len(siblings) >= limit:
                    break
        return siblings

    # ------------------------------------------------------------------
    # cost charging
    # ------------------------------------------------------------------
    def charge_serialization(self, nbytes: int) -> None:
        self.clock.advance(nbytes * self.costs.serialize_per_byte_s)

    def charge_pairs(self, count: int) -> None:
        if count:
            self.clock.advance(count * self.costs.proxy_pair_create_s)

    def charge_pair_batch(self, count: int) -> None:
        """The superlinear burst penalty (see CostModel docs)."""
        if count > 1:
            self.clock.advance(count * count * self.costs.pair_batch_quadratic_s)

    def charge_replicas(self, count: int) -> None:
        if count:
            self.clock.advance(count * self.costs.replica_create_s)

    # ------------------------------------------------------------------
    # obicodec negotiation (PR 7)
    # ------------------------------------------------------------------
    def outgoing_mode(self, mode: ReplicationMode) -> ReplicationMode:
        """Stamp the codec announcement onto a consumer-outgoing mode.

        Every ``get``-family request funnels through here so a provider
        learns, per request, whether this consumer decodes compiled
        frames.  Pre-codec providers unpack the extra tuple slot into
        ``*rest`` and ignore it.
        """
        want = 1 if self.compiled_codec else 0
        if mode.codec == want:
            return mode
        return replace(mode, codec=want)

    def _codec_peer_ok(self, provider: RemoteRef | None) -> bool:
        """True when puts to this provider's site may use compiled frames."""
        if not self.compiled_codec or provider is None:
            return False
        return self.peer_caps.assume(provider.site_id, COMPILED_CODEC)

    # ------------------------------------------------------------------
    # delta-sync plumbing (PR 4)
    # ------------------------------------------------------------------
    def _delta_peer_ok(self, provider: RemoteRef | None) -> bool:
        """True unless this provider's site already failed a delta probe."""
        if provider is None:
            return False
        return self.peer_caps.assume(provider.site_id, DELTA_SYNC)

    def _try_put_delta(
        self, provider: RemoteRef, items: "list[tuple[object, DirtySnapshot]]"
    ) -> dict[str, int] | None:
        """One delta put attempt; ``None`` means "use the full path".

        Handles the two downgrade shapes: an unversioned peer (missing
        ``put_delta`` → remembered in :attr:`peer_caps`) and a
        ``NEED_FULL`` answer (version/fingerprint mismatch at the
        master).  On success, commits every snapshot so the dirty sets
        re-baseline, and credits the bytes the full path would have
        shipped.
        """
        package = build_put_delta(
            self, [(replica, snap.fields) for replica, snap in items]
        )
        with self.tracer.span("put_delta", entries=len(items)) as span:
            result = probe(
                self.peer_caps,
                provider.site_id,
                DELTA_SYNC,
                lambda: self.endpoint.invoke(provider, "put_delta", (package,)),
            )
            if result is UNSUPPORTED:
                span.set(outcome="unversioned_peer")
                return None
            if isinstance(result, NeedFull):
                self.sync_stats.add(need_full_downgrades=1)
                span.set(outcome="need_full")
                return None
        if not isinstance(result, dict):
            raise ReplicationError(f"unexpected put_delta reply: {result!r}")
        saved = 0
        for replica, snap in items:
            saved += self._delta_savings(replica, snap.fields)
            self.dirty_tracker.commit(replica, snap)
        self.sync_stats.add(puts_delta=1, delta_bytes_saved=saved)
        return result

    def _try_get_delta(
        self, provider: RemoteRef, replica: object, base_version: int
    ) -> "RefreshDeltaReply | None":
        """One delta refresh attempt; ``None`` means "use the full path"."""
        request = RefreshDeltaRequest(
            obi_id=obi_id_of(replica), base_version=base_version
        )
        with self.tracer.span("get_delta", name=request.obi_id) as span:
            reply = probe(
                self.peer_caps,
                provider.site_id,
                DELTA_SYNC,
                lambda: self.endpoint.invoke(provider, "get_delta", (request,)),
            )
            if reply is UNSUPPORTED:
                span.set(outcome="unversioned_peer")
                return None
            if isinstance(reply, NeedFull):
                self.sync_stats.add(need_full_downgrades=1)
                span.set(outcome="need_full")
                return None
        if not isinstance(reply, RefreshDeltaReply):
            raise ReplicationError(f"unexpected get_delta reply: {reply!r}")
        return reply

    def _rebaseline_after_full_put(
        self, replicas: "list[object]", snaps: "list[DirtySnapshot | None]"
    ) -> None:
        """After a successful full put, the replicas are synced: commit
        captured snapshots (no-op if the object mutated mid-put) and
        enroll anything the tracker had not seen yet."""
        if not self.delta_sync:
            return
        for replica, snap in zip(replicas, snaps):
            if snap is not None:
                self.dirty_tracker.commit(replica, snap)
            else:
                self.dirty_tracker.enroll(replica)

    def _delta_savings(self, replica: object, fields: "frozenset[str]") -> int:
        """Estimated bytes a delta put avoided versus shipping full state."""
        state = vars(replica)
        delta_bytes = sum(
            _value_size(state[name]) for name in fields if name in state
        )
        return max(0, _own_state_size(replica) - delta_bytes)

    # ------------------------------------------------------------------
    # introspection helpers used by the engine's put path
    # ------------------------------------------------------------------
    def _replica_record(self, replica: object) -> ReplicaRecord:
        if not is_obiwan(replica):
            raise ReplicationError(f"{type(replica).__name__} is not an OBIWAN object")
        oid = obi_id_of(replica)
        idx = self._stripe_of(oid)
        with self._stripe_locks[idx]:
            record = self._replicas[idx].get(oid)
        if record is None:
            raise ReplicationError(
                f"object {obi_id_of(replica)!r} is not a replica on site {self.name!r}"
            )
        if record.provider is None:
            raise ClusterError(
                "replica has no individual provider (cluster member); use the cluster root"
            )
        return record

    @snapshot_read
    def master_count(self) -> int:
        """Number of exported masters across every stripe."""
        return sum(len(shard) for shard in self._masters)

    @snapshot_read
    def replica_count(self) -> int:
        """Number of registered replicas across every stripe."""
        return sum(len(shard) for shard in self._replicas)

    @snapshot_read
    def pending_proxy_count(self) -> int:
        """Number of live unresolved proxies on this site."""
        return len(self._pending_proxies)

    def stripe_metrics(self) -> dict[str, int]:
        """Contention counters aggregated over the stripe locks."""
        waits = 0
        max_depth = 0
        for lock in self._stripe_locks:
            waits += lock.waits
            if lock.max_depth > max_depth:
                max_depth = lock.max_depth
        return {
            "stripes": self.stripe_count,
            "acquire_waits": waits,
            "max_depth": max_depth,
        }

    @snapshot_read
    def __repr__(self) -> str:
        return (
            f"Site({self.name!r}, masters={self.master_count()}, "
            f"replicas={self.replica_count()})"
        )


class World:
    """A set of sites wired to one network and one name server."""

    def __init__(
        self,
        network: Network,
        *,
        costs: CostModel | None = None,
        stripes: int | None = None,
    ):
        self.network = network
        self.costs = costs if costs is not None else CostModel.calibrated_2002()
        self.default_stripes = stripes
        self.sites: dict[str, Site] = {}
        self._nameserver_site: str | None = None

    # ------------------------------------------------------------------
    # constructors for the three transports
    # ------------------------------------------------------------------
    @classmethod
    def loopback(
        cls,
        *,
        link: Link = LAN_10MBPS,
        clock: Clock | None = None,
        costs: CostModel | None = None,
        seed: int | None = None,
    ) -> "World":
        """Deterministic simulated-time world (the benchmark default)."""
        network = LoopbackNetwork(
            clock if clock is not None else SimClock(), default_link=link, seed=seed
        )
        return cls(network, costs=costs)

    @classmethod
    def threaded(cls, *, link: Link = LAN_10MBPS, costs: CostModel | None = None) -> "World":
        """Concurrent in-process world on the wall clock."""
        network = ThreadedNetwork(WallClock(), default_link=link)
        return cls(network, costs=costs if costs is not None else CostModel.zero())

    @classmethod
    def tcp(
        cls,
        *,
        link: Link = LAN_10MBPS,
        costs: CostModel | None = None,
        network: str = "pooled",
    ) -> "World":
        """Localhost-TCP world — the closest analogue of RMI over a LAN.

        ``network`` selects the transport: ``"pooled"`` (default) is the
        thread-per-connection compat backend; ``"reactor"`` is the
        single-event-loop obireactor with negotiated frame pipelining.
        """
        if network == "pooled":
            net: Network = TcpNetwork(WallClock(), default_link=link)
        elif network == "reactor":
            net = ReactorNetwork(WallClock(), default_link=link)
        else:
            raise ValueError(
                f"unknown tcp network {network!r}: expected 'pooled' or 'reactor'"
            )
        return cls(net, costs=costs if costs is not None else CostModel.zero())

    @classmethod
    def reactor(cls, *, link: Link = LAN_10MBPS, costs: CostModel | None = None) -> "World":
        """Shorthand for ``World.tcp(network="reactor")``."""
        return cls.tcp(link=link, costs=costs, network="reactor")

    # ------------------------------------------------------------------
    # site management
    # ------------------------------------------------------------------
    def create_site(
        self,
        name: str | None = None,
        *,
        stripes: int | None = None,
        snapshot_reads: bool = True,
    ) -> Site:
        """Attach a new site; the first site created hosts the name server."""
        site_name = name if name is not None else new_site_id()
        if site_name in self.sites:
            raise ReplicationError(f"site {site_name!r} already exists in this world")
        endpoint = RmiEndpoint(
            self.network, site_name, nameserver_site=self._nameserver_site
        )
        if self._nameserver_site is None:
            endpoint.host_nameserver()
            self._nameserver_site = site_name
            # Earlier sites cannot exist (this is the first), so nothing to
            # retrofit; later sites get the pointer at construction.
        site = Site(
            self,
            site_name,
            endpoint,
            stripes=stripes if stripes is not None else self.default_stripes,
            snapshot_reads=snapshot_reads,
        )
        self.sites[site_name] = site
        return site

    @property
    def clock(self) -> Clock:
        return self.network.clock

    def close(self) -> None:
        self.network.close()

    def __enter__(self) -> "World":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"World({type(self.network).__name__}, sites={sorted(self.sites)})"


def _own_state_size(obj: object) -> int:
    """Bytes of one object's own state; OBIWAN references cost a pointer."""
    return sum(_value_size(value) for value in vars(obj).values())


def _value_size(value: object) -> int:
    from repro.core import graphwalk
    from repro.util.sizes import estimate_payload_size

    if graphwalk.is_node(value):
        return 8  # a reference, not the referent
    if isinstance(value, dict):
        return 8 + sum(_value_size(k) + _value_size(v) for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(_value_size(item) for item in value)
    return estimate_payload_size(value)
