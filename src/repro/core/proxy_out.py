"""Proxies-out: the consumer-side stand-ins that detect object faults.

A proxy-out "stands in for an object that is not yet locally replicated"
(paper Section 2).  It implements the target's derived interface; every
interface method triggers the object-fault protocol of Section 2.2:

1. ``demand()`` the target from the provider (its proxy-in);
2. splice the fresh replica into every demander that was holding this
   proxy-out (``updateMember``);
3. forward the original invocation to the replica;
4. become garbage — "from this moment on, BProxyOut is no longer reachable
   and will be reclaimed by the garbage collector".

Non-interface attribute access raises
:class:`~repro.util.errors.EncapsulationError`: objects behind proxies can
only be manipulated through methods, the restriction the paper shares
with ActiveX components and Java Beans.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.interfaces import Interface, ReplicationMode
from repro.rmi.refs import RemoteRef
from repro.util.errors import EncapsulationError, ObjectFaultError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import Site

#: Attributes a proxy-out may hold; everything else is an encapsulation
#: violation by application code.
_INTERNAL_ATTRS = frozenset(
    {
        "_obi_site",
        "_obi_target_id",
        "_obi_provider",
        "_obi_interface",
        "_obi_mode",
        "_obi_demanders",
        "_obi_demander_ids",
        "_obi_resolved",
        "_obi_method_cache",
    }
)


class ProxyOutBase:
    """Common machinery of all generated proxy-out classes."""

    #: Marker consulted by ``isinstance``-free call sites.
    _obi_is_proxy_out = True

    def __init__(
        self,
        site: "Site",
        target_id: str,
        provider: RemoteRef,
        interface: Interface,
        mode: ReplicationMode,
    ):
        object.__setattr__(self, "_obi_site", site)
        object.__setattr__(self, "_obi_target_id", target_id)
        object.__setattr__(self, "_obi_provider", provider)
        object.__setattr__(self, "_obi_interface", interface)
        object.__setattr__(self, "_obi_mode", mode)
        #: Objects currently holding a reference to this proxy-out; the
        #: fault resolver splices the replica into each of them.  The id
        #: set mirrors the list so registration stays O(1) on wide fan-in
        #: graphs (ids are valid while the list holds the strong ref).
        object.__setattr__(self, "_obi_demanders", [])
        object.__setattr__(self, "_obi_demander_ids", set())
        #: The target replica once resolved (``setProvider``/``demand``
        #: bookkeeping collapses to this single field).
        object.__setattr__(self, "_obi_resolved", None)
        #: Bound-method cache for post-resolution forwarding: aliased
        #: references that outlive the splice skip the getattr per call.
        object.__setattr__(self, "_obi_method_cache", {})

    # ------------------------------------------------------------------
    # demander bookkeeping (the paper's setDemander)
    # ------------------------------------------------------------------
    def _obi_add_demander(self, holder: object) -> None:
        ids = self._obi_demander_ids
        if id(holder) not in ids:
            ids.add(id(holder))
            self._obi_demanders.append(holder)

    # ------------------------------------------------------------------
    # the object fault
    # ------------------------------------------------------------------
    def _obi_fault(self, method: str, args: tuple, kwargs: dict) -> object:
        """Resolve the fault (if still unresolved) and forward the call."""
        bound = self._obi_method_cache.get(method)
        if bound is None:
            target = self._obi_resolved
            if target is None:
                site = self._obi_site
                if site is None:
                    raise ObjectFaultError(
                        f"proxy-out for {self._obi_target_id!r} is not attached to a site"
                    )
                target = site.resolve_fault(self)
            bound = getattr(target, method)
            self._obi_method_cache[method] = bound
        return bound(*args, **kwargs)

    # ------------------------------------------------------------------
    # encapsulation enforcement
    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> object:
        # Only reached for attributes not found normally — i.e. state the
        # application tried to touch directly.
        if name.startswith("__") and name.endswith("__"):
            # Keep Python protocols (copy, pickle, inspect) on the normal
            # AttributeError path instead of masking them.
            raise AttributeError(name)
        raise EncapsulationError(
            f"direct access to attribute {name!r} on a proxy-out for interface "
            f"{object.__getattribute__(self, '_obi_interface').name!r}; objects behind "
            "OBIWAN proxies can only be manipulated through interface methods"
        )

    def __setattr__(self, name: str, value: object) -> None:
        if name in _INTERNAL_ATTRS:
            object.__setattr__(self, name, value)
            return
        raise EncapsulationError(
            f"cannot set attribute {name!r} on a proxy-out; replicate the target first"
        )

    def __repr__(self) -> str:
        state = "resolved" if self._obi_resolved is not None else "unresolved"
        return (
            f"<{type(self).__name__} target={self._obi_target_id} "
            f"provider={self._obi_provider} {state}>"
        )


def _make_faulting_method(name: str) -> Callable:
    def method(self: ProxyOutBase, *args: object, **kwargs: object) -> object:
        return self._obi_fault(name, args, kwargs)

    method.__name__ = name
    method.__qualname__ = f"ProxyOut.{name}"
    method.__doc__ = (
        f"Fault-detecting stand-in for {name!r}: replicates the target on "
        "first use, then forwards."
    )
    return method


def make_proxy_out_class(interface: Interface) -> type[ProxyOutBase]:
    """Synthesize the proxy-out class for ``interface``.

    The Java prototype generates ``AProxyOut`` source with obicomp; we
    synthesize the class directly.  Every interface method faults.
    """
    namespace: dict[str, object] = {
        name: _make_faulting_method(name) for name in interface.methods
    }
    namespace["__doc__"] = (
        f"Generated proxy-out for interface {interface.name!r}. "
        "Invoking any interface method resolves the object fault."
    )
    return type(f"{interface.name.lstrip('I')}ProxyOut", (ProxyOutBase,), namespace)
