"""Object-fault resolution (paper Section 2.2, steps 1–6 of ``demand``).

When an interface method is invoked on an unresolved proxy-out:

1. the proxy's provider (the target's proxy-in) is asked to ``demand`` a
   package — replicating "the next *k* objects" under the proxy's mode;
2. the package is integrated locally;
3. every demander that was holding the proxy-out has the fresh replica
   spliced in (``updateMember``) — after which "further invocations …
   will be normal direct invocations with no indirection at all";
4. the proxy-out records its resolution so aliased references still
   forward correctly, and is handed to GC accounting: once application
   references drop, the ordinary garbage collector reclaims it.

The batched fast path (``mode.prefetch > 0``) keeps those semantics but
re-schedules the transfers:

* the demand travels with a widened scope (``mode.demand_scope()``) so
  the provider returns the target plus up to ``prefetch`` read-ahead
  objects of the incremental chunk in the same round trip;
* up to ``prefetch`` *sibling* faults — other pending proxy-outs that
  share a demander with the faulting proxy and live on the same provider
  site — piggyback their own ``demand`` calls on the round trip through
  one :class:`~repro.rmi.protocol.InvokeBatchRequest`;
* concurrent faults on one target coalesce: the first thread becomes the
  demand leader, later threads wait for its package instead of issuing
  duplicate round trips.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import graphwalk
from repro.core.interfaces import UNBOUNDED, ReplicationMode
from repro.core.proxy_out import ProxyOutBase
from repro.core.replication import integrate_package
from repro.util.errors import DisconnectedError, ObjectFaultError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import Site

#: Seconds a coalesced fault waits for the leading demand before giving up.
COALESCE_TIMEOUT_S = 60.0


def resolve_fault(site: "Site", proxy: ProxyOutBase) -> object:
    """Resolve ``proxy`` to a local replica, splicing all demanders.

    The ``fault_resolved`` event publishes *inside* the fault span so
    subscribers (the site logger) observe the causal trace context of the
    resolution that produced the replica.
    """
    if proxy._obi_resolved is not None:
        return _published(site, proxy, proxy._obi_resolved)

    target_id = proxy._obi_target_id
    with site.tracer.span("fault", name=target_id) as fault_span:
        # Another path may already have replicated the target (e.g. a wider
        # cluster fetched it, or a prefetching fault brought it along):
        # short-circuit without touching the network.
        local = site.local_object_for(target_id)
        if local is None:
            local = _demand(site, proxy)
        else:
            fault_span.set(local_hit=True)

        if proxy._obi_resolved is not None:
            # Lost a race: another thread spliced this very proxy while we
            # waited on the coalesced demand.
            return _published(site, proxy, proxy._obi_resolved)
        with site.tracer.span("splice", name=target_id) as splice_span:
            splice_span.set(rewritten=splice(proxy, local))
        site.finish_fault(proxy, local)
        return _published(site, proxy, local)


def _published(site: "Site", proxy: ProxyOutBase, replica: object) -> object:
    site.events.publish("fault_resolved", site=site, proxy=proxy, replica=replica)
    return replica


def _demand(site: "Site", proxy: ProxyOutBase) -> object:
    """One demand round trip, coalesced across concurrent faulting threads."""
    target_id = proxy._obi_target_id
    leader, handle = site.begin_demand(target_id)
    if not leader:
        site.fault_stats.add(oid=target_id, coalesced_faults=1)
        with site.tracer.span("demand.wait", name=target_id, coalesced=True):
            if not handle.event.wait(COALESCE_TIMEOUT_S):
                raise ObjectFaultError(
                    f"timed out waiting for in-flight demand of {target_id!r}"
                )
            if handle.error is not None:
                raise handle.error
            if handle.result is None:
                raise ObjectFaultError(
                    f"in-flight demand for {target_id!r} completed without a replica"
                )
            return handle.result
    with site.tracer.span("demand", name=target_id):
        try:
            local = _demand_over_network(site, proxy)
        except BaseException as exc:
            site.finish_demand(target_id, handle, error=exc)
            raise
        site.finish_demand(target_id, handle, result=local)
        return local


def _demand_over_network(site: "Site", proxy: ProxyOutBase) -> object:
    mode = proxy._obi_mode
    if not mode.prefetch:
        # The paper's protocol, byte for byte: one demand, one package.
        package = _invoke_demand(site, proxy, mode)
        return _integrate_demand(site, proxy, package)

    siblings = _claim_siblings(site, proxy, limit=mode.prefetch)
    stats = site.fault_stats
    if not siblings:
        # No piggyback candidates: still one round trip, but the provider
        # widens the scope to mode.demand_scope() (see ProxyIn.demand).
        package = _invoke_demand(site, proxy, mode)
        stats.add(
            oid=proxy._obi_target_id,
            demands_batched=1,
            prefetch_hits=_read_ahead_count(mode, package),
        )
        return _integrate_demand(site, proxy, package)

    calls = [(proxy._obi_provider, "demand", (site.outgoing_mode(mode),))]
    calls.extend(
        (sibling._obi_provider, "demand", (site.outgoing_mode(sibling._obi_mode),))
        for sibling, _handle in siblings
    )
    try:
        results = site.endpoint.invoke_batch(proxy._obi_provider.site_id, calls)
    except BaseException as exc:
        for sibling, handle in siblings:
            site.finish_demand(sibling._obi_target_id, handle, error=exc)
        raise
    stats.add(oid=proxy._obi_target_id, demands_batched=1)

    primary = results[0]
    if isinstance(primary, BaseException):
        for (sibling, handle), outcome in zip(siblings, results[1:]):
            _finish_sibling(site, sibling, handle, outcome)
        raise primary
    local = _integrate_demand(site, proxy, primary)
    stats.add(oid=proxy._obi_target_id, prefetch_hits=_read_ahead_count(mode, primary))
    for (sibling, handle), outcome in zip(siblings, results[1:]):
        _finish_sibling(site, sibling, handle, outcome)
    return local


def _invoke_demand(site: "Site", proxy: ProxyOutBase, mode: ReplicationMode) -> object:
    try:
        return site.endpoint.invoke(
            proxy._obi_provider, "demand", (site.outgoing_mode(mode),)
        )
    except DisconnectedError:
        raise  # the mobility layer reacts to disconnections specifically
    except ObjectFaultError:
        raise


def _integrate_demand(site: "Site", proxy: ProxyOutBase, package: object) -> object:
    local = integrate_package(site, package)
    if local is None:
        raise ObjectFaultError(
            f"demand for {proxy._obi_target_id!r} returned no replica"
        )
    return local


def _claim_siblings(
    site: "Site", proxy: ProxyOutBase, *, limit: int
) -> list[tuple[ProxyOutBase, object]]:
    """Pending sibling proxies claimed for piggybacking on this demand.

    A sibling shares at least one demander with the faulting proxy (it is
    part of the same frontier the application is walking) and its provider
    lives on the same site, so its demand can share the round trip.  Each
    claimed sibling is registered in-flight so concurrent faults on it
    coalesce onto this batch.
    """
    claimed: list[tuple[ProxyOutBase, object]] = []
    for candidate in site.pending_siblings(proxy, limit=limit):
        leader, handle = site.begin_demand(candidate._obi_target_id)
        if leader:
            claimed.append((candidate, handle))
    return claimed


def _finish_sibling(
    site: "Site", sibling: ProxyOutBase, handle: object, outcome: object
) -> None:
    """Integrate one piggybacked demand result; failures stay local to the
    sibling (it simply remains an unresolved fault for later)."""
    target_id = sibling._obi_target_id
    if isinstance(outcome, BaseException):
        site.finish_demand(target_id, handle, error=outcome)
        return
    try:
        replica = _integrate_demand(site, sibling, outcome)
    except Exception as exc:  # noqa: BLE001 - a bad sibling package stays local
        site.finish_demand(target_id, handle, error=exc)
        return
    site.finish_demand(target_id, handle, result=replica)
    site.fault_stats.add(oid=target_id, prefetch_hits=1)
    if sibling._obi_resolved is None:
        splice(sibling, replica)
        site.finish_fault(sibling, replica)


def _read_ahead_count(mode: ReplicationMode, package: object) -> int:
    """Objects a widened demand carried beyond the mode's own chunk."""
    if mode.clustered or mode.chunk == UNBOUNDED:
        return 0
    return max(0, package.object_count - mode.chunk)


def splice(proxy: ProxyOutBase, replica: object) -> int:
    """The paper's ``updateMember``: replace the proxy-out with the
    replica in every demander; returns the number of rewritten positions."""
    replacements = {id(proxy): replica}
    rewritten = 0
    for holder in proxy._obi_demanders:
        rewritten += graphwalk.replace_references(holder, replacements)
    proxy._obi_resolved = replica
    proxy._obi_demanders.clear()
    proxy._obi_demander_ids.clear()
    return rewritten
