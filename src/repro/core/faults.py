"""Object-fault resolution (paper Section 2.2, steps 1–6 of ``demand``).

When an interface method is invoked on an unresolved proxy-out:

1. the proxy's provider (the target's proxy-in) is asked to ``demand`` a
   package — replicating "the next *k* objects" under the proxy's mode;
2. the package is integrated locally;
3. every demander that was holding the proxy-out has the fresh replica
   spliced in (``updateMember``) — after which "further invocations …
   will be normal direct invocations with no indirection at all";
4. the proxy-out records its resolution so aliased references still
   forward correctly, and is handed to GC accounting: once application
   references drop, the ordinary garbage collector reclaims it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import graphwalk
from repro.core.proxy_out import ProxyOutBase
from repro.core.replication import integrate_package
from repro.util.errors import DisconnectedError, ObjectFaultError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import Site


def resolve_fault(site: "Site", proxy: ProxyOutBase) -> object:
    """Resolve ``proxy`` to a local replica, splicing all demanders."""
    if proxy._obi_resolved is not None:
        return proxy._obi_resolved

    # Another path may already have replicated the target (e.g. a wider
    # cluster fetched it): short-circuit without touching the network.
    local = site.local_object_for(proxy._obi_target_id)
    if local is None:
        try:
            package = site.endpoint.invoke(
                proxy._obi_provider, "demand", (proxy._obi_mode,)
            )
        except DisconnectedError:
            raise  # the mobility layer reacts to disconnections specifically
        except ObjectFaultError:
            raise
        local = integrate_package(site, package)
        if local is None:
            raise ObjectFaultError(
                f"demand for {proxy._obi_target_id!r} returned no replica"
            )

    splice(proxy, local)
    site.finish_fault(proxy, local)
    return local


def splice(proxy: ProxyOutBase, replica: object) -> int:
    """The paper's ``updateMember``: replace the proxy-out with the
    replica in every demander; returns the number of rewritten positions."""
    replacements = {id(proxy): replica}
    rewritten = 0
    for holder in proxy._obi_demanders:
        rewritten += graphwalk.replace_references(holder, replacements)
    proxy._obi_resolved = replica
    proxy._obi_demanders.clear()
    return rewritten
