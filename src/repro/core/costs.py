"""The calibrated cost model.

The paper's absolute numbers come from a 2002 testbed; its *claims* come
from the relative weights of four costs: local invocation, remote
invocation, replica creation/serialization, and proxy-pair creation.  The
middleware charges these against the site clock so that simulated-time
benchmarks reproduce the evaluation's shapes deterministically.

Network transfer time is *not* here — the link model in
:mod:`repro.simnet.link` charges it per frame byte.

Calibration anchors (paper Section 4.1, DESIGN.md Section 2):

* LMI — "the time it takes to make a local method invocation is 2
  microseconds" → :attr:`CostModel.local_invoke_s`.
* RMI — 2.8 ms round trip, absorbed by the LAN link latency.
* Serialization — "the most significant performance cost is data
  serialization (done by the Java virtual machine) and network
  communication"; JDK 1.3-era serialization throughput was a few MB/s →
  0.15 µs/byte ≈ 6.7 MB/s.
* Proxy pairs — "the creation and transference of replicas along with the
  corresponding proxy-in/proxy-out pairs is more significant than object
  invocations": creating, exporting and registering a pair is modelled at
  0.5 ms, which reproduces Figure 5's chunk-size ordering.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CostModel:
    """CPU-side cost constants, in seconds."""

    #: One local method invocation on a replica (paper: 2 µs).
    local_invoke_s: float = 2e-6
    #: Per-byte serialization/deserialization CPU cost (each direction).
    serialize_per_byte_s: float = 0.15e-6
    #: Creating + exporting + registering one proxy-in/proxy-out pair.
    proxy_pair_create_s: float = 0.5e-3
    #: Superlinear penalty for exporting many pairs in one burst, charged
    #: as ``pair_batch_quadratic_s * pairs²`` per package.  Models the
    #: JDK-1.3 behaviour behind Figure 5's "replication of 500 or 1000
    #: objects each time is not efficient": RMI's exported-object table,
    #: distributed-GC lease bookkeeping and young-generation GC pauses all
    #: degrade superlinearly when hundreds of ``UnicastRemoteObject``
    #: exports happen at once on a 128 MB heap.  Cluster replication
    #: creates one pair per batch, so it never pays this term — which is
    #: exactly why Figure 6's curves are flat in cluster size.
    pair_batch_quadratic_s: float = 1.0e-6
    #: Fixed per-object replica materialization cost.
    replica_create_s: float = 50e-6

    @classmethod
    def calibrated_2002(cls) -> "CostModel":
        """The model calibrated to the paper's testbed (the default)."""
        return cls()

    def scaled(self, cpu_factor: float) -> "CostModel":
        """This model on a processor ``cpu_factor``× slower.

        The paper's future work: "We will study how the performance
        numbers depend on the relative speed of the processors involved,
        for example, between a hand-held PC such as Compaq iPaq, and a
        desktop PC."  Scaling multiplies every CPU-bound constant
        (invocation, serialization, proxy creation, burst penalty);
        network costs live in the link model and are unaffected.
        """
        if cpu_factor <= 0:
            raise ValueError("cpu_factor must be positive")
        return CostModel(
            local_invoke_s=self.local_invoke_s * cpu_factor,
            serialize_per_byte_s=self.serialize_per_byte_s * cpu_factor,
            proxy_pair_create_s=self.proxy_pair_create_s * cpu_factor,
            pair_batch_quadratic_s=self.pair_batch_quadratic_s * cpu_factor,
            replica_create_s=self.replica_create_s * cpu_factor,
        )

    @classmethod
    def ipaq_2002(cls) -> "CostModel":
        """A 206 MHz StrongARM hand-held vs a ~500 MHz Pentium III
        desktop: roughly 8× slower on JVM workloads of the era."""
        return cls().scaled(8.0)

    @classmethod
    def zero(cls) -> "CostModel":
        """All-zero model for functional tests that ignore timing."""
        return cls(
            local_invoke_s=0.0,
            serialize_per_byte_s=0.0,
            proxy_pair_create_s=0.0,
            pair_batch_quadratic_s=0.0,
            replica_create_s=0.0,
        )
