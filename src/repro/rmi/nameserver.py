"""The name server.

In the paper's prototypical example, "only object AProxyIn is registered in
a name server, and S1 holds a remote reference to AProxyIn, obtained from a
name server".  The name server here is itself an ordinary exported object
living on a designated site under the well-known id
:data:`NAMESERVER_OBJECT_ID`; any site invokes it through plain RMI.
"""

from __future__ import annotations

from repro.rmi.refs import RemoteRef
from repro.util.errors import NameNotFoundError, ProtocolError

#: Well-known export id of the name server object on its hosting site.
NAMESERVER_OBJECT_ID = "obj:nameserver"

#: Interface methods a name-server stub exposes.
NAMESERVER_METHODS = ("bind", "rebind", "unbind", "lookup", "list_names")


class NameServer:
    """Name → remote reference directory."""

    def __init__(self) -> None:
        self._bindings: dict[str, RemoteRef] = {}

    def bind(self, name: str, ref: RemoteRef) -> None:
        """Register ``name``; rebinding an existing name is an error."""
        if name in self._bindings:
            raise ProtocolError(f"name {name!r} is already bound")
        self._bindings[name] = ref

    def rebind(self, name: str, ref: RemoteRef) -> None:
        """Register ``name``, replacing any existing binding."""
        self._bindings[name] = ref

    def unbind(self, name: str) -> None:
        if name not in self._bindings:
            raise NameNotFoundError(f"name {name!r} is not bound")
        del self._bindings[name]

    def lookup(self, name: str) -> RemoteRef:
        try:
            return self._bindings[name]
        except KeyError:
            raise NameNotFoundError(f"name {name!r} is not bound") from None

    def list_names(self) -> list[str]:
        return sorted(self._bindings)
