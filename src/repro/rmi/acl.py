"""Access control for exported objects.

The OBIWAN platform's journal version (TPDS 2003, with Carlos Ribeiro)
adds a security dimension the workshop paper omits; this module provides
its practical core: **per-exported-object access policies** evaluated
against the calling site's identity.

An :class:`AccessPolicy` is an ordered rule list over (site pattern,
method pattern) with a default; an :class:`AccessGuard` wraps any
exported object (typically a proxy-in) and enforces the policy on every
dispatched method.  Local calls (no remote caller) are never restricted
— security guards the network boundary, not the owner.

Identity here is the transport-level site id, which the in-process
transports make trustworthy by construction; a production deployment
would substitute authenticated channel identities without changing this
layer's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING

from repro.util.errors import SecurityError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rmi.endpoint import RmiEndpoint


@dataclass(frozen=True, slots=True)
class AccessRule:
    """One ordered rule: first match wins."""

    site_pattern: str
    method_pattern: str
    allow: bool

    def matches(self, site: str, method: str) -> bool:
        return fnmatchcase(site, self.site_pattern) and fnmatchcase(
            method, self.method_pattern
        )


@dataclass
class AccessPolicy:
    """Ordered allow/deny rules with a default verdict.

    >>> policy = AccessPolicy().allow("trusted-*").deny("*", "put")
    evaluates rules in the order added; unmatched calls fall through to
    ``default_allow``.
    """

    default_allow: bool = False
    rules: list[AccessRule] = field(default_factory=list)

    def allow(self, sites: str = "*", methods: str = "*") -> "AccessPolicy":
        self.rules.append(AccessRule(sites, methods, allow=True))
        return self

    def deny(self, sites: str = "*", methods: str = "*") -> "AccessPolicy":
        self.rules.append(AccessRule(sites, methods, allow=False))
        return self

    def allows(self, caller: str | None, method: str) -> bool:
        """Evaluate; ``caller is None`` (a local call) is always allowed."""
        if caller is None:
            return True
        for rule in self.rules:
            if rule.matches(caller, method):
                return rule.allow
        return self.default_allow

    @classmethod
    def read_only(cls, *, read_methods: str = "get*") -> "AccessPolicy":
        """Everyone may fetch (``get``/``get_version``/``demand``) but
        nobody may ``put`` — public reference data."""
        policy = cls(default_allow=False)
        policy.allow("*", read_methods)
        policy.allow("*", "demand")
        return policy

    @classmethod
    def sites_only(cls, *patterns: str) -> "AccessPolicy":
        """Full access for the named site patterns, nothing for others."""
        policy = cls(default_allow=False)
        for pattern in patterns:
            policy.allow(pattern, "*")
        return policy


class AccessGuard:
    """Policy-enforcing wrapper around an exported object.

    Export the guard in place of the target; every dispatched method
    resolves through :meth:`__getattr__`, which checks the policy against
    the endpoint's current remote caller before handing out the bound
    method.
    """

    def __init__(self, endpoint: "RmiEndpoint", target: object, policy: AccessPolicy):
        # Plain attribute writes; __getattr__ only fires for misses.
        self._endpoint = endpoint
        self._target = target
        self._policy = policy
        self.denials = 0

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        caller = self._endpoint.current_caller
        if not self._policy.allows(caller, name):
            self.__dict__["denials"] += 1
            raise SecurityError(
                f"site {caller!r} is not allowed to call {name!r} on this object"
            )
        return getattr(self._target, name)

    def __repr__(self) -> str:
        return f"<AccessGuard around {type(self._target).__name__}, {self.denials} denials>"
