"""Remote references.

A :class:`RemoteRef` is the wire-safe identity of an exported object:
which site it lives on, its object id in that site's export table, and the
name of the interface it exposes (so a receiving site can build a stub
without further round trips).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serial.registry import global_registry


@dataclass(frozen=True, slots=True)
class RemoteRef:
    """Identity of a remotely-invocable object."""

    site_id: str
    object_id: str
    interface: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.interface})" if self.interface else ""
        return f"{self.object_id}@{self.site_id}{suffix}"


def _ref_state(ref: object) -> object:
    assert isinstance(ref, RemoteRef)
    return (ref.site_id, ref.object_id, ref.interface)


def _ref_factory() -> object:
    return RemoteRef.__new__(RemoteRef)


def _ref_set_state(ref: object, state: object) -> None:
    site_id, object_id, interface = state  # type: ignore[misc]
    object.__setattr__(ref, "site_id", site_id)
    object.__setattr__(ref, "object_id", object_id)
    object.__setattr__(ref, "interface", interface)


global_registry.register(
    RemoteRef,
    name="rmi.RemoteRef",
    get_state=_ref_state,
    set_state=_ref_set_state,
    factory=_ref_factory,
)
