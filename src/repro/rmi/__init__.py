"""Remote method invocation substrate.

The Python equivalent of the Java RMI machinery the OBIWAN prototype sits
on: remote references, an exported-object table with skeleton dispatch,
dynamic client stubs and a name server.

A :class:`~repro.rmi.endpoint.RmiEndpoint` binds one site to a network and
gives it:

* ``export(obj)``      — make a local object remotely invocable,
* ``invoke(ref, ...)`` — call a method on a remote object,
* ``stub(ref, methods)`` — a callable proxy with the interface's methods,
* ``naming``           — the world's name server, itself a remote object.
"""

from repro.rmi.endpoint import RmiEndpoint
from repro.rmi.nameserver import NAMESERVER_OBJECT_ID, NameServer
from repro.rmi.protocol import InvokeFailure, InvokeRequest, InvokeSuccess
from repro.rmi.refs import RemoteRef
from repro.rmi.skeleton import ObjectTable
from repro.rmi.stub import Stub, make_stub

__all__ = [
    "RemoteRef",
    "ObjectTable",
    "Stub",
    "make_stub",
    "NameServer",
    "NAMESERVER_OBJECT_ID",
    "RmiEndpoint",
    "InvokeRequest",
    "InvokeSuccess",
    "InvokeFailure",
]
