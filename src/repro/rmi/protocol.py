"""The invocation protocol: what travels inside transport payloads.

Five frame bodies, all ordinary registered classes:

* :class:`InvokeRequest` — target object id, method name, arguments;
* :class:`InvokeSuccess` — the return value;
* :class:`InvokeFailure` — a structured description of a remote exception;
* :class:`InvokeBatchRequest` / :class:`InvokeBatchResponse` — several
  invocations on one destination site sharing a single network round
  trip (the batched-demand fast path of the fault resolver).  Each
  batched call succeeds or fails independently.

Failures carry the exception's wire name so well-known middleware
exceptions (``NameNotFoundError``, ``DisconnectedError``, …) re-raise as
their own types at the caller, while arbitrary application exceptions
surface as :class:`~repro.util.errors.RemoteError` — the same split Java
RMI makes between declared exceptions and ``RemoteException``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serial.registry import global_registry
from repro.util import errors
from repro.util.errors import RemoteError


@dataclass(slots=True)
class InvokeRequest:
    """A method call on an exported object.

    ``trace`` is optional causal-trace context — the caller's
    ``(trace_id, span_id)`` from :mod:`repro.obs.context` — and follows
    the prefetch wire-compat precedent: requests without it serialize to
    the legacy 4-tuple (byte-identical to pre-tracing peers), requests
    carrying it widen to a 5-tuple that old decoders never see because
    untraced callers never stamp it.
    """

    object_id: str
    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    trace: tuple | None = None

    def __getstate__(self) -> object:
        if self.trace is None:
            return (self.object_id, self.method, self.args, self.kwargs)
        return (self.object_id, self.method, self.args, self.kwargs, self.trace)

    def __setstate__(self, state: object) -> None:
        if len(state) == 4:  # type: ignore[arg-type]
            self.object_id, self.method, self.args, self.kwargs = state  # type: ignore[misc]
            self.trace = None
        else:
            (
                self.object_id,
                self.method,
                self.args,
                self.kwargs,
                self.trace,
            ) = state  # type: ignore[misc]


@dataclass(slots=True)
class InvokeSuccess:
    """A normal return."""

    value: object = None

    def __getstate__(self) -> object:
        return self.value

    def __setstate__(self, state: object) -> None:
        self.value = state


@dataclass(slots=True)
class InvokeFailure:
    """A remote exception, flattened for the wire."""

    error_name: str = ""
    message: str = ""
    remote_traceback: str = ""

    def __getstate__(self) -> object:
        return (self.error_name, self.message, self.remote_traceback)

    def __setstate__(self, state: object) -> None:
        self.error_name, self.message, self.remote_traceback = state  # type: ignore[misc]

    @classmethod
    def from_exception(cls, exc: BaseException, traceback_text: str = "") -> "InvokeFailure":
        return cls(
            error_name=type(exc).__name__,
            message=str(exc),
            remote_traceback=traceback_text,
        )

    def to_exception(self) -> BaseException:
        """The local exception this failure reconstructs to.

        Middleware exceptions from :mod:`repro.util.errors` reconstruct as
        their own type; anything else becomes :class:`RemoteError`.
        """
        error_cls = _WELL_KNOWN.get(self.error_name)
        if error_cls is not None:
            return error_cls(self.message)
        return RemoteError(
            f"remote invocation failed: {self.error_name}: {self.message}",
            remote_type=self.error_name,
            remote_traceback=self.remote_traceback,
        )

    def raise_(self) -> "NoReturn":  # type: ignore[name-defined]  # noqa: F821
        """Re-raise at the caller."""
        raise self.to_exception()


@dataclass(slots=True)
class InvokeBatchRequest:
    """Several invocations for one destination site, one round trip."""

    requests: list[InvokeRequest] = field(default_factory=list)

    def __getstate__(self) -> object:
        return self.requests

    def __setstate__(self, state: object) -> None:
        self.requests = state  # type: ignore[assignment]


@dataclass(slots=True)
class InvokeBatchResponse:
    """Positional results for an :class:`InvokeBatchRequest` — each an
    :class:`InvokeSuccess` or :class:`InvokeFailure`, aligned with the
    request list."""

    results: list = field(default_factory=list)

    def __getstate__(self) -> object:
        return self.results

    def __setstate__(self, state: object) -> None:
        self.results = state  # type: ignore[assignment]


@dataclass(slots=True)
class NeedFull:
    """Control reply: a delta-encoded request cannot be applied here.

    Returned (not raised) by the delta put/refresh verbs when the
    receiver must see full state — base version mismatch, fingerprint
    divergence, or missing delta history.  Travelling as an ordinary
    return value keeps the downgrade on the normal success path: the
    consumer reissues the legacy full-state operation and both sides
    converge.
    """

    reason: str = ""

    def __getstate__(self) -> object:
        return self.reason

    def __setstate__(self, state: object) -> None:
        self.reason = state  # type: ignore[assignment]


#: Middleware exception types that cross the wire losslessly.
_WELL_KNOWN: dict[str, type[BaseException]] = {
    name: obj
    for name, obj in vars(errors).items()
    if isinstance(obj, type)
    and issubclass(obj, errors.ObiwanError)
    and obj is not errors.ObiwanError
}


for _protocol_cls, _wire_name in (
    (InvokeRequest, "rmi.InvokeRequest"),
    (InvokeSuccess, "rmi.InvokeSuccess"),
    (InvokeFailure, "rmi.InvokeFailure"),
    (InvokeBatchRequest, "rmi.InvokeBatchRequest"),
    (InvokeBatchResponse, "rmi.InvokeBatchResponse"),
    (NeedFull, "rmi.NeedFull"),
):
    global_registry.register(_protocol_cls, name=_wire_name)
