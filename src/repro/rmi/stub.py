"""Client-side stubs.

A :class:`Stub` is a dynamically generated proxy whose methods forward to
:meth:`RmiEndpoint.invoke`.  The Java prototype gets stubs from the RMI
compiler; we synthesize a class per interface at run time — the same trick
obicomp plays one level up for proxies-out.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.rmi.refs import RemoteRef

#: ``invoke(ref, method, args, kwargs)`` provided by the endpoint.
Invoker = Callable[[RemoteRef, str, tuple, dict], object]


class Stub:
    """Base class for generated stubs (useful for ``isinstance`` checks)."""

    _obiwan_stub = True

    def __init__(self, invoker: Invoker, ref: RemoteRef):
        self._invoker = invoker
        self._ref = ref

    @property
    def remote_ref(self) -> RemoteRef:
        return self._ref

    def __repr__(self) -> str:
        return f"<stub for {self._ref}>"


def _make_method(name: str) -> Callable:
    def method(self: Stub, *args: object, **kwargs: object) -> object:
        return self._invoker(self._ref, name, args, kwargs)

    method.__name__ = name
    method.__qualname__ = f"Stub.{name}"
    method.__doc__ = f"Remote invocation of {name!r} via RMI."
    return method


_stub_class_cache: dict[tuple[str, tuple[str, ...]], type[Stub]] = {}


def make_stub(
    invoker: Invoker,
    ref: RemoteRef,
    methods: Sequence[str],
    *,
    interface_name: str | None = None,
) -> Stub:
    """Build a stub exposing ``methods`` for the remote object ``ref``.

    Stub classes are cached per (interface name, method tuple) so repeated
    lookups of the same interface don't re-synthesize the class.
    """
    name = interface_name or ref.interface or "Anonymous"
    key = (name, tuple(sorted(methods)))
    stub_cls = _stub_class_cache.get(key)
    if stub_cls is None:
        namespace: dict[str, object] = {m: _make_method(m) for m in key[1]}
        namespace["__doc__"] = f"RMI stub for interface {name!r}."
        stub_cls = type(f"{name}Stub", (Stub,), namespace)
        _stub_class_cache[key] = stub_cls
    return stub_cls(invoker, ref)
