"""One site's RMI endpoint: serializer + object table + network binding.

The endpoint is where the layers meet:

* inbound transport frames decode into
  :class:`~repro.rmi.protocol.InvokeRequest` and dispatch through the
  site's :class:`~repro.rmi.skeleton.ObjectTable`;
* outbound :meth:`invoke` calls encode, travel, and re-raise remote
  failures locally;
* swizzle hooks are pluggable so the replication layer above can intercept
  object references crossing the wire.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

from repro.obs.context import NULL_TRACER, activate, current, deactivate
from repro.rmi.nameserver import (
    NAMESERVER_METHODS,
    NAMESERVER_OBJECT_ID,
    NameServer,
)
from repro.rmi.protocol import (
    InvokeBatchRequest,
    InvokeBatchResponse,
    InvokeFailure,
    InvokeRequest,
    InvokeSuccess,
)
from repro.rmi.refs import RemoteRef
from repro.rmi.skeleton import ObjectTable
from repro.rmi.stub import Stub, make_stub
from repro.serial.decoder import Decoder
from repro.serial.encoder import Encoder
from repro.serial.registry import TypeRegistry, global_registry
from repro.serial.swizzle import Swizzler, Unswizzler
from repro.simnet.message import Message
from repro.simnet.network import Network
from repro.util.errors import ProtocolError


class RmiEndpoint:
    """Binds one site id to a network and provides RMI semantics."""

    def __init__(
        self,
        network: Network,
        site_id: str,
        *,
        registry: TypeRegistry | None = None,
        nameserver_site: str | None = None,
    ):
        self.site_id = site_id
        self.network = network
        self.registry = registry if registry is not None else global_registry
        self.objects = ObjectTable(site_id)
        self._swizzler: Swizzler | None = None
        self._unswizzler: Unswizzler | None = None
        self._caller = threading.local()
        #: Causal tracer shared with the owning site; ``NULL_TRACER``
        #: (pure no-ops) until ``Site.enable_tracing`` swaps a live one in.
        self.tracer = NULL_TRACER
        self._endpoint = network.attach(site_id, self._handle_frame)
        #: Which site hosts the name server; defaults to this site if it
        #: hosts one (see :meth:`host_nameserver`).
        self.nameserver_site = nameserver_site

    # ------------------------------------------------------------------
    # swizzle hooks (installed by the replication layer)
    # ------------------------------------------------------------------
    def set_swizzle_hooks(self, swizzler: Swizzler | None, unswizzler: Unswizzler | None) -> None:
        self._swizzler = swizzler
        self._unswizzler = unswizzler

    def _encoder(self) -> Encoder:
        return Encoder(self.registry, self._swizzler)

    def _decoder(self) -> Decoder:
        return Decoder(self.registry, self._unswizzler)

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def export(self, obj: object, *, object_id: str | None = None, interface: str = "") -> RemoteRef:
        """Make ``obj`` remotely invocable on this site."""
        return self.objects.export(obj, object_id=object_id, interface=interface)

    def unexport(self, object_id: str) -> None:
        self.objects.unexport(object_id)

    @property
    def current_caller(self) -> str | None:
        """The site id of the remote caller being served on this thread,
        or ``None`` outside a dispatch (i.e. for local invocations)."""
        return getattr(self._caller, "site", None)

    def _handle_frame(self, message: Message) -> bytes | None:
        body = self._decoder().decode(message.payload)
        self._caller.site = message.src
        try:
            if isinstance(body, InvokeRequest):
                result: object = self._dispatch_traced(body, caller=message.src)
            elif isinstance(body, InvokeBatchRequest):
                result = InvokeBatchResponse(
                    results=[
                        self._dispatch_traced(request, caller=message.src)
                        for request in body.requests
                    ]
                )
            else:
                raise ProtocolError(
                    f"site {self.site_id!r} received unexpected frame body "
                    f"{type(body).__name__}"
                )
        finally:
            self._caller.site = None
        return self._encoder().encode(result)

    def _dispatch_traced(self, request: InvokeRequest, *, caller: str) -> object:
        """Dispatch one inbound request under its wire trace context.

        Untraced requests (``trace is None``, the common case) go straight
        to the object table.  Traced ones get the caller's context
        installed for the duration of dispatch — so spans this dispatch
        creates, and any context it forwards downstream, parent correctly
        across sites — plus a local ``rmi.serve`` span when this site is
        itself tracing.
        """
        trace = request.trace
        if trace is None:
            return self.objects.dispatch(request)
        token = activate(trace[0], trace[1])
        try:
            with self.tracer.span(
                "rmi.serve", name=request.method, src=caller
            ) as span:
                result = self.objects.dispatch(request)
                if isinstance(result, InvokeFailure):
                    span.set(error=result.error_name)
                return result
        finally:
            deactivate(token)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def invoke(self, ref: RemoteRef, method: str, args: tuple = (), kwargs: dict | None = None) -> object:
        """Call ``method`` on the remote object behind ``ref``.

        Local refs short-circuit through the local object table — the same
        optimisation the JVM applies to colocated RMI — but still go
        through dispatch so failure semantics are identical.
        """
        request = InvokeRequest(
            object_id=ref.object_id, method=method, args=args, kwargs=kwargs or {}
        )
        if ref.site_id == self.site_id:
            result = self.objects.dispatch(request)
        else:
            with self.tracer.span(
                "rmi.invoke", name=method, dst=ref.site_id
            ) as span:
                request.trace = current()
                payload = self._encoder().encode(request)
                response_payload = self._endpoint.call(ref.site_id, payload)
                result = self._decoder().decode(response_payload)
                if isinstance(result, InvokeFailure):
                    span.set(error=result.error_name)
        if isinstance(result, InvokeSuccess):
            return result.value
        if isinstance(result, InvokeFailure):
            result.raise_()
        raise ProtocolError(
            f"invocation of {method!r} on {ref} returned unexpected body "
            f"{type(result).__name__}"
        )

    def invoke_async(
        self, ref: RemoteRef, method: str, args: tuple = (), kwargs: dict | None = None
    ) -> "InvokeFuture":
        """Start a remote invocation without waiting for its result.

        Returns an :class:`InvokeFuture` whose :meth:`~InvokeFuture.result`
        blocks (and re-raises remote failures) exactly like
        :meth:`invoke`.  On a pipelining transport many futures share one
        multiplexed connection; on every other transport the request
        completes synchronously before this returns, so semantics are
        identical either way.  Local refs dispatch immediately.
        """
        request = InvokeRequest(
            object_id=ref.object_id, method=method, args=args, kwargs=kwargs or {}
        )
        if ref.site_id == self.site_id:
            return InvokeFuture._settled(self, self.objects.dispatch(request), method, ref)
        with self.tracer.span("rmi.invoke", name=method, dst=ref.site_id):
            request.trace = current()
            payload = self._encoder().encode(request)
            pending = self._endpoint.submit(ref.site_id, payload)
        return InvokeFuture(self, pending, method, ref)

    def invoke_batch(
        self, site_id: str, calls: Sequence[tuple[RemoteRef, str, tuple]]
    ) -> list[object]:
        """Run several invocations against ``site_id`` in one round trip.

        ``calls`` is a sequence of ``(ref, method, args)`` triples whose
        refs must all live on ``site_id``.  Returns a list aligned with
        ``calls``: the return value for calls that succeeded, the
        reconstructed exception *instance* for calls that failed — batched
        calls fail independently, so one bad entry never poisons the rest.
        Local refs short-circuit through the object table like
        :meth:`invoke`.

        On a transport that pipelines frames to ``site_id``, the batch is
        fanned out as one in-flight request per call instead of a single
        batch frame: the server dispatches entries concurrently across
        its worker pool and answers in completion order, while the
        one-frame ``InvokeBatchRequest`` path remains the shape every
        other peer sees.
        """
        if not calls:
            return []
        requests = []
        for ref, method, args in calls:
            if ref.site_id != site_id:
                raise ProtocolError(
                    f"batched call targets {ref.site_id!r}, expected {site_id!r}; "
                    "a batch shares one destination site"
                )
            requests.append(InvokeRequest(object_id=ref.object_id, method=method, args=args))
        if site_id == self.site_id:
            results: list = [self.objects.dispatch(request) for request in requests]
        elif len(requests) > 1 and self._endpoint.supports_pipelining(site_id):
            results = self._invoke_batch_pipelined(site_id, requests)
        else:
            with self.tracer.span(
                "rmi.invoke_batch", dst=site_id, calls=len(requests)
            ):
                context = current()
                if context is not None:
                    for request in requests:
                        request.trace = context
                payload = self._encoder().encode(InvokeBatchRequest(requests=requests))
                response_payload = self._endpoint.call(site_id, payload)
                decoded = self._decoder().decode(response_payload)
            if not isinstance(decoded, InvokeBatchResponse) or len(decoded.results) != len(requests):
                raise ProtocolError(
                    f"batched invocation on {site_id!r} returned unexpected body "
                    f"{type(decoded).__name__}"
                )
            results = decoded.results
        outcomes: list[object] = []
        for result in results:
            if isinstance(result, InvokeSuccess):
                outcomes.append(result.value)
            elif isinstance(result, InvokeFailure):
                outcomes.append(result.to_exception())
            else:
                raise ProtocolError(
                    f"batched invocation returned unexpected entry {type(result).__name__}"
                )
        return outcomes

    def _invoke_batch_pipelined(
        self, site_id: str, requests: list[InvokeRequest]
    ) -> list:
        """Fan a batch out as pipelined single-invoke frames.

        All frames are submitted before any result is awaited, so the
        whole batch is in flight on one multiplexed connection at once.
        Failure semantics match the single-frame batch: remote
        invocation failures come back as :class:`InvokeFailure` entries,
        a transport failure raises.
        """
        with self.tracer.span(
            "rmi.invoke_batch", dst=site_id, calls=len(requests), pipelined=True
        ):
            context = current()
            encoder_payloads = []
            for request in requests:
                if context is not None:
                    request.trace = context
                encoder_payloads.append(self._encoder().encode(request))
            pendings = [
                self._endpoint.submit(site_id, payload) for payload in encoder_payloads
            ]
            results = []
            for pending in pendings:
                results.append(self._decoder().decode(pending.result()))
        return results

    def invoke_oneway(self, ref: RemoteRef, method: str, args: tuple = (), kwargs: dict | None = None) -> None:
        """Fire-and-forget invocation (update dissemination, invalidations).

        The remote method runs, but its result — and any exception — is
        discarded.  Local refs dispatch immediately.
        """
        request = InvokeRequest(
            object_id=ref.object_id, method=method, args=args, kwargs=kwargs or {}
        )
        if ref.site_id == self.site_id:
            self.objects.dispatch(request)
            return
        with self.tracer.span(
            "rmi.oneway", name=method, dst=ref.site_id
        ):
            request.trace = current()
            payload = self._encoder().encode(request)
            self._endpoint.cast(ref.site_id, payload)

    def stub(self, ref: RemoteRef, methods: Sequence[str], *, interface_name: str | None = None) -> Stub:
        """Build a client stub for ``ref`` exposing ``methods``."""
        return make_stub(self._invoker, ref, methods, interface_name=interface_name)

    def _invoker(self, ref: RemoteRef, method: str, args: tuple, kwargs: dict) -> object:
        return self.invoke(ref, method, args, kwargs)

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def host_nameserver(self) -> NameServer:
        """Create and export a name server on this site."""
        server = NameServer()
        self.objects.export(server, object_id=NAMESERVER_OBJECT_ID, interface="INameServer")
        self.nameserver_site = self.site_id
        return server

    @property
    def naming(self) -> Stub:
        """A stub on the world's name server."""
        if self.nameserver_site is None:
            raise ProtocolError(
                f"site {self.site_id!r} knows no name-server site; "
                "host one with host_nameserver() or pass nameserver_site="
            )
        ref = RemoteRef(
            site_id=self.nameserver_site,
            object_id=NAMESERVER_OBJECT_ID,
            interface="INameServer",
        )
        return self.stub(ref, NAMESERVER_METHODS)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    @property
    def clock(self):
        return self.network.clock

    def close(self) -> None:
        self.network.detach(self.site_id)

    def __repr__(self) -> str:
        return f"RmiEndpoint({self.site_id!r}, {len(self.objects)} exported)"


class InvokeFuture:
    """Handle on an in-flight remote invocation (see ``invoke_async``)."""

    def __init__(self, endpoint: RmiEndpoint, pending, method: str, ref: RemoteRef):
        self._rmi = endpoint
        self._pending = pending
        self._method = method
        self._ref = ref
        self._local_result: object | None = None

    @classmethod
    def _settled(
        cls, endpoint: RmiEndpoint, result: object, method: str, ref: RemoteRef
    ) -> "InvokeFuture":
        """A future for a local dispatch that already ran."""
        future = cls(endpoint, None, method, ref)
        future._local_result = result
        return future

    def done(self) -> bool:
        return self._pending is None or self._pending.done()

    def cancel(self) -> bool:
        """Abandon the invocation; only this request is poisoned."""
        return False if self._pending is None else self._pending.cancel()

    def result(self, timeout: float | None = None) -> object:
        """The invocation's return value; re-raises remote failures
        locally, exactly like :meth:`RmiEndpoint.invoke`."""
        if self._pending is None:
            body = self._local_result
        else:
            body = self._rmi._decoder().decode(self._pending.result(timeout))
        if isinstance(body, InvokeSuccess):
            return body.value
        if isinstance(body, InvokeFailure):
            body.raise_()
        raise ProtocolError(
            f"invocation of {self._method!r} on {self._ref} returned unexpected "
            f"body {type(body).__name__}"
        )

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"InvokeFuture({self._method!r} on {self._ref.site_id!r}, {state})"
