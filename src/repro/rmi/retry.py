"""Retry policies for transient transport failures.

The paper's environment drops frames ("slow and unreliable
connections"), and the middleware deliberately surfaces transport loss
as :class:`~repro.util.errors.TransportError` rather than retrying
silently.  Applications that *do* want retries wrap an endpoint with a
:class:`RetryingInvoker` and a policy:

* :class:`NoRetry` — the default behaviour, made explicit;
* :class:`FixedRetry` — up to N attempts, fixed pause;
* :class:`BackoffRetry` — exponential backoff with a cap.

Disconnections are **never** retried: a :class:`DisconnectedError` is a
semantic signal (the mobility layer's fallback trigger), not noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rmi.refs import RemoteRef
from repro.util.errors import DisconnectedError, TransportError


@dataclass(frozen=True, slots=True)
class NoRetry:
    """Fail on the first transport error."""

    def delays(self):  # pragma: no cover - trivially empty
        return iter(())


@dataclass(frozen=True, slots=True)
class FixedRetry:
    """Up to ``attempts`` extra tries, ``pause_s`` apart."""

    attempts: int = 3
    pause_s: float = 0.050

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.pause_s < 0:
            raise ValueError("pause must be >= 0")

    def delays(self):
        return iter([self.pause_s] * self.attempts)


@dataclass(frozen=True, slots=True)
class BackoffRetry:
    """Exponential backoff: pause, 2·pause, 4·pause … capped."""

    attempts: int = 5
    base_s: float = 0.010
    cap_s: float = 1.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise ValueError("need 0 < base <= cap")

    def delays(self):
        delay = self.base_s
        for _ in range(self.attempts):
            yield min(delay, self.cap_s)
            delay *= 2


class RetryingInvoker:
    """Wraps an RMI endpoint's invoke with a retry policy.

    Pauses charge the endpoint's clock (simulated time in benchmarks,
    no-op wall clock otherwise), so retry cost is visible to the cost
    model like everything else.
    """

    def __init__(self, endpoint, policy=None):
        self.endpoint = endpoint
        self.policy = policy if policy is not None else NoRetry()
        self.attempts_made = 0
        self.retries_used = 0

    def invoke(self, ref: RemoteRef, method: str, args: tuple = (), kwargs: dict | None = None):
        delays = self.policy.delays()
        while True:
            self.attempts_made += 1
            try:
                return self.endpoint.invoke(ref, method, args, kwargs)
            except DisconnectedError:
                raise  # semantic, never retried
            except TransportError as error:
                pause = next(delays, None)
                if pause is None:
                    raise error
                self.retries_used += 1
                self.endpoint.clock.advance(pause)

    def stub(self, ref: RemoteRef, methods, *, interface_name: str | None = None):
        """A stub whose calls go through this retrying invoke."""
        from repro.rmi.stub import make_stub

        return make_stub(
            lambda r, m, a, k: self.invoke(r, m, a, k),
            ref,
            methods,
            interface_name=interface_name,
        )
