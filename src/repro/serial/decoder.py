"""Wire-format decoder — the inverse of :mod:`repro.serial.encoder`.

Objects are materialized with their registered factory *before* their
state is decoded, and registered in the memo immediately, so cyclic graphs
rebuild correctly.  Swizzled descriptors are handed to the unswizzler
(the replication layer), which typically returns a freshly built
proxy-out.
"""

from __future__ import annotations

import struct

from repro.serial import tags
from repro.serial.encoder import _LAZY_GUARD_DEPTH, _RecursionGuard
from repro.serial.registry import TypeRegistry, global_registry
from repro.serial.swizzle import NullSwizzler, SwizzleDescriptor, Unswizzler
from repro.util.errors import SerializationError

_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")


class Decoder:
    """Decodes wire frames produced by :class:`repro.serial.Encoder`."""

    def __init__(
        self,
        registry: TypeRegistry | None = None,
        unswizzler: Unswizzler | None = None,
        *,
        max_depth: int = 50_000,
    ):
        self.registry = registry if registry is not None else global_registry
        self.unswizzler = unswizzler if unswizzler is not None else NullSwizzler()
        self.max_depth = max_depth

    def decode(self, data: bytes) -> object:
        reader = _Reader(data)
        # Decoding nests as deeply as encoding did; see the encoder's
        # _RecursionGuard for rationale (and why it arms lazily).
        with _RecursionGuard(self.max_depth) as guard:
            value = self._read(reader, memo=[], depth=0, guard=guard)
        if not reader.exhausted:
            raise SerializationError(
                f"trailing garbage after frame: {reader.remaining} bytes unread"
            )
        return value

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _read(
        self, reader: "_Reader", memo: list[object], depth: int, guard: "_RecursionGuard"
    ) -> object:
        if depth >= _LAZY_GUARD_DEPTH and not guard.armed:
            guard.ensure()
        tag = reader.u8()
        if tag == tags.NONE:
            return None
        if tag == tags.TRUE:
            return True
        if tag == tags.FALSE:
            return False
        if tag == tags.INT:
            length = reader.u8()
            return int.from_bytes(reader.take(length), "big", signed=True)
        if tag == tags.FLOAT:
            return _F64.unpack(reader.take(8))[0]
        if tag == tags.STR:
            return reader.take(reader.u32()).decode("utf-8")
        if tag == tags.BYTES:
            return reader.take(reader.u32())
        if tag == tags.REF:
            index = reader.u32()
            try:
                return memo[index]
            except IndexError:
                raise SerializationError(f"dangling back-reference #{index}") from None
        if tag == tags.LIST:
            out: list[object] = []
            memo.append(out)
            for _ in range(reader.u32()):
                out.append(self._read(reader, memo, depth + 1, guard))
            return out
        if tag == tags.TUPLE:
            # Tuples are immutable: decode into a placeholder slot, then
            # patch the memo.  Self-referential tuples cannot be built in
            # Python either, so an inner REF to an under-construction tuple
            # is a sender bug and surfaces as a placeholder leak.
            slot = len(memo)
            memo.append(_PENDING)
            items = tuple(self._read(reader, memo, depth + 1, guard) for _ in range(reader.u32()))
            memo[slot] = items
            return items
        if tag == tags.SET:
            slot = len(memo)
            memo.append(_PENDING)
            items = {self._read(reader, memo, depth + 1, guard) for _ in range(reader.u32())}
            memo[slot] = items
            return items
        if tag == tags.FROZENSET:
            slot = len(memo)
            memo.append(_PENDING)
            items = frozenset(self._read(reader, memo, depth + 1, guard) for _ in range(reader.u32()))
            memo[slot] = items
            return items
        if tag == tags.DICT:
            mapping: dict[object, object] = {}
            memo.append(mapping)
            for _ in range(reader.u32()):
                key = self._read(reader, memo, depth + 1, guard)
                mapping[key] = self._read(reader, memo, depth + 1, guard)
            return mapping
        if tag == tags.OBJECT:
            name = reader.take(reader.u32()).decode("utf-8")
            entry = self.registry.lookup_name(name)
            instance = entry.factory()
            memo.append(instance)
            state = self._read(reader, memo, depth + 1, guard)
            entry.set_state(instance, state)
            return instance
        if tag == tags.SWIZZLED:
            kind = reader.take(reader.u32()).decode("utf-8")
            slot = len(memo)
            memo.append(_PENDING)
            data = self._read(reader, memo, depth + 1, guard)
            materialized = self.unswizzler.unswizzle(SwizzleDescriptor(kind=kind, data=data))
            memo[slot] = materialized
            return materialized
        raise SerializationError(f"unknown wire tag 0x{tag:02x}")


_PENDING = object()


class _Reader:
    """Bounds-checked byte cursor."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise SerializationError(
                f"truncated frame: wanted {count} bytes at offset {self._pos}, "
                f"only {len(self._data) - self._pos} available"
            )
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos
