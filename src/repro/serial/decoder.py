"""Wire-format decoder — the inverse of :mod:`repro.serial.encoder`.

Objects are materialized with their registered factory *before* their
state is decoded, and registered in the memo immediately, so cyclic graphs
rebuild correctly.  Swizzled descriptors are handed to the unswizzler
(the replication layer), which typically returns a freshly built
proxy-out.
"""

from __future__ import annotations

import struct

from repro.serial import tags
from repro.serial.compiled import codec_for
from repro.serial.encoder import _LAZY_GUARD_DEPTH, _RecursionGuard
from repro.serial.registry import TypeRegistry, global_registry
from repro.serial.swizzle import NullSwizzler, SwizzleDescriptor, Unswizzler
from repro.util.clock import perf_ns
from repro.util.errors import SerializationError, TruncatedFrameError, UnknownWireTagError

_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")


class Decoder:
    """Decodes wire frames produced by :class:`repro.serial.Encoder`."""

    def __init__(
        self,
        registry: TypeRegistry | None = None,
        unswizzler: Unswizzler | None = None,
        *,
        max_depth: int = 50_000,
        stats: object | None = None,
    ):
        self.registry = registry if registry is not None else global_registry
        self.unswizzler = unswizzler if unswizzler is not None else NullSwizzler()
        self.max_depth = max_depth
        self.stats = stats
        self._fast_hits = 0

    def decode(self, data: bytes) -> object:
        reader = _Reader(data)
        start = perf_ns() if self.stats is not None else 0
        self._fast_hits = 0
        # Decoding nests as deeply as encoding did; see the encoder's
        # _RecursionGuard for rationale (and why it arms lazily).
        with _RecursionGuard(self.max_depth) as guard:
            value = self._read(reader, memo=[], depth=0, guard=guard)
        if not reader.exhausted:
            raise SerializationError(
                f"trailing garbage after frame: {reader.remaining} bytes unread"
            )
        if self.stats is not None:
            self.stats.add(
                frames_decoded=1,
                decode_ns=perf_ns() - start,
                decodes_fast=self._fast_hits,
            )
        return value

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _read(
        self, reader: "_Reader", memo: list[object], depth: int, guard: "_RecursionGuard"
    ) -> object:
        if depth >= _LAZY_GUARD_DEPTH and not guard.armed:
            guard.ensure()
        tag = reader.u8()
        if tag == tags.NONE:
            return None
        if tag == tags.TRUE:
            return True
        if tag == tags.FALSE:
            return False
        if tag == tags.INT:
            length = reader.u8()
            return int.from_bytes(reader.take(length), "big", signed=True)
        if tag == tags.FLOAT:
            return _F64.unpack(reader.take(8))[0]
        if tag == tags.STR:
            return str(reader.take(reader.u32()), "utf-8")
        if tag == tags.BYTES:
            return bytes(reader.take(reader.u32()))
        if tag == tags.BYTEARRAY:
            out = bytearray(reader.take(reader.u32()))
            memo.append(out)
            return out
        if tag == tags.REF:
            index = reader.u32()
            try:
                return memo[index]
            except IndexError:
                raise SerializationError(f"dangling back-reference #{index}") from None
        if tag == tags.LIST:
            out: list[object] = []
            memo.append(out)
            for _ in range(reader.u32()):
                out.append(self._read(reader, memo, depth + 1, guard))
            return out
        if tag == tags.TUPLE:
            # Tuples are immutable: decode into a placeholder slot, then
            # patch the memo.  Self-referential tuples cannot be built in
            # Python either, so an inner REF to an under-construction tuple
            # is a sender bug and surfaces as a placeholder leak.
            slot = len(memo)
            memo.append(_PENDING)
            items = tuple(self._read(reader, memo, depth + 1, guard) for _ in range(reader.u32()))
            memo[slot] = items
            return items
        if tag == tags.SET:
            slot = len(memo)
            memo.append(_PENDING)
            items = {self._read(reader, memo, depth + 1, guard) for _ in range(reader.u32())}
            memo[slot] = items
            return items
        if tag == tags.FROZENSET:
            slot = len(memo)
            memo.append(_PENDING)
            items = frozenset(self._read(reader, memo, depth + 1, guard) for _ in range(reader.u32()))
            memo[slot] = items
            return items
        if tag == tags.DICT:
            mapping: dict[object, object] = {}
            memo.append(mapping)
            for _ in range(reader.u32()):
                key = self._read(reader, memo, depth + 1, guard)
                mapping[key] = self._read(reader, memo, depth + 1, guard)
            return mapping
        if tag == tags.OBJECT:
            name = str(reader.take(reader.u32()), "utf-8")
            entry = self.registry.lookup_name(name)
            instance = entry.factory()
            memo.append(instance)
            state = self._read(reader, memo, depth + 1, guard)
            entry.set_state(instance, state)
            return instance
        if tag == tags.OBJECT_SCHEMA:
            name = str(reader.take(reader.u32()), "utf-8")
            schema_hash = reader.u32()
            entry = self.registry.lookup_name(name)
            codec = codec_for(entry.cls)
            if codec is None or codec.name != name or codec.schema_hash != schema_hash:
                raise SerializationError(
                    f"compiled frame for {name!r} (schema 0x{schema_hash:08x}) does not "
                    "match a codec on this site — peers must share class definitions"
                )
            # The codec registers the instance in the memo itself, then
            # walks the memoryview with offset arithmetic; we just move
            # the cursor to where it stopped.
            try:
                instance, end = codec.decode(reader.buffer, reader.tell(), memo, entry.factory)
            except (struct.error, IndexError) as exc:
                # The generated decoder reads with offset arithmetic, so a
                # short buffer surfaces as struct.error / IndexError —
                # normalize to the same typed error the reflective path
                # raises instead of letting the raw exception escape.
                raise TruncatedFrameError(
                    f"truncated compiled frame for {name!r}: {exc}",
                    offset=reader.tell(),
                    available=reader.remaining,
                ) from None
            except ValueError as exc:
                raise SerializationError(
                    f"corrupt compiled frame for {name!r}: {exc}"
                ) from None
            reader.seek(end)
            self._fast_hits += 1
            return instance
        if tag == tags.SWIZZLED:
            kind = str(reader.take(reader.u32()), "utf-8")
            slot = len(memo)
            memo.append(_PENDING)
            data = self._read(reader, memo, depth + 1, guard)
            materialized = self.unswizzler.unswizzle(SwizzleDescriptor(kind=kind, data=data))
            memo[slot] = materialized
            return materialized
        raise UnknownWireTagError(f"unknown wire tag 0x{tag:02x}", tag=tag)


_PENDING = object()


class _Reader:
    """Bounds-checked cursor over a ``memoryview`` of the frame.

    ``take`` hands out zero-copy subviews; scalar consumers
    (``int.from_bytes``, ``struct.unpack``, ``str``) read them directly,
    and only values that must outlive the frame (BYTES payloads) copy.
    """

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes | memoryview):
        self._data = data if isinstance(data, memoryview) else memoryview(data)
        self._pos = 0

    def take(self, count: int) -> memoryview:
        end = self._pos + count
        if end > len(self._data):
            raise TruncatedFrameError(
                f"truncated frame: wanted {count} bytes at offset {self._pos}, "
                f"only {len(self._data) - self._pos} available",
                offset=self._pos,
                wanted=count,
                available=len(self._data) - self._pos,
            )
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    @property
    def buffer(self) -> memoryview:
        return self._data

    def tell(self) -> int:
        return self._pos

    def seek(self, pos: int) -> None:
        if pos < self._pos or pos > len(self._data):
            raise SerializationError(
                f"compiled frame cursor out of bounds: {pos} not in "
                f"[{self._pos}, {len(self._data)}]"
            )
        self._pos = pos

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos
