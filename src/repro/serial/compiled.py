"""obicodec: schema-compiled serialization fast path.

The reflective codec pays a per-value ``_write`` dispatch and re-encodes
every field *name* into every frame.  For the classes that dominate
replication traffic — obicomp-compiled application classes whose fields
are scalars — the schema is knowable at registration time, so this module
derives it once and generates a specialized encoder/decoder pair:

* fixed-width fields (int/float/bool) collapse into a single
  ``struct.Struct`` pack/unpack,
* str/bytes fields become length-prefixed runs,
* the frame is self-describing (wire name + schema hash under the
  ``OBJECT_SCHEMA`` tag) so a receiver can verify it compiled the *same*
  schema before trusting offsets,
* decoding walks a ``memoryview`` with offset arithmetic — no per-field
  ``bytes`` slicing, no intermediate state dict.

Anything the schema cannot prove — polymorphic fields, container fields,
custom ``__getstate__``/``__setstate__``, ``__slots__``, out-of-range
ints, an instance dict whose shape drifted from the schema — falls back
to the reflective ``OBJECT`` path, which stays byte-identical to
pre-obicodec peers.  Schema derivation reads the ``self.X = ...``
assignments in ``__init__`` (annotation, literal, or parameter default),
exactly the information obicomp already relies on for proxy generation.

The generated source is kept on the codec (:attr:`ObjectCodec.source`)
so :mod:`repro.core.obicomp.emit` can write it next to the emitted proxy.
"""

from __future__ import annotations

import ast
import inspect
import re
import struct
import textwrap
import zlib
from collections.abc import Callable
from dataclasses import dataclass

from repro.serial import tags

_U32 = struct.Struct("!I")

#: kind name -> struct format char, for the fixed-width fields.
_FIXED_FMT = {"int": "q", "float": "d", "bool": "?"}

#: Scalar kinds a compiled schema may contain.
_SCALAR_KINDS = frozenset({"int", "float", "bool", "str", "bytes"})

_TYPE_KIND = {int: "int", float: "float", bool: "bool", str: "str", bytes: "bytes"}

#: ``int`` fields pack as ``!q``; anything outside this range falls back
#: to the reflective variable-length integer encoding.
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


@dataclass(frozen=True)
class ObjectCodec:
    """A compiled encoder/decoder pair for one registered class."""

    cls: type
    name: str
    fields: tuple[tuple[str, str], ...]  # (field, kind) in __init__ order
    schema_hash: int
    header: bytes
    fixed_format: str
    encode: Callable[[bytearray, object, object], bool]
    decode: Callable[[object, int, list, Callable[[], object]], tuple[object, int]]
    source: str

    def describe(self) -> str:
        return ", ".join(f"{field}:{kind}" for field, kind in self.fields) or "<no fields>"


#: Codec cache keyed by class.  ``None`` records a class we already tried
#: and rejected, so registration never re-derives.
_codecs: dict[type, ObjectCodec | None] = {}


def codec_for(cls: type) -> ObjectCodec | None:
    """The compiled codec for ``cls``, or None (hot path: one dict probe)."""
    return _codecs.get(cls)


def maybe_compile_codec(entry) -> ObjectCodec | None:
    """Derive + compile a codec for a freshly registered ``TypeEntry``.

    Called by :meth:`TypeRegistry.register` only when the entry uses the
    default state getter/setter/factory — custom hooks mean the instance
    dict is not the wire state, so the schema would lie.  Failures are
    silent and cached: an undecodable class simply stays reflective.
    """
    cls = entry.cls
    if cls in _codecs:
        return _codecs[cls]
    codec: ObjectCodec | None = None
    try:
        fields = derive_schema(cls)
        if fields is not None:
            codec = _build_codec(cls, entry.name, fields)
    except Exception:
        codec = None
    _codecs[cls] = codec
    return codec


def registered_codec_names() -> frozenset[str]:
    """Wire names that currently have a compiled codec (contract hook)."""
    return frozenset(codec.name for codec in _codecs.values() if codec is not None)


def schema_hash_of(fields: tuple[tuple[str, str], ...]) -> int:
    description = "|".join(f"{field}:{kind}" for field, kind in fields)
    return zlib.crc32(description.encode("utf-8")) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# schema derivation
# ----------------------------------------------------------------------
def derive_schema(cls: type) -> tuple[tuple[str, str], ...] | None:
    """Monomorphic scalar field schema for ``cls``, or None.

    Fields come from the ``self.X = ...`` assignments in ``__init__``
    (textual order); each must resolve to exactly one scalar kind via, in
    precedence order: the assignment's own annotation, a class-level
    annotation, the source parameter's annotation, the source parameter's
    default value, or a literal.  Classes with ``__slots__`` or a custom
    ``__getstate__``/``__setstate__`` anywhere in the MRO are rejected —
    their wire state is not the instance dict.
    """
    for klass in cls.__mro__:
        if klass is object:
            break
        spec = vars(klass)
        if "__slots__" in spec or "__getstate__" in spec or "__setstate__" in spec:
            return None

    init = cls.__init__
    if init is object.__init__:
        return ()
    try:
        source = textwrap.dedent(inspect.getsource(init))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, ValueError):
        return None
    if not tree.body or not isinstance(tree.body[0], (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    fn = tree.body[0]
    if not fn.args.args:
        return None
    self_name = fn.args.args[0].arg

    param_kinds = _parameter_kinds(init)
    class_kinds = _class_annotation_kinds(cls)

    order: list[str] = []
    kinds: dict[str, str | None] = {}
    for node in sorted(
        (n for n in ast.walk(fn) if isinstance(n, (ast.Assign, ast.AnnAssign, ast.AugAssign))),
        key=lambda n: (n.lineno, n.col_offset),
    ):
        if isinstance(node, ast.AnnAssign):
            targets = [node.target]
            annotation_kind = _annotation_kind(_unparse(node.annotation))
        elif isinstance(node, ast.Assign):
            targets = node.targets
            annotation_kind = None
        else:  # AugAssign: self.x += ... on a field we never saw plainly
            targets = [node.target]
            annotation_kind = None
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                # Unpacking into self attributes is uninferable.
                if any(_is_self_attr(el, self_name) for el in target.elts):
                    return None
                continue
            if not _is_self_attr(target, self_name):
                continue
            field = target.attr
            kind = (
                annotation_kind
                or class_kinds.get(field)
                or _expr_kind(node.value if not isinstance(node, ast.AugAssign) else None, param_kinds)
            )
            if field not in kinds:
                order.append(field)
                kinds[field] = kind
            elif kind is not None and kinds[field] is not None and kinds[field] != kind:
                return None  # conflicting assignments: polymorphic field
            elif kinds[field] is None:
                kinds[field] = kind

    if "_obi_id" in kinds:
        return None  # reserved: carried in the frame header instead
    fields = []
    for field in order:
        kind = kinds[field]
        if kind is None or kind not in _SCALAR_KINDS:
            return None
        fields.append((field, kind))
    return tuple(fields)


def _is_self_attr(node: ast.expr, self_name: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    )


def _annotation_kind(annotation: object) -> str | None:
    if isinstance(annotation, str):
        text = annotation.strip().strip("'\"")
        return text if text in _SCALAR_KINDS else None
    if isinstance(annotation, type):
        return _TYPE_KIND.get(annotation)
    return None


def _unparse(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except Exception:
        return None


def _parameter_kinds(init) -> dict[str, str]:
    try:
        signature = inspect.signature(init)
    except (ValueError, TypeError):
        return {}
    kinds: dict[str, str] = {}
    for name, parameter in list(signature.parameters.items())[1:]:
        kind = _annotation_kind(parameter.annotation)
        if kind is None and parameter.default is not inspect.Parameter.empty:
            if parameter.default is not None and type(parameter.default) in _TYPE_KIND:
                kind = _TYPE_KIND[type(parameter.default)]
        if kind is not None:
            kinds[name] = kind
    return kinds


def _class_annotation_kinds(cls: type) -> dict[str, str]:
    kinds: dict[str, str] = {}
    for klass in reversed(cls.__mro__):
        for field, annotation in vars(klass).get("__annotations__", {}).items():
            kind = _annotation_kind(annotation)
            if kind is not None:
                kinds[field] = kind
    return kinds


def _expr_kind(expr: ast.expr | None, param_kinds: dict[str, str]) -> str | None:
    if expr is None:
        return None
    if isinstance(expr, ast.Constant):
        value = expr.value
        if value is None or value is Ellipsis:
            return None
        return _TYPE_KIND.get(type(value))
    if isinstance(expr, ast.Name):
        return param_kinds.get(expr.id)
    if (
        isinstance(expr, ast.UnaryOp)
        and isinstance(expr.op, (ast.USub, ast.UAdd))
        and isinstance(expr.operand, ast.Constant)
    ):
        return _TYPE_KIND.get(type(expr.operand.value))
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        name = expr.func.id
        return name if name in _SCALAR_KINDS else None
    return None


# ----------------------------------------------------------------------
# code generation
# ----------------------------------------------------------------------
def _build_codec(cls: type, name: str, fields: tuple[tuple[str, str], ...]) -> ObjectCodec:
    suffix = re.sub(r"\W", "_", name)
    schema_hash = schema_hash_of(fields)
    name_bytes = name.encode("utf-8")
    header = bytes([tags.OBJECT_SCHEMA]) + _U32.pack(len(name_bytes)) + name_bytes + _U32.pack(schema_hash)
    fixed = [(i, field, kind) for i, (field, kind) in enumerate(fields) if kind in _FIXED_FMT]
    variable = [(i, field, kind) for i, (field, kind) in enumerate(fields) if kind not in _FIXED_FMT]
    fixed_format = "!" + "".join(_FIXED_FMT[kind] for _, _, kind in fixed) if fixed else ""
    source = _generate_source(suffix, name, fields, fixed, variable, fixed_format, schema_hash, header)
    namespace: dict[str, object] = {"_struct": struct}
    exec(compile(source, f"<obicodec {name}>", "exec"), namespace)  # noqa: S102 - our own generated source
    return ObjectCodec(
        cls=cls,
        name=name,
        fields=fields,
        schema_hash=schema_hash,
        header=header,
        fixed_format=fixed_format,
        encode=namespace[f"_obicodec_encode_{suffix}"],  # type: ignore[arg-type]
        decode=namespace[f"_obicodec_decode_{suffix}"],  # type: ignore[arg-type]
        source=source,
    )


def _generate_source(
    suffix: str,
    name: str,
    fields: tuple[tuple[str, str], ...],
    fixed: list[tuple[int, str, str]],
    variable: list[tuple[int, str, str]],
    fixed_format: str,
    schema_hash: int,
    header: bytes,
) -> str:
    lines: list[str] = []
    emit = lines.append
    describe = ", ".join(f"{field}:{kind}" for field, kind in fields) or "<no fields>"
    emit(f"# obicodec for {name!r} - schema 0x{schema_hash:08x}: {describe}")
    emit(f"_obicodec_hdr_{suffix} = {header!r}")
    emit(f"_obicodec_u32_{suffix} = _struct.Struct('!I').pack")
    emit(f"_obicodec_u32r_{suffix} = _struct.Struct('!I').unpack_from")
    if fixed:
        emit(f"_obicodec_fx_{suffix} = _struct.Struct({fixed_format!r})")
        fixed_size = struct.calcsize(fixed_format)
    else:
        fixed_size = 0

    # --- encoder: validate the live instance against the schema, then
    # commit in one pass.  Any mismatch returns False and the caller
    # falls back to the reflective OBJECT path.
    head = (
        f"def _obicodec_encode_{suffix}(out, obj, memo, "
        f"_hdr=_obicodec_hdr_{suffix}, _u32=_obicodec_u32_{suffix}"
    )
    if fixed:
        head += f", _pack=_obicodec_fx_{suffix}.pack"
    emit(head + "):")
    emit("    d = obj.__dict__")
    emit("    oid = d.get('_obi_id')")
    emit("    n = len(d)")
    emit("    if oid is not None:")
    emit("        if type(oid) is not str:")
    emit("            return False")
    emit("        n -= 1")
    emit(f"    if n != {len(fields)}:")
    emit("        return False")
    if fields:
        emit("    try:")
        for i, (field, _) in enumerate(fields):
            emit(f"        v{i} = d[{field!r}]")
        emit("    except KeyError:")
        emit("        return False")
    for i, (field, kind) in enumerate(fields):
        if kind == "int":
            emit(f"    if type(v{i}) is not int or v{i} > {INT64_MAX} or v{i} < {INT64_MIN}:")
        elif kind == "float":
            emit(f"    if type(v{i}) is not float:")
        elif kind == "bool":
            emit(f"    if type(v{i}) is not bool:")
        elif kind == "str":
            emit(f"    if type(v{i}) is not str:")
        else:  # bytes
            emit(f"    if type(v{i}) is not bytes:")
        emit("        return False")
    for i, field, kind in variable:
        if kind == "str":
            emit(f"    b{i} = v{i}.encode('utf-8')")
    emit("    memo.add(obj)")
    emit("    out += _hdr")
    emit("    if oid is None:")
    emit("        out.append(0)")
    emit("    else:")
    emit("        b = oid.encode('utf-8')")
    emit("        out.append(1)")
    emit("        out += _u32(len(b))")
    emit("        out += b")
    if fixed:
        args = ", ".join(f"v{i}" for i, _, _ in fixed)
        emit(f"    out += _pack({args})")
    for i, field, kind in variable:
        payload = f"b{i}" if kind == "str" else f"v{i}"
        emit(f"    out += _u32(len({payload}))")
        emit(f"    out += {payload}")
    emit("    return True")

    # --- decoder: offset arithmetic over the caller's memoryview; the
    # instance registers in the memo before its fields, mirroring the
    # reflective path, and fields land in __init__ order so the rebuilt
    # instance dict matches the master's.
    head = f"def _obicodec_decode_{suffix}(buf, pos, memo, factory, _u32r=_obicodec_u32r_{suffix}"
    if fixed:
        head += f", _unpack=_obicodec_fx_{suffix}.unpack_from"
    emit(head + "):")
    emit("    obj = factory()")
    emit("    memo.append(obj)")
    emit("    d = obj.__dict__")
    emit("    flag = buf[pos]")
    emit("    pos += 1")
    emit("    oid = None")
    emit("    if flag:")
    emit("        ln = _u32r(buf, pos)[0]")
    emit("        pos += 4")
    emit("        end = pos + ln")
    emit("        oid = str(buf[pos:end], 'utf-8')")
    emit("        pos = end")
    if fixed:
        targets = ", ".join(f"v{i}" for i, _, _ in fixed)
        if len(fixed) == 1:
            emit(f"    ({targets},) = _unpack(buf, pos)")
        else:
            emit(f"    {targets} = _unpack(buf, pos)")
        emit(f"    pos += {fixed_size}")
    for i, field, kind in variable:
        emit("    ln = _u32r(buf, pos)[0]")
        emit("    pos += 4")
        emit("    end = pos + ln")
        if kind == "str":
            emit(f"    v{i} = str(buf[pos:end], 'utf-8')")
        else:
            emit(f"    v{i} = bytes(buf[pos:end])")
        emit("    pos = end")
    emit("    if pos > len(buf):")
    emit("        raise IndexError('truncated compiled frame')")
    for i, (field, _) in enumerate(fields):
        emit(f"    d[{field!r}] = v{i}")
    emit("    if oid is not None:")
    emit("        d['_obi_id'] = oid")
    emit("    return obj, pos")
    emit("")
    return "\n".join(lines)
