"""Authoritative wire-size measurement.

The network cost model charges transfer time per frame byte, so "how big
is this object on the wire" is answered by actually encoding it.  (For a
cheap pre-serialization estimate see
:func:`repro.util.sizes.estimate_payload_size`.)
"""

from __future__ import annotations

from repro.serial.encoder import Encoder
from repro.serial.registry import TypeRegistry
from repro.serial.swizzle import Swizzler


def encoded_size(
    value: object,
    registry: TypeRegistry | None = None,
    swizzler: Swizzler | None = None,
) -> int:
    """Exact number of payload bytes ``value`` occupies on the wire."""
    return len(Encoder(registry, swizzler).encode(value))
