"""Field-level delta codec and deterministic state fingerprints.

The delta synchronization engine (PR 4) ships only the *changed* fields
of a replica instead of its whole state.  This module provides the two
primitives that make that safe:

* :class:`FieldDelta` + :func:`encode_field_delta` /
  :func:`decode_field_delta` — one object's changed attributes as a
  single wire frame.  The payload is an ordinary encoder frame, so
  shared subobjects *within one delta* keep their aliasing (memo-safe),
  and the replication layer's swizzler applies to references exactly as
  it does on the full-state path.
* :class:`Fingerprinter` — a deterministic digest of an object's own
  state.  References to other OBIWAN nodes (objects and proxy-outs)
  hash as their *logical identity*, not their state, so a master and a
  faithful replica produce the same fingerprint even though one holds
  direct references and the other holds proxy-outs.  The put/refresh
  delta protocol compares fingerprints before and after every merge:
  any divergence forces the legacy full-state path instead of silently
  corrupting a replica.

Layering note: this module sits above the raw encoder (it understands
OBIWAN node identity) but below :mod:`repro.core.replication`; it is
deliberately *not* re-exported from ``repro.serial.__init__`` to keep
``repro.core.interfaces → repro.serial.registry`` import-cycle-free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.meta import is_obiwan, obi_id_of
from repro.core.proxy_out import ProxyOutBase
from repro.serial.encoder import Encoder
from repro.serial.registry import TypeRegistry
from repro.serial.swizzle import SwizzleDescriptor
from repro.util.errors import SerializationError

#: Swizzle kind used inside fingerprint frames: a node's logical identity.
FP_REF_KIND = "obiwan.fp-ref"

#: Immutable builtin scalars — values that can only change by rebinding
#: the attribute, which the instrumented ``__setattr__`` always observes.
IMMUTABLE_SCALARS = (type(None), bool, int, float, str, bytes)


@dataclass(slots=True)
class FieldDelta:
    """One object's changed attributes, ready to encode.

    ``fields`` maps attribute name → current value; ``base_version`` is
    the master version the sender last synchronized at (the receiver
    merges only on an exact match).
    """

    obi_id: str = ""
    base_version: int = 0
    fields: dict[str, object] = field(default_factory=dict)


def encode_field_delta(encoder: Encoder, delta: FieldDelta) -> bytes:
    """Encode a delta's field map as one frame.

    The frame is just the ``fields`` dict — identity and version travel
    in the package envelope, where the receiver needs them *before*
    decoding.  One frame per delta means subobjects shared between two
    changed fields are encoded once and decode back aliased.
    """
    return encoder.encode(delta.fields)


def decode_field_delta(decoder, payload: bytes) -> dict[str, object]:
    """Decode a field-delta frame back to its attribute map."""
    fields = decoder.decode(payload)
    if not isinstance(fields, dict) or not all(isinstance(k, str) for k in fields):
        raise SerializationError("field delta must decode to a str-keyed dict")
    return fields


class _FingerprintSwizzler:
    """Encoder hook that collapses OBIWAN nodes to their logical ids.

    A replica and its master agree on object *identities* but not on
    representation (one side may hold a proxy-out where the other holds
    the object).  Hashing identities makes fingerprints comparable
    across sites; a node's own state divergence is caught by that
    node's *own* fingerprint.
    """

    def swizzle(self, value: object) -> SwizzleDescriptor | None:
        if isinstance(value, ProxyOutBase):
            return SwizzleDescriptor(FP_REF_KIND, value._obi_target_id)
        if is_obiwan(value):
            return SwizzleDescriptor(FP_REF_KIND, obi_id_of(value))
        return None

    def unswizzle(self, descriptor: SwizzleDescriptor) -> object:  # pragma: no cover
        raise SerializationError("fingerprint frames are never decoded")


class Fingerprinter:
    """Pooled, deterministic state-digest machine (one per site).

    The underlying :class:`Encoder` is stateless across frames, so a
    single instance serves every fingerprint a site computes (the PR-2
    pooling pattern) and is safe under concurrent dispatcher threads.
    """

    __slots__ = ("_encoder",)

    def __init__(self, registry: TypeRegistry | None = None):
        self._encoder = Encoder(registry, _FingerprintSwizzler())

    def of_state(self, state: dict[str, object]) -> str:
        """Digest of a state dict, independent of key insertion order."""
        frame = self._encoder.encode(sorted(state.items()))
        return hashlib.blake2b(frame, digest_size=16).hexdigest()

    def of_object(self, obj: object) -> str:
        """Digest of one object's own state (references by identity)."""
        return self.of_state(vars(obj))

    def of_value(self, value: object) -> str:
        """Digest of a single field value — the container-mutation probe."""
        frame = self._encoder.encode(value)
        return hashlib.blake2b(frame, digest_size=16).hexdigest()
