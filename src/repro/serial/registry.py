"""Type registry: which classes may cross the wire, and how.

A class is encoded as its registered name plus a state value.  By default
the state is the instance ``__dict__`` (honouring ``__getstate__`` /
``__setstate__`` when present) and decoding builds the instance with
``cls.__new__`` — constructors do not rerun on the receiving site, exactly
like Java deserialization.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.util.errors import SerializationError

StateGetter = Callable[[object], object]
StateSetter = Callable[[object, object], None]
Factory = Callable[[], object]


def _default_state_getter(obj: object) -> object:
    # Only honour __getstate__ when the class overrides it: since Python
    # 3.11 ``object`` itself defines one, which returns None for empty
    # instances — not a usable state value.
    getstate = _overridden(obj, "__getstate__")
    if getstate is not None:
        return getstate(obj)
    return dict(vars(obj))


def _overridden(obj: object, name: str):
    """The first non-``object`` definition of ``name`` along the MRO."""
    for klass in type(obj).__mro__:
        if klass is object:
            return None
        if name in vars(klass):
            return vars(klass)[name]
    return None


def _default_state_setter(obj: object, state: object) -> None:
    setstate = getattr(obj, "__setstate__", None)
    if callable(setstate):
        setstate(state)
        return
    if not isinstance(state, dict):
        raise SerializationError(
            f"default state for {type(obj).__name__} must be a dict, got {type(state).__name__}"
        )
    vars(obj).update(state)


@dataclass(frozen=True, slots=True)
class TypeEntry:
    """How one registered class is encoded and rebuilt."""

    name: str
    cls: type
    get_state: StateGetter
    set_state: StateSetter
    factory: Factory


class TypeRegistry:
    """Bidirectional map between classes and wire names."""

    def __init__(self) -> None:
        self._by_name: dict[str, TypeEntry] = {}
        self._by_class: dict[type, TypeEntry] = {}

    def register(
        self,
        cls: type,
        *,
        name: str | None = None,
        get_state: StateGetter | None = None,
        set_state: StateSetter | None = None,
        factory: Factory | None = None,
    ) -> TypeEntry:
        """Register ``cls``; re-registering the same class is idempotent.

        ``name`` defaults to ``module.QualName``.  Registering a *different*
        class under an existing name is an error — the name is the wire
        identity shared by all sites.
        """
        wire_name = name if name is not None else f"{cls.__module__}.{cls.__qualname__}"
        existing = self._by_name.get(wire_name)
        if existing is not None:
            if existing.cls is cls:
                return existing
            raise SerializationError(
                f"wire name {wire_name!r} already registered for {existing.cls!r}"
            )
        entry = TypeEntry(
            name=wire_name,
            cls=cls,
            get_state=get_state or _default_state_getter,
            set_state=set_state or _default_state_setter,
            factory=factory or (lambda: cls.__new__(cls)),
        )
        self._by_name[wire_name] = entry
        self._by_class[cls] = entry
        if get_state is None and set_state is None and factory is None:
            # Default-state classes are candidates for the obicodec fast
            # path: their wire state *is* the instance dict, so a scalar
            # schema derived here is authoritative.  Custom hooks opt out.
            # (Imported lazily: compiled.py never imports the registry.)
            from repro.serial.compiled import maybe_compile_codec

            maybe_compile_codec(entry)
        return entry

    def lookup_class(self, cls: type) -> TypeEntry:
        entry = self._by_class.get(cls)
        if entry is None:
            raise SerializationError(
                f"class {cls.__module__}.{cls.__qualname__} is not registered for serialization; "
                "compile it with obicomp or call register_type() explicitly"
            )
        return entry

    def lookup_name(self, name: str) -> TypeEntry:
        entry = self._by_name.get(name)
        if entry is None:
            raise SerializationError(f"unknown wire type {name!r} — not registered on this site")
        return entry

    def is_registered(self, cls: type) -> bool:
        return cls in self._by_class

    def child(self) -> "TypeRegistry":
        """A copy that can gain entries without mutating this registry."""
        clone = TypeRegistry()
        clone._by_name.update(self._by_name)
        clone._by_class.update(self._by_class)
        return clone


#: Registry shared by default across the process.  Suits the common case —
#: the paper's deployment model ships the same obicomp-generated classes to
#: every site; tests that need isolation build their own registry.
global_registry = TypeRegistry()


def register_type(cls: type | None = None, **kwargs: object):
    """Class decorator registering a type in :data:`global_registry`.

    >>> @register_type
    ... class Note:
    ...     pass
    """

    def apply(target: type) -> type:
        global_registry.register(target, **kwargs)  # type: ignore[arg-type]
        return target

    if cls is not None:
        return apply(cls)
    return apply
