"""Swizzle hooks: reference ↔ proxy-out descriptor conversion.

"Swizzling" is the classic object-faulting term (Hosking & Moss; White &
DeWitt — both cited by the paper) for converting between direct references
and fault-detecting placeholders.  In OBIWAN, when a master object is
replicated, each reference it holds to a not-yet-replicated neighbour is
replaced by a *proxy-out* at the destination.

The serializer stays agnostic of the replication layer: the encoder asks a
:class:`Swizzler` whether a value should travel as a
:class:`SwizzleDescriptor` instead of by state, and the decoder hands every
descriptor to an :class:`Unswizzler` to materialize whatever the layer
above wants (for `repro.core`, a proxy-out instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


@dataclass(frozen=True, slots=True)
class SwizzleDescriptor:
    """A placeholder that travels instead of an object's state.

    ``kind`` names the descriptor family (e.g. ``"proxy-out"``,
    ``"remote-ref"``) and ``data`` is any serializable value the layer above
    needs to rebuild the placeholder on the receiving site.
    """

    kind: str
    data: object


class Swizzler(Protocol):
    """Encoder-side hook."""

    def swizzle(self, value: object) -> SwizzleDescriptor | None:
        """Return a descriptor to send instead of ``value``, or ``None``
        to serialize ``value`` normally."""


class Unswizzler(Protocol):
    """Decoder-side hook."""

    def unswizzle(self, descriptor: SwizzleDescriptor) -> object:
        """Materialize the local stand-in for ``descriptor``."""


class NullSwizzler:
    """Default hook: nothing is swizzled, descriptors decode as themselves."""

    def swizzle(self, value: object) -> SwizzleDescriptor | None:
        return None

    def unswizzle(self, descriptor: SwizzleDescriptor) -> object:
        return descriptor
