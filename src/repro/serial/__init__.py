"""Object-graph serialization for the OBIWAN reproduction.

Replica state moves between sites only in serialized form — this is what
the Java prototype gets from JVM object serialization, and what guarantees
that a replica is a true copy of its master, never an alias.

Differences from :mod:`pickle`, deliberately:

* Only *registered* classes can be decoded — a site cannot be made to
  instantiate arbitrary types by a malicious peer (the prototype had the
  same property: both sides load the obicomp-generated classes).
* A **swizzle hook** lets the replication engine replace outgoing object
  references with proxy-out descriptors during encoding, and materialize
  proxy-outs during decoding — the mechanism of the paper's Figure 1.
* Every frame's byte length is the authoritative input to the network cost
  model, so the format is compact and deterministic.
"""

from repro.serial.compiled import ObjectCodec, codec_for, derive_schema, registered_codec_names
from repro.serial.encoder import Encoder
from repro.serial.decoder import Decoder
from repro.serial.measure import encoded_size
from repro.serial.registry import TypeRegistry, global_registry, register_type
from repro.serial.swizzle import SwizzleDescriptor, Swizzler, Unswizzler

__all__ = [
    "Encoder",
    "Decoder",
    "ObjectCodec",
    "TypeRegistry",
    "codec_for",
    "derive_schema",
    "global_registry",
    "register_type",
    "registered_codec_names",
    "SwizzleDescriptor",
    "Swizzler",
    "Unswizzler",
    "encoded_size",
]
