"""Wire-format encoder.

A compact, deterministic tagged binary format.  Sharing and cycles are
preserved through a memo table: the second time a container or object is
reached it is emitted as a back-reference, so a graph decodes with the
same aliasing structure it had at the sender — essential for
``updateMember`` reference splicing to behave like the Java prototype.

Wire grammar (one tag byte, then type-specific body)::

    NONE FALSE TRUE                         (no body)
    INT      <u8 len> <signed big-endian>
    FLOAT    <8-byte IEEE 754>
    STR      <u32 len> <utf-8>
    BYTES    <u32 len> <raw>
    BYTEARRAY <u32 len> <raw>               (identity-memoized, mutable)
    LIST/TUPLE/SET/FROZENSET  <u32 count> <items>
    DICT     <u32 count> <key value>*
    OBJECT   <str name> <state value>
    SWIZZLED <str kind> <data value>
    REF      <u32 memo index>
    OBJECT_SCHEMA <str name> <u32 schema hash> <compiled body>

The last tag is the obicodec fast path (:mod:`repro.serial.compiled`):
a schema-compiled frame emitted only when ``compiled=True`` *and* the
class has a derivable scalar schema; everything else — and every frame
when the flag is off — stays byte-identical to pre-obicodec encoders.
"""

from __future__ import annotations

import struct
import sys

from repro.serial import tags
from repro.serial.compiled import codec_for
from repro.serial.registry import TypeRegistry, global_registry
from repro.serial.swizzle import NullSwizzler, Swizzler
from repro.util.clock import perf_ns
from repro.util.errors import SerializationError

_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")


class Encoder:
    """Encodes Python values into the wire format.

    One encoder instance is reusable; each :meth:`encode` call is an
    independent frame with its own memo table.
    """

    def __init__(
        self,
        registry: TypeRegistry | None = None,
        swizzler: Swizzler | None = None,
        *,
        max_depth: int = 50_000,
        compiled: bool = False,
        stats: object | None = None,
    ):
        self.registry = registry if registry is not None else global_registry
        self.swizzler = swizzler if swizzler is not None else NullSwizzler()
        self.max_depth = max_depth
        # Opt-in obicodec fast path; off by default so shared encoders
        # (RMI endpoint, fingerprints) stay byte-identical across peers.
        self.compiled = compiled
        self.stats = stats
        self._fast_hits = 0
        self._fallbacks = 0
        # One preallocated buffer reused across frames.  Claimed with an
        # atomic pop / returned with setdefault, so concurrent encodes on
        # a shared encoder each get a private buffer (losers allocate).
        self._scratch = bytearray()

    def encode(self, value: object) -> bytes:
        out = self.__dict__.pop("_scratch", None)
        if out is None:
            out = bytearray()
        start = perf_ns() if self.stats is not None else 0
        self._fast_hits = 0
        self._fallbacks = 0
        # The memo maps id(obj) -> slot.  Memoized objects must stay alive
        # for the whole encode: a freed temporary (e.g. a __getstate__
        # tuple) could otherwise donate its id() to a new object and
        # corrupt back-references.
        memo = _Memo()
        # Long linked structures (the paper's 1000-object lists) nest one
        # encoder level per element; the guard gives the interpreter stack
        # room — lazily, so shallow frames (the RPC hot path) never pay
        # for a full stack walk.
        try:
            with _RecursionGuard(self.max_depth) as guard:
                self._write(out, value, memo=memo, depth=0, guard=guard)
            frame = bytes(out)
        finally:
            out.clear()
            self.__dict__.setdefault("_scratch", out)
        if self.stats is not None:
            self.stats.add(
                frames_encoded=1,
                encode_ns=perf_ns() - start,
                encodes_fast=self._fast_hits,
                encodes_reflective=self._fallbacks,
            )
        return frame

    def encode_compiled(self, value: object) -> bytes | None:
        """A self-contained ``OBJECT_SCHEMA`` frame for one registered object.

        Returns None when the class has no compiled codec, is registered
        under a different wire name here, or the live instance's shape
        drifted from the schema — callers fall back to a reflective
        frame.  No swizzling applies: compiled schemas admit only scalar
        fields, so the frame can never carry an object reference.
        """
        codec = codec_for(type(value))
        if codec is None or not self.registry.is_registered(type(value)):
            return None
        if self.registry.lookup_class(type(value)).name != codec.name:
            return None
        out = self.__dict__.pop("_scratch", None)
        if out is None:
            out = bytearray()
        start = perf_ns() if self.stats is not None else 0
        try:
            frame = bytes(out) if codec.encode(out, value, _Memo()) else None
        finally:
            out.clear()
            self.__dict__.setdefault("_scratch", out)
        if frame is not None and self.stats is not None:
            self.stats.add(frames_encoded=1, encode_ns=perf_ns() - start, encodes_fast=1)
        return frame

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _write(
        self, out: bytearray, value: object, memo: '_Memo', depth: int, guard: '_RecursionGuard'
    ) -> None:
        if depth > self.max_depth:
            raise SerializationError(
                f"object graph exceeds maximum serialization depth ({self.max_depth})"
            )
        if depth >= _LAZY_GUARD_DEPTH and not guard.armed:
            guard.ensure()

        if value is None:
            out.append(tags.NONE)
            return
        if value is True:
            out.append(tags.TRUE)
            return
        if value is False:
            out.append(tags.FALSE)
            return
        value_type = type(value)
        if value_type is int:
            self._write_int(out, value)  # type: ignore[arg-type]
            return
        if value_type is float:
            out.append(tags.FLOAT)
            out += _F64.pack(value)  # type: ignore[arg-type]
            return
        if value_type is str:
            out.append(tags.STR)
            self._write_sized(out, value.encode("utf-8"))  # type: ignore[union-attr]
            return
        if value_type is bytes:
            out.append(tags.BYTES)
            self._write_sized(out, value)  # type: ignore[arg-type]
            return

        # From here on values are identity-memoized (containers, objects).
        ref = memo.get(value)
        if ref is not None:
            out.append(tags.REF)
            out += _U32.pack(ref)
            return

        # bytearray is mutable, so unlike bytes it participates in the
        # memo: two fields aliasing one buffer decode to one buffer.
        if value_type is bytearray:
            memo.add(value)
            out.append(tags.BYTEARRAY)
            self._write_sized(out, bytes(value))
            return

        # The replication layer may want this reference to travel as a
        # proxy descriptor rather than by state.
        descriptor = self.swizzler.swizzle(value)
        if descriptor is not None:
            memo.add(value)
            out.append(tags.SWIZZLED)
            self._write_str(out, descriptor.kind)
            self._write(out, descriptor.data, memo, depth + 1, guard)
            return

        if value_type is list:
            self._write_items(out, tags.LIST, value, value, memo, depth, guard)  # type: ignore[arg-type]
            return
        if value_type is tuple:
            self._write_items(out, tags.TUPLE, value, value, memo, depth, guard)  # type: ignore[arg-type]
            return
        if value_type is set:
            self._write_items(out, tags.SET, value, self._canonical(value), memo, depth, guard)  # type: ignore[arg-type]
            return
        if value_type is frozenset:
            self._write_items(out, tags.FROZENSET, value, self._canonical(value), memo, depth, guard)  # type: ignore[arg-type]
            return
        if value_type is dict:
            memo.add(value)
            out.append(tags.DICT)
            out += _U32.pack(len(value))  # type: ignore[arg-type]
            for key, item in value.items():  # type: ignore[union-attr]
                self._write(out, key, memo, depth + 1, guard)
                self._write(out, item, memo, depth + 1, guard)
            return

        entry = self.registry.lookup_class(value_type)
        if self.compiled:
            codec = codec_for(value_type)
            if codec is not None and codec.name == entry.name and codec.encode(out, value, memo):
                self._fast_hits += 1
                return
            # No codec, or the instance shape drifted from the schema
            # (extra attrs, polymorphic value, out-of-range int): the
            # reflective path below handles it, counted as a fallback.
            self._fallbacks += 1
        memo.add(value)
        out.append(tags.OBJECT)
        self._write_str(out, entry.name)
        self._write(out, entry.get_state(value), memo, depth + 1, guard)

    def _write_items(
        self,
        out: bytearray,
        tag: int,
        original: object,
        items: object,
        memo: "_Memo",
        depth: int,
        guard: "_RecursionGuard",
    ) -> None:
        # Memoize the *original* container (sets are written through a
        # canonicalized copy, but aliases must hit the original's id).
        memo.add(original)
        sequence = list(items)  # type: ignore[call-overload]
        out.append(tag)
        out += _U32.pack(len(sequence))
        for item in sequence:
            self._write(out, item, memo, depth + 1, guard)

    @staticmethod
    def _write_int(out: bytearray, value: int) -> None:
        length = max(1, (value.bit_length() + 8) // 8)
        if length > 255:
            raise SerializationError(f"integer too large to encode ({length} bytes)")
        out.append(tags.INT)
        out.append(length)
        out += value.to_bytes(length, "big", signed=True)

    @staticmethod
    def _write_sized(out: bytearray, data: bytes) -> None:
        out += _U32.pack(len(data))
        out += data

    def _write_str(self, out: bytearray, text: str) -> None:
        self._write_sized(out, text.encode("utf-8"))

    def _canonical(self, items: set | frozenset) -> list:
        """Deterministic ordering for set elements, so equal sets encode equal.

        Mixed uncomparable types order by (typename, own wire frame): the
        element's reflective encoding is value-derived, so two sites encode
        equal sets to equal bytes.  (The previous ``repr`` fallback embedded
        ``id()`` addresses for default-repr objects, which differ across
        processes.)  Only elements the serializer cannot encode at all fall
        back to ``repr``, and those could never cross the wire anyway.
        """
        try:
            return sorted(items)  # type: ignore[type-var]
        except TypeError:
            return sorted(items, key=self._stable_key)

    def _stable_key(self, item: object) -> tuple[str, int, object]:
        # A fresh reflective encoder: an isolated memo, no swizzling, and
        # compiled=False keep the key independent of this frame's state
        # and identical between compiled and reflective peers.
        try:
            frame = Encoder(self.registry).encode(item)
        except SerializationError:
            return (type(item).__name__, 1, repr(item))
        return (type(item).__name__, 0, frame)


#: Serializer nesting depth at which a frame stops being "plausibly shallow"
#: and the recursion guard arms.  Default recursion limits leave thousands of
#: frames of headroom, so graphs shallower than this can never trip the
#: interpreter limit and skip the stack walk entirely.
_LAZY_GUARD_DEPTH = 64


class _RecursionGuard:
    """Lazily raise the interpreter recursion limit for deep graphs.

    Constructing and entering the guard is free: the full stack walk and
    ``sys.setrecursionlimit`` call only happen when :meth:`ensure` is
    invoked, i.e. once the serializer has actually nested past
    ``_LAZY_GUARD_DEPTH`` levels.  Each serializer level costs a handful
    of Python frames; budget four per level on top of whatever is in use.
    """

    __slots__ = ("_levels", "_old_limit", "armed")

    def __init__(self, levels: int) -> None:
        self._levels = levels
        self._old_limit: int | None = None
        self.armed = False

    def __enter__(self) -> "_RecursionGuard":
        return self

    def ensure(self) -> None:
        if self.armed:
            return
        self.armed = True
        needed = _stack_depth() + 4 * min(self._levels, 200_000) + 100
        old = sys.getrecursionlimit()
        if needed > old:
            self._old_limit = old
            sys.setrecursionlimit(needed)

    def __exit__(self, *exc_info: object) -> None:
        if self._old_limit is not None:
            sys.setrecursionlimit(self._old_limit)
            self._old_limit = None


def _stack_depth() -> int:
    """The caller's current interpreter stack depth."""
    frame = sys._getframe()
    depth = 0
    while frame is not None:
        depth += 1
        frame = frame.f_back
    return depth


class _Memo:
    """Identity memo that keeps memoized values alive.

    ``id()`` is only unique among *live* objects; holding a strong
    reference to every memoized value prevents id reuse from corrupting
    back-references within one frame.
    """

    __slots__ = ("_slots", "_keepalive")

    def __init__(self) -> None:
        self._slots: dict[int, int] = {}
        self._keepalive: list[object] = []

    def get(self, value: object) -> int | None:
        return self._slots.get(id(value))

    def add(self, value: object) -> None:
        self._slots[id(value)] = len(self._slots)
        self._keepalive.append(value)
