"""Wire-format encoder.

A compact, deterministic tagged binary format.  Sharing and cycles are
preserved through a memo table: the second time a container or object is
reached it is emitted as a back-reference, so a graph decodes with the
same aliasing structure it had at the sender — essential for
``updateMember`` reference splicing to behave like the Java prototype.

Wire grammar (one tag byte, then type-specific body)::

    NONE FALSE TRUE                         (no body)
    INT      <u8 len> <signed big-endian>
    FLOAT    <8-byte IEEE 754>
    STR      <u32 len> <utf-8>
    BYTES    <u32 len> <raw>
    LIST/TUPLE/SET/FROZENSET  <u32 count> <items>
    DICT     <u32 count> <key value>*
    OBJECT   <str name> <state value>
    SWIZZLED <str kind> <data value>
    REF      <u32 memo index>
"""

from __future__ import annotations

import struct
import sys

from repro.serial import tags
from repro.serial.registry import TypeRegistry, global_registry
from repro.serial.swizzle import NullSwizzler, Swizzler
from repro.util.errors import SerializationError

_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")


class Encoder:
    """Encodes Python values into the wire format.

    One encoder instance is reusable; each :meth:`encode` call is an
    independent frame with its own memo table.
    """

    def __init__(
        self,
        registry: TypeRegistry | None = None,
        swizzler: Swizzler | None = None,
        *,
        max_depth: int = 50_000,
    ):
        self.registry = registry if registry is not None else global_registry
        self.swizzler = swizzler if swizzler is not None else NullSwizzler()
        self.max_depth = max_depth

    def encode(self, value: object) -> bytes:
        out = bytearray()
        # The memo maps id(obj) -> slot.  Memoized objects must stay alive
        # for the whole encode: a freed temporary (e.g. a __getstate__
        # tuple) could otherwise donate its id() to a new object and
        # corrupt back-references.
        memo = _Memo()
        # Long linked structures (the paper's 1000-object lists) nest one
        # encoder level per element; the guard gives the interpreter stack
        # room — lazily, so shallow frames (the RPC hot path) never pay
        # for a full stack walk.
        with _RecursionGuard(self.max_depth) as guard:
            self._write(out, value, memo=memo, depth=0, guard=guard)
        return bytes(out)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _write(
        self, out: bytearray, value: object, memo: '_Memo', depth: int, guard: '_RecursionGuard'
    ) -> None:
        if depth > self.max_depth:
            raise SerializationError(
                f"object graph exceeds maximum serialization depth ({self.max_depth})"
            )
        if depth >= _LAZY_GUARD_DEPTH and not guard.armed:
            guard.ensure()

        if value is None:
            out.append(tags.NONE)
            return
        if value is True:
            out.append(tags.TRUE)
            return
        if value is False:
            out.append(tags.FALSE)
            return
        value_type = type(value)
        if value_type is int:
            self._write_int(out, value)  # type: ignore[arg-type]
            return
        if value_type is float:
            out.append(tags.FLOAT)
            out += _F64.pack(value)  # type: ignore[arg-type]
            return
        if value_type is str:
            out.append(tags.STR)
            self._write_sized(out, value.encode("utf-8"))  # type: ignore[union-attr]
            return
        if value_type in (bytes, bytearray):
            out.append(tags.BYTES)
            self._write_sized(out, bytes(value))  # type: ignore[arg-type]
            return

        # From here on values are identity-memoized (containers, objects).
        ref = memo.get(value)
        if ref is not None:
            out.append(tags.REF)
            out += _U32.pack(ref)
            return

        # The replication layer may want this reference to travel as a
        # proxy descriptor rather than by state.
        descriptor = self.swizzler.swizzle(value)
        if descriptor is not None:
            memo.add(value)
            out.append(tags.SWIZZLED)
            self._write_str(out, descriptor.kind)
            self._write(out, descriptor.data, memo, depth + 1, guard)
            return

        if value_type is list:
            self._write_items(out, tags.LIST, value, value, memo, depth, guard)  # type: ignore[arg-type]
            return
        if value_type is tuple:
            self._write_items(out, tags.TUPLE, value, value, memo, depth, guard)  # type: ignore[arg-type]
            return
        if value_type is set:
            self._write_items(out, tags.SET, value, _canonical(value), memo, depth, guard)  # type: ignore[arg-type]
            return
        if value_type is frozenset:
            self._write_items(out, tags.FROZENSET, value, _canonical(value), memo, depth, guard)  # type: ignore[arg-type]
            return
        if value_type is dict:
            memo.add(value)
            out.append(tags.DICT)
            out += _U32.pack(len(value))  # type: ignore[arg-type]
            for key, item in value.items():  # type: ignore[union-attr]
                self._write(out, key, memo, depth + 1, guard)
                self._write(out, item, memo, depth + 1, guard)
            return

        entry = self.registry.lookup_class(value_type)
        memo.add(value)
        out.append(tags.OBJECT)
        self._write_str(out, entry.name)
        self._write(out, entry.get_state(value), memo, depth + 1, guard)

    def _write_items(
        self,
        out: bytearray,
        tag: int,
        original: object,
        items: object,
        memo: "_Memo",
        depth: int,
        guard: "_RecursionGuard",
    ) -> None:
        # Memoize the *original* container (sets are written through a
        # canonicalized copy, but aliases must hit the original's id).
        memo.add(original)
        sequence = list(items)  # type: ignore[call-overload]
        out.append(tag)
        out += _U32.pack(len(sequence))
        for item in sequence:
            self._write(out, item, memo, depth + 1, guard)

    @staticmethod
    def _write_int(out: bytearray, value: int) -> None:
        length = max(1, (value.bit_length() + 8) // 8)
        if length > 255:
            raise SerializationError(f"integer too large to encode ({length} bytes)")
        out.append(tags.INT)
        out.append(length)
        out += value.to_bytes(length, "big", signed=True)

    @staticmethod
    def _write_sized(out: bytearray, data: bytes) -> None:
        out += _U32.pack(len(data))
        out += data

    def _write_str(self, out: bytearray, text: str) -> None:
        self._write_sized(out, text.encode("utf-8"))


def _canonical(items: set | frozenset) -> list:
    """Deterministic ordering for set elements, so equal sets encode equal.

    Sets of mixed uncomparable types fall back to (typename, repr) ordering —
    stable enough for the frame-size determinism the cost model needs.
    """
    try:
        return sorted(items)  # type: ignore[type-var]
    except TypeError:
        return sorted(items, key=lambda item: (type(item).__name__, repr(item)))


#: Serializer nesting depth at which a frame stops being "plausibly shallow"
#: and the recursion guard arms.  Default recursion limits leave thousands of
#: frames of headroom, so graphs shallower than this can never trip the
#: interpreter limit and skip the stack walk entirely.
_LAZY_GUARD_DEPTH = 64


class _RecursionGuard:
    """Lazily raise the interpreter recursion limit for deep graphs.

    Constructing and entering the guard is free: the full stack walk and
    ``sys.setrecursionlimit`` call only happen when :meth:`ensure` is
    invoked, i.e. once the serializer has actually nested past
    ``_LAZY_GUARD_DEPTH`` levels.  Each serializer level costs a handful
    of Python frames; budget four per level on top of whatever is in use.
    """

    __slots__ = ("_levels", "_old_limit", "armed")

    def __init__(self, levels: int) -> None:
        self._levels = levels
        self._old_limit: int | None = None
        self.armed = False

    def __enter__(self) -> "_RecursionGuard":
        return self

    def ensure(self) -> None:
        if self.armed:
            return
        self.armed = True
        needed = _stack_depth() + 4 * min(self._levels, 200_000) + 100
        old = sys.getrecursionlimit()
        if needed > old:
            self._old_limit = old
            sys.setrecursionlimit(needed)

    def __exit__(self, *exc_info: object) -> None:
        if self._old_limit is not None:
            sys.setrecursionlimit(self._old_limit)
            self._old_limit = None


def _stack_depth() -> int:
    """The caller's current interpreter stack depth."""
    frame = sys._getframe()
    depth = 0
    while frame is not None:
        depth += 1
        frame = frame.f_back
    return depth


class _Memo:
    """Identity memo that keeps memoized values alive.

    ``id()`` is only unique among *live* objects; holding a strong
    reference to every memoized value prevents id reuse from corrupting
    back-references within one frame.
    """

    __slots__ = ("_slots", "_keepalive")

    def __init__(self) -> None:
        self._slots: dict[int, int] = {}
        self._keepalive: list[object] = []

    def get(self, value: object) -> int | None:
        return self._slots.get(id(value))

    def add(self, value: object) -> None:
        self._slots[id(value)] = len(self._slots)
        self._keepalive.append(value)
